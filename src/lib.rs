//! **accrual-fd** — a complete Rust implementation of accrual failure
//! detectors, reproducing *"Definition and Specification of Accrual Failure
//! Detectors"* (Défago, Urbán, Hayashibara, Katayama; DSN 2005).
//!
//! An *accrual* failure detector outputs, for each monitored process, a
//! real-valued **suspicion level** instead of a binary trust/suspect bit:
//! zero means "not suspected at all", and the level accrues toward infinity
//! if the process has crashed. Interpretation — deciding when the level is
//! high enough to act — is left to each application, which is what lets one
//! monitoring service support many applications with different QoS needs.
//! This is the design at the heart of the failure detectors in Akka and
//! Cassandra.
//!
//! # Crates
//!
//! | Re-export | Contents |
//! |-----------|----------|
//! | [`core`] | the formalism: suspicion levels, detector traits, classes (◊P_ac …), Algorithms 1–3, property checkers, stats, distributions |
//! | [`detectors`] | the four implementations of §5: simple, Chen, φ, κ — plus the monitoring service and the A.5 adversary |
//! | [`sim`] | deterministic discrete-event network simulator: delay/loss models, clock drift, partial synchrony, heartbeat replay |
//! | [`runtime`] | live Algorithm 4 over pluggable transports: heartbeat senders, fault injection, retry/backoff, watchdog supervision, graceful degradation, chaos harness |
//! | [`qos`] | Chen et al. QoS metrics (T_D, T_MR, T_M, λ_M, P_A, T_G) and the experiment harness |
//! | [`obs`] | observability: metric registry (counters/gauges/histograms), structured event traces, and streaming online QoS estimators |
//! | [`bot`] | the Bag-of-Tasks master/worker application of §1.3 |
//! | [`omega`] | eventual leader election (Ω) via Algorithm 1 — the computational-equivalence demo |
//!
//! # Quickstart
//!
//! ```
//! use accrual_fd::core::accrual::AccrualFailureDetector;
//! use accrual_fd::core::suspicion::SuspicionLevel;
//! use accrual_fd::core::time::Timestamp;
//! use accrual_fd::detectors::phi::PhiAccrual;
//!
//! let mut monitor = PhiAccrual::with_defaults();
//!
//! // Heartbeats arrive once a second…
//! for s in 1..=30u64 {
//!     monitor.record_heartbeat(Timestamp::from_secs(s));
//! }
//!
//! // …then silence. The suspicion level accrues:
//! let soon = monitor.suspicion_level(Timestamp::from_secs_f64(30.5));
//! let late = monitor.suspicion_level(Timestamp::from_secs(35));
//! assert!(soon < SuspicionLevel::new(1.0)?);
//! assert!(late > SuspicionLevel::new(8.0)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Run the examples for guided tours:
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example multi_threshold
//! cargo run --example detector_comparison
//! cargo run --example bag_of_tasks
//! cargo run --example wan_adaptivity
//! ```
//!
//! And see `DESIGN.md` / `EXPERIMENTS.md` for the experiment suite that
//! reproduces every theorem and claim of the paper
//! (`cargo run -p afd-bench --release --bin <experiment>`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use afd_bot as bot;
pub use afd_core as core;
pub use afd_detectors as detectors;
pub use afd_obs as obs;
pub use afd_omega as omega;
pub use afd_qos as qos;
pub use afd_runtime as runtime;
pub use afd_sim as sim;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use afd_core::accrual::AccrualFailureDetector;
    pub use afd_core::binary::{BinaryFailureDetector, Status, Transition};
    pub use afd_core::process::ProcessId;
    pub use afd_core::suspicion::SuspicionLevel;
    pub use afd_core::time::{Duration, Timestamp};
    pub use afd_core::transform::{
        AccrualToBinary, BinaryToAccrual, HysteresisInterpreter, InterpretedBinary, Interpreter,
        ThresholdInterpreter,
    };
    pub use afd_detectors::adaptive::{AdaptiveAccrual, AdaptiveConfig};
    pub use afd_detectors::akka::{AkkaPhi, AkkaPhiConfig};
    pub use afd_detectors::bertier::{BertierAccrual, BertierConfig};
    pub use afd_detectors::chen::{ChenAccrual, ChenConfig};
    pub use afd_detectors::kappa::{KappaAccrual, KappaConfig};
    pub use afd_detectors::phi::{PhiAccrual, PhiConfig, PhiModel};
    pub use afd_detectors::service::{InterpreterBank, MonitoringService};
    pub use afd_detectors::simple::SimpleAccrual;
    pub use afd_runtime::{
        DegradeConfig, FaultInjector, FaultPlan, GracefulDegradation, RuntimeMonitor, Transport,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_imports_compile() {
        use crate::prelude::*;
        let mut fd = SimpleAccrual::new(Timestamp::ZERO);
        fd.record_heartbeat(Timestamp::from_secs(1));
        let _: SuspicionLevel = fd.suspicion_level(Timestamp::from_secs(2));
    }
}
