#!/usr/bin/env bash
# Runs every reproduction experiment (E1-E11) in sequence and saves the
# output under results/. See EXPERIMENTS.md for the experiment index.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
cargo build -p afd-bench --release
for exp in e1_decoupling e2_properties e3_transform_ab e4_transform_ba \
           e5_threshold_qos e6_hysteresis_qos e7_tradeoff e8_kappa_loss \
           e9_adversary e10_bot e11_partial_synchrony e12_omega; do
    echo "=== $exp ==="
    ./target/release/"$exp" | tee "results/$exp.txt"
    echo
done
echo "All experiments complete; outputs in results/."
