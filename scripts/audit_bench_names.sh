#!/usr/bin/env bash
# Audits experiment naming: every bench binary owns a unique eN tag,
# every results/BENCH_<tag>.json artifact maps onto exactly one binary,
# and every write_report("<tag>", ...) call matches its binary's
# filename tag. Guards against the e15-style collision, where a new
# bench reused an existing experiment number and its report silently
# overwrote the other experiment's BENCH_*.json artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

bins_dir=crates/afd-bench/src/bin
fail=0

# 1. No two bench binaries may share an experiment tag.
dup=$(find "$bins_dir" -name 'e*_*.rs' -printf '%f\n' \
    | sed -n 's/^\(e[0-9]\{1,\}\)_.*\.rs$/\1/p' | sort | uniq -d)
if [[ -n "$dup" ]]; then
    echo "duplicate experiment tag(s) among bench binaries: $dup" >&2
    fail=1
fi

# 2. Every report artifact must belong to exactly one bench binary.
shopt -s nullglob
for report in results/BENCH_*.json; do
    tag=$(basename "$report" .json)
    tag=${tag#BENCH_}
    matches=("$bins_dir/${tag}_"*.rs)
    if [[ ${#matches[@]} -ne 1 ]]; then
        echo "$report: expected exactly one bench binary $bins_dir/${tag}_*.rs," \
             "found ${#matches[@]}" >&2
        fail=1
    fi
done

# 3. A binary's write_report tag must equal its filename tag.
for bin in "$bins_dir"/e*_*.rs; do
    tag=$(basename "$bin" | sed 's/^\(e[0-9]\{1,\}\)_.*/\1/')
    while IFS= read -r written; do
        [[ -z "$written" ]] && continue
        if [[ "$written" != "$tag" ]]; then
            echo "$bin: writes report tag \"$written\" but its filename tag is \"$tag\"" >&2
            fail=1
        fi
    done < <(grep -o 'write_report("[^"]*"' "$bin" \
        | sed 's/write_report("\([^"]*\)".*/\1/' | sort -u || true)
done

if [[ $fail -ne 0 ]]; then
    echo "bench name audit FAILED" >&2
    exit 1
fi
echo "bench name audit OK: tags unique, artifacts and report calls match their binaries"
