//! A minimal, dependency-free, offline stand-in for the subset of the
//! `proptest` API this workspace uses.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the property-testing surface its test suites rely on — the
//! [`proptest!`], [`prop_compose!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros, range/collection/sample strategies, and
//! [`ProptestConfig::with_cases`] — is implemented here over a seeded
//! deterministic generator.
//!
//! Differences from upstream: inputs are sampled deterministically from a
//! per-test seed (derived from the test's module path and name), there is
//! **no shrinking**, and failures panic with the offending case index so a
//! failing input can be reproduced by rerunning the same binary.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The deterministic generator handed to strategies.
///
/// xoshiro256++ seeded via SplitMix64 from a test-identity hash and the
/// case index, so every test gets a reproducible, independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates the generator for one test case.
    pub fn new(test_identity: &str, case: u64) -> Self {
        // FNV-1a over the identity, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_identity.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        self.s = [s0n, s1n, s2n, s3n.rotate_left(45)];
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below zero");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// A source of deterministic test inputs. Upstream proptest separates
/// strategies from value trees (for shrinking); this stand-in samples
/// directly.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        // 2⁻⁵³ granularity makes hitting `hi` measure-zero; fold the
        // endpoint in explicitly so `..=` differs from `..`.
        if rng.below(1 << 53) == 0 {
            return hi;
        }
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A fixed value, always produced as-is.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// A strategy defined by a sampling closure — the building block
/// [`prop_compose!`] expands to.
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    /// Wraps a sampling function.
    pub fn new<T>(f: F) -> Self
    where
        F: Fn(&mut TestRng) -> T,
    {
        FnStrategy(f)
    }
}

impl<F, T> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<F> std::fmt::Debug for FnStrategy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnStrategy")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Run configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`; up to `size` draws are
    /// attempted, so duplicates may make the set smaller (as upstream).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty set size range");
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly selects one element of `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` of the inner strategy about three quarters of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose,
        proptest, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Must be used at the top level of a property body (it expands to
/// `continue` on the case loop, so inside a nested loop it would skip the
/// wrong thing — upstream proptest has the same "reject the whole case"
/// semantics, enforced differently).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// item becomes a `#[test]` that runs `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Defines a named strategy from component strategies:
/// `fn name(args…)(pat in strategy, …) -> T { expr }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)
        ( $($p:pat in $s:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |__rng: &mut $crate::TestRng| -> $ret {
                $(let $p = $crate::Strategy::generate(&($s), __rng);)+
                $body
            })
        }
    };
}

// Re-exported so `proptest::collection::…` full paths also work.
pub use collection::{BTreeSetStrategy, VecStrategy};

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn small()(v in 0.0..10.0f64) -> f64 { v }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 1.5..9.5f64, n in 3u64..9, m in 0usize..4) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(m < 4);
        }

        #[test]
        fn composed_strategy_works(v in small(), flag in any::<bool>()) {
            prop_assert!((0.0..10.0).contains(&v));
            let _ = flag;
        }

        #[test]
        fn collections_obey_size(
            xs in prop::collection::vec(0u32..100, 1..20),
            set in prop::collection::btree_set(0u64..50, 1..10),
            opt in crate::option::of(1u32..5),
            pair in (0usize..3, 0usize..3),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(set.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 100));
            if let Some(v) = opt {
                prop_assert!((1..5).contains(&v));
            }
            prop_assert!(pair.0 < 3 && pair.1 < 3);
        }

        #[test]
        fn select_picks_members(choice in prop::sample::select(vec![2, 3, 5, 7])) {
            prop_assert!([2, 3, 5, 7].contains(&choice));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = 0.0..1.0f64;
        let a: Vec<f64> = (0..10)
            .map(|c| strat.generate(&mut TestRng::new("id", c)))
            .collect();
        let b: Vec<f64> = (0..10)
            .map(|c| strat.generate(&mut TestRng::new("id", c)))
            .collect();
        assert_eq!(a, b);
    }
}
