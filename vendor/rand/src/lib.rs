//! A minimal, dependency-free, offline stand-in for the subset of the
//! `rand` 0.8 API this workspace uses.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the handful of `rand` items it needs — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], and [`Rng::gen_range`] —
//! are implemented here over a xoshiro256++ core seeded through SplitMix64.
//! The streams are high-quality and fully deterministic per seed, which is
//! all the simulator requires; they are *not* bit-compatible with upstream
//! `rand`, and no cryptographic claims are made.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A random number generator core producing 64-bit outputs.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" unit domain by
/// [`Rng::gen`] (for `f64`: uniform in `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range using `rng`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span ≪ 2⁶⁴ in practice,
                // a simple rejection loop keeps it exact.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the type's unit domain (`[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (deterministic, fast, passes BigCrush).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            self.s = [s0n, s1n, s2n, s3n.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let n = r.gen_range(0usize..7);
            assert!(n < 7);
        }
    }

    #[test]
    fn mean_is_plausible() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }
}
