//! A minimal, dependency-free, offline stand-in for the subset of the
//! `criterion` API this workspace's benches use.
//!
//! The workspace builds in hermetic environments with no registry access.
//! This stub keeps every `benches/*.rs` compiling and *runnable* — each
//! benchmark body executes a small, timed number of iterations and prints
//! a one-line nanoseconds-per-iteration estimate — but performs none of
//! criterion's statistical analysis, warm-up, or reporting.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque to the optimizer; identical role to `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs closures and reports a rough per-iteration time.
#[derive(Debug, Default)]
pub struct Bencher {
    _private: (),
}

const ITERS: u32 = 10;

impl Bencher {
    /// Times `routine` over a few iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        report(start, ITERS);
    }

    /// Times `routine` over freshly set-up inputs.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..ITERS).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        report(start, ITERS);
    }
}

fn report(start: Instant, iters: u32) {
    let nanos = start.elapsed().as_nanos() / iters as u128;
    println!("    ~{nanos} ns/iter ({iters} iters, smoke run — stub criterion)");
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench {name}");
        let mut b = Bencher::default();
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _parent: self }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  bench {}", id.label);
        let mut b = Bencher::default();
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput);
        });
        g.finish();
    }
}
