//! The architectural payoff (Figs. 1–2 of the paper): ONE monitor, MANY
//! interpretations.
//!
//! Three applications share a single φ monitor per worker but interpret its
//! suspicion level with different thresholds — an aggressive load balancer,
//! a moderate task scheduler, and a conservative membership service. The
//! example shows Theorem 1's containment (higher thresholds suspect less)
//! and the detection-time/accuracy tradeoff of Corollaries 2–3, all from
//! one stream of heartbeats.
//!
//! ```text
//! cargo run --example multi_threshold
//! ```

use accrual_fd::prelude::*;
use accrual_fd::sim::replay::{replay, ReplayConfig};
use accrual_fd::sim::scenario::Scenario;
use accrual_fd::sim::simulate;

fn main() {
    let crash = Timestamp::from_secs(120);
    let scenario = Scenario::wan_jitter()
        .with_horizon(Timestamp::from_secs(200))
        .with_crash_at(crash);
    let arrivals = simulate(&scenario, 7);

    // The shared monitor (Fig. 2: monitoring happens once)…
    let mut monitor = PhiAccrual::with_defaults();
    let levels = replay(
        &arrivals,
        &mut monitor,
        ReplayConfig::every(Duration::from_millis(250)),
    );

    // …and three per-application interpreters with different QoS.
    let apps = [
        ("load-balancer (Φ=1)", 1.0),
        ("scheduler    (Φ=3)", 3.0),
        ("membership   (Φ=8)", 8.0),
    ];

    println!("application           wrong suspicions   detection latency");
    for (name, phi) in apps {
        let threshold = SuspicionLevel::new(phi).expect("valid threshold");
        let mut interpreter = ThresholdInterpreter::new(threshold);
        let mut wrong = 0u32;
        let mut was_suspected = false;
        let mut detected_at: Option<Timestamp> = None;
        for s in levels.iter() {
            let status = interpreter.observe(s.at, s.level);
            if status.is_suspected() && !was_suspected && s.at < crash {
                wrong += 1;
            }
            if status.is_suspected() && s.at >= crash && detected_at.is_none() {
                detected_at = Some(s.at);
            }
            if status.is_trusted() && s.at >= crash {
                detected_at = None; // permanence required
            }
            was_suspected = status.is_suspected();
        }
        let latency = detected_at.map_or_else(
            || "—".to_string(),
            |at| format!("{:.2} s", (at - crash).as_secs_f64()),
        );
        println!("{name:<22} {wrong:^17} {latency:>14}");
    }

    println!(
        "\nTheorem 1 in action: every process the membership service suspects,\n\
         the scheduler suspects; every process the scheduler suspects, the\n\
         load balancer suspects. Lower thresholds detect faster (Cor. 2) at\n\
         the price of more wrong suspicions (Cor. 3)."
    );
}
