//! The Bag-of-Tasks scenario of §1.3: binary timeouts vs. the accrual
//! policy, under bursty heartbeat loss.
//!
//! A master farms 200 tasks out to 32 workers; a quarter of the workers
//! crash mid-run, and the network drops heartbeats in bursts (~4 in a
//! row). A binary detector forces a dilemma:
//!
//! - a short timeout detects crashes fast but aborts live work on every
//!   loss burst;
//! - a long timeout survives bursts but leaves crashed workers' tasks in
//!   limbo for a long time.
//!
//! The accrual policy escapes the dilemma: it monitors with κ (which
//! counts missed heartbeats instead of panicking about elapsed time) and
//! scales the abort threshold with the CPU time at stake — fresh tasks
//! abort as fast as the short timeout, invested tasks ride bursts out.
//!
//! ```text
//! cargo run --example bag_of_tasks
//! ```

use accrual_fd::bot::{run_bot, AccrualPolicy, BinaryTimeoutPolicy, BotConfig, BotOutcome};
use accrual_fd::detectors::kappa::PhiContribution;
use accrual_fd::prelude::*;
use accrual_fd::sim::loss::GilbertElliottLoss;
use accrual_fd::sim::scenario::LossKind;

fn main() {
    let config = BotConfig {
        tasks: 40,
        mean_task_secs: 120.0,
        crash_fraction: 0.3,
        crash_window_secs: (20.0, 300.0),
        loss: LossKind::GilbertElliott(GilbertElliottLoss::bursts(0.02, 8.0)),
        ..BotConfig::default()
    };
    println!(
        "{} workers ({}% will crash), {} tasks of ~{} s, bursty heartbeat loss\n",
        config.workers,
        (config.crash_fraction * 100.0) as u32,
        config.tasks,
        config.mean_task_secs,
    );

    let seeds: Vec<u64> = (0..10).collect();
    let mut rows: Vec<(String, Vec<BotOutcome>)> = Vec::new();

    for timeout in [3.0, 10.0, 16.0, 25.0] {
        let policy = BinaryTimeoutPolicy::new(SuspicionLevel::new(timeout).expect("valid"));
        let outs: Vec<BotOutcome> = seeds
            .iter()
            .map(|&s| run_bot(&config, |_| SimpleAccrual::new(Timestamp::ZERO), &policy, s))
            .collect();
        rows.push((format!("binary timeout {timeout:>4.0} s"), outs));
    }

    let accrual = AccrualPolicy::new(
        SuspicionLevel::new(1.5).expect("valid"),
        SuspicionLevel::new(2.5).expect("valid"),
        8.0,
    );
    let outs: Vec<BotOutcome> = seeds
        .iter()
        .map(|&s| {
            run_bot(
                &config,
                |_| KappaAccrual::new(KappaConfig::default(), PhiContribution).expect("valid"),
                &accrual,
                s,
            )
        })
        .collect();
    rows.push(("accrual (κ, cost-aware)".to_string(), outs));

    println!("policy                     makespan   wasted CPU (wrong aborts)   wrong aborts");
    for (name, outs) in &rows {
        let n = outs.len() as f64;
        let makespan = outs.iter().map(|o| o.makespan_secs).sum::<f64>() / n;
        let wasted = outs.iter().map(|o| o.wasted_cpu_wrong_aborts).sum::<f64>() / n;
        let aborts = outs.iter().map(|o| o.wrong_aborts as f64).sum::<f64>() / n;
        println!("{name:<26} {makespan:>7.1} s  {wasted:>15.1} s  {aborts:>17.1}");
    }

    println!(
        "\nThe short timeout wastes completed work on every loss burst; the\n\
         long one inflates the makespan by reacting slowly to real crashes.\n\
         The accrual policy gets the best of both (§1.3 + §5.4)."
    );
}
