//! Live chaos: a real two-thread heartbeat session through the fault
//! injector, printing the suspicion timeline as the network partitions,
//! heals, and the monitored process crashes and recovers.
//!
//! A sender thread beats every 100 ms through one side of an in-process
//! transport; the main thread polls a [`RuntimeMonitor`] on the other side,
//! behind a [`FaultInjector`] scripted with a partition and light burst
//! loss. The φ detector sits inside a [`GracefulDegradation`] wrapper, so
//! when the partition starves its sampling window the timeline shows the
//! fallback engage (marked `degraded`) instead of the estimate going stale.
//!
//! Alongside the timeline, the run feeds an [`accrual_fd::obs`] pipeline:
//! S-/T-transitions and degradation switches land in an [`EventRing`], and
//! the final state of every component is mirrored into a [`Registry`] whose
//! snapshot is printed — the same scrape a monitoring agent would take.
//!
//! ```text
//! cargo run --example live_chaos
//! ```
//! (runs for about six and a half seconds of wall time)

use accrual_fd::core::binary::TransitionDetector;
use accrual_fd::obs::{EventKind, EventRing, ObsEvent, Registry};
use accrual_fd::prelude::*;
use accrual_fd::runtime::{
    spawn_sender, DegradeConfig, FaultInjector, FaultPlan, GracefulDegradation, RuntimeMonitor,
    SenderConfig, SystemClock,
};
use accrual_fd::runtime::{ChannelTransport, Clock};
use accrual_fd::sim::loss::GilbertElliottLoss;

fn main() {
    let clock = SystemClock::new(); // Copy: both threads share the epoch.
    let process = ProcessId::new(1);
    let interval = Duration::from_millis(100);

    // The script: a 1.5 s partition that heals, plus mild burst loss the
    // whole way through. The crash/recover cycle is driven live below.
    let partition = (Timestamp::from_millis(1500), Timestamp::from_millis(3000));
    let plan = FaultPlan::new()
        .with_loss(GilbertElliottLoss::bursts(0.05, 3.0))
        .with_partition(partition.0, partition.1);

    let (sender_side, monitor_side) = ChannelTransport::pair();
    let mut monitor = RuntimeMonitor::new(
        FaultInjector::new(monitor_side, clock, plan, 42),
        clock,
        move |_| {
            GracefulDegradation::new(
                PhiAccrual::with_defaults(),
                DegradeConfig::for_interval(interval, 3),
            )
        },
    );
    monitor.watch(process);
    let sender = spawn_sender(sender_side, clock, SenderConfig::new(process, interval), 42);

    let crash_at = Timestamp::from_millis(4000);
    let recover_at = Timestamp::from_millis(5250);
    let end_at = Timestamp::from_millis(6500);

    // Observability: transitions and degradation flips feed an event ring,
    // scraped along with the metric registry after the run.
    let threshold = SuspicionLevel::new(2.0).expect("finite");
    let mut transitions = TransitionDetector::new();
    let mut was_degraded = false;
    let mut events = EventRing::new(256);

    println!("   t(s)   φ        state");
    let mut crashed = false;
    let mut recovered = false;
    let mut next_print = Timestamp::ZERO;
    loop {
        let now = clock.now();
        if now >= end_at {
            break;
        }
        if !crashed && now >= crash_at {
            sender.crash();
            crashed = true;
            println!("        -- monitored process crashes --");
        }
        if !recovered && now >= recover_at {
            sender.recover();
            recovered = true;
            println!("        -- monitored process recovers --");
        }
        if let Err(e) = monitor.poll() {
            eprintln!("transport failed: {e}");
            break;
        }
        {
            let level = monitor.level(process).expect("watched");
            let status = if level > threshold {
                Status::Suspected
            } else {
                Status::Trusted
            };
            if let Some(transition) = transitions.observe(status) {
                events.push(ObsEvent {
                    at: now,
                    source: "phi",
                    process,
                    kind: match transition {
                        Transition::Suspect => EventKind::Suspect,
                        Transition::Trust => EventKind::Trust,
                    },
                });
            }
            let degraded = monitor
                .detector_mut(process)
                .expect("watched")
                .is_degraded();
            if degraded != was_degraded {
                was_degraded = degraded;
                events.push(ObsEvent {
                    at: now,
                    source: "phi",
                    process,
                    kind: if degraded {
                        EventKind::DegradeEnter
                    } else {
                        EventKind::DegradeExit
                    },
                });
            }
        }
        if now >= next_print {
            let level = monitor.level(process).expect("watched");
            let detector = monitor.detector_mut(process).expect("watched");
            let mut state = String::new();
            if now >= partition.0 && now < partition.1 {
                state.push_str("partition ");
            }
            if detector.is_degraded() {
                state.push_str("degraded ");
            }
            if crashed && !recovered {
                state.push_str("crashed ");
            }
            if state.is_empty() {
                state.push_str("nominal");
            }
            println!(
                "  {:5.2}   {:<8.3} {}",
                now.as_secs_f64(),
                level.value(),
                state
            );
            next_print += Duration::from_millis(250);
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    sender.stop().expect("sender thread failed");
    let fault = monitor.transport().stats();
    let intake = monitor.stats();
    println!(
        "\ninjector: {} delivered, {} lost to partition, {} lost to bursts",
        fault.delivered, fault.dropped_partition, fault.dropped_loss
    );
    println!(
        "monitor:  {} accepted, {} stale, {} corrupt; degrade events: {}",
        intake.accepted,
        intake.stale,
        intake.corrupt,
        monitor
            .detector_mut(process)
            .map_or(0, |d| d.degrade_events()),
    );

    // The scrape a monitoring agent would take: every component mirrors its
    // counters into one registry, then the snapshot renders as a table.
    let registry = Registry::new();
    monitor.export_metrics(&registry);
    monitor.transport().export_metrics(&registry);
    if let Some(detector) = monitor.detector_mut(process) {
        detector.export_metrics(&registry, "phi");
    }
    println!("\nfinal metrics snapshot:");
    println!("{}", registry.snapshot().to_text());

    println!("event trace ({} dropped):", events.dropped());
    for event in events.drain() {
        println!("  {event}");
    }
}
