//! Adaptivity (§5.2–5.3): why estimation beats fixed timeouts when network
//! conditions change.
//!
//! The network degrades mid-run: inter-arrival jitter quadruples. A fixed
//! timeout tuned for the quiet phase starts firing constantly; the φ
//! detector re-estimates the distribution and keeps its false-suspicion
//! behaviour stable at the cost of slower detection.
//!
//! ```text
//! cargo run --example wan_adaptivity
//! ```

use accrual_fd::prelude::*;
use accrual_fd::sim::rng::SimRng;

fn main() {
    let mut rng = SimRng::seed_from_u64(2024);
    let mut phi = PhiAccrual::with_defaults();
    let mut simple = SimpleAccrual::new(Timestamp::ZERO);

    // Fixed timeout tuned for the quiet phase: 1 s interval + 3σ (σ=50 ms).
    let timeout = SuspicionLevel::new(1.15).expect("valid");
    // φ threshold with the same quiet-phase detection latency (~Φ=3).
    let phi_threshold = SuspicionLevel::new(3.0).expect("valid");

    let mut t = 0.0f64;
    let mut timeouts_fired = [0u32, 0u32]; // [quiet, noisy]
    let mut phi_fired = [0u32, 0u32];

    for k in 0..2_000 {
        let noisy = k >= 1_000;
        let sigma = if noisy { 0.20 } else { 0.05 };
        let gap = (1.0 + rng.normal(0.0, sigma)).max(0.05);
        // Probe the detectors just before the next heartbeat arrives — the
        // moment a slow heartbeat looks most like a crash.
        let probe = Timestamp::from_secs_f64(t + gap * 0.999);
        let phase = usize::from(noisy);
        if simple.suspicion_level(probe) > timeout {
            timeouts_fired[phase] += 1;
        }
        if phi.suspicion_level(probe) > phi_threshold {
            phi_fired[phase] += 1;
        }
        t += gap;
        let arrival = Timestamp::from_secs_f64(t);
        simple.record_heartbeat(arrival);
        phi.record_heartbeat(arrival);
    }

    println!("                         quiet phase   noisy phase (4x jitter)");
    println!(
        "fixed 1.15 s timeout     {:>6} wrong   {:>6} wrong",
        timeouts_fired[0], timeouts_fired[1]
    );
    println!(
        "phi at threshold 3.0     {:>6} wrong   {:>6} wrong",
        phi_fired[0], phi_fired[1]
    );
    println!(
        "\nfinal φ estimate: mean gap {:.3} s, σ {:.3} s (re-learned from the window)",
        phi.mean_interval(),
        phi.std_dev()
    );
    println!(
        "\nThe fixed timeout, tuned for σ=50 ms, false-alarms when σ becomes\n\
         200 ms. φ widens its estimated distribution instead — the reason\n\
         §5 calls for estimating the distribution, not just a mean."
    );
}
