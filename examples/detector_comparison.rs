//! All four detectors of §5 side by side on the same arrival trace.
//!
//! The run has three phases:
//!
//! 1. healthy heartbeats with jitter,
//! 2. a burst of lost heartbeats (the network, not the process),
//! 3. a real crash.
//!
//! Watch how each representation reacts: the simple detector is raw elapsed
//! time; Chen is elapsed time past the expected arrival; φ explodes during
//! the loss burst (its known weakness, §5.4); κ counts missed heartbeats
//! and stays measured.
//!
//! ```text
//! cargo run --example detector_comparison
//! ```

use accrual_fd::detectors::kappa::PhiContribution;
use accrual_fd::prelude::*;

fn main() {
    let mut simple = SimpleAccrual::new(Timestamp::ZERO);
    let mut chen = ChenAccrual::with_defaults();
    let mut phi = PhiAccrual::with_defaults();
    let mut kappa =
        KappaAccrual::new(KappaConfig::default(), PhiContribution).expect("valid config");

    // Phase 1: healthy 1 Hz heartbeats with ±50 ms of deterministic jitter.
    let mut arrivals: Vec<f64> = Vec::new();
    for k in 1..=60 {
        let jitter = if k % 3 == 0 { 0.05 } else { -0.03 };
        arrivals.push(k as f64 + jitter);
    }
    // Phase 2: heartbeats 61–66 are lost; 67–80 arrive normally.
    for k in 67..=80 {
        arrivals.push(k as f64);
    }
    // Phase 3: crash at t = 80 — nothing arrives after.

    let mut next = 0usize;
    println!("  t(s)   simple   chen     phi      kappa    note");
    for tick in 1..=95u64 {
        let now = Timestamp::from_secs(tick);
        while next < arrivals.len() && arrivals[next] <= tick as f64 {
            let at = Timestamp::from_secs_f64(arrivals[next]);
            simple.record_heartbeat(at);
            chen.record_heartbeat(at);
            phi.record_heartbeat(at);
            kappa.record_heartbeat(at);
            next += 1;
        }
        let note = match tick {
            61..=66 => "loss burst",
            67 => "network recovers",
            81.. => "crashed",
            _ => "",
        };
        if tick % 10 == 0 || (60..=68).contains(&tick) || tick >= 80 {
            println!(
                "  {:>4}   {:<8.2} {:<8.2} {:<8.2} {:<8.2} {}",
                tick,
                simple.suspicion_level(now).value().min(9999.0),
                chen.suspicion_level(now).value().min(9999.0),
                phi.suspicion_level(now).value().min(9999.0),
                kappa.suspicion_level(now).value().min(9999.0),
                note,
            );
        }
    }

    println!(
        "\nDuring the loss burst φ climbs into the tens (it extrapolates a\n\
         distribution), while κ counts: ~1 per missed heartbeat. After the\n\
         real crash every level accrues without bound — that is Property 1."
    );
}
