//! Fuzzy group membership and slowness ordering (§6 of the paper) on top
//! of one accrual monitoring service.
//!
//! Friedman's fuzzy membership classifies each member as trusted / fuzzy /
//! suspected using two thresholds over a numeric level; Sampaio et al.'s
//! slowness oracle orders processes by responsiveness. The paper points
//! out that accrual detectors supply the missing substrate for both —
//! this example builds each in a few lines over the same φ monitors.
//!
//! ```text
//! cargo run --example fuzzy_membership
//! ```

use accrual_fd::core::transform::{FuzzyInterpreter, FuzzyStatus};
use accrual_fd::detectors::kappa::PhiContribution;
use accrual_fd::detectors::service::MonitoringService;
use accrual_fd::detectors::slowness::SlownessOracle;
use accrual_fd::prelude::*;
use accrual_fd::sim::scenario::Scenario;
use accrual_fd::sim::simulate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five cluster members over WAN links; member 2 crashes at t = 45 s,
    // member 4's link is lossy-bursty (flaky but alive).
    let horizon = Timestamp::from_secs(90);
    let scenarios = [
        Scenario::wan_jitter().with_horizon(horizon),
        Scenario::wan_jitter().with_horizon(horizon),
        Scenario::wan_jitter()
            .with_horizon(horizon)
            .with_crash_at(Timestamp::from_secs(45)),
        Scenario::wan_jitter().with_horizon(horizon),
        Scenario::bursty_loss().with_horizon(horizon),
    ];
    let traces: Vec<_> = scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| simulate(s, 500 + i as u64))
        .collect();

    // κ monitors: member 4's link drops heartbeats in bursts, and κ is
    // the detector designed to count losses instead of panicking about
    // them (§5.4). Thresholds are in missed-heartbeat units: fuzzy past
    // ~1.5 missed, down past ~8.
    let mut service = MonitoringService::new(|_| {
        KappaAccrual::new(KappaConfig::default(), PhiContribution).expect("valid config")
    });
    let mut membership: Vec<FuzzyInterpreter> = Vec::new();
    for i in 0..traces.len() as u32 {
        service.watch(ProcessId::new(i));
        membership.push(FuzzyInterpreter::new(
            SuspicionLevel::new(1.5)?,
            SuspicionLevel::new(8.0)?,
        )?);
    }
    let mut slowness = SlownessOracle::new(0.3)?;

    let mut cursors = vec![0usize; traces.len()];
    println!("  t(s)  membership view                         slowness order (fastest first)");
    for tick in 1..=90u64 {
        let now = Timestamp::from_secs(tick);
        for (w, trace) in traces.iter().enumerate() {
            let deliveries = trace.deliveries_in_arrival_order();
            while cursors[w] < deliveries.len() && deliveries[cursors[w]].1 <= now {
                service.heartbeat(ProcessId::new(w as u32), deliveries[cursors[w]].1);
                cursors[w] += 1;
            }
        }
        let snapshot = service.snapshot(now);
        slowness.observe_snapshot(now, &snapshot);

        if tick % 15 == 0 || tick == 47 || tick == 50 {
            let states: Vec<String> = snapshot
                .iter()
                .map(|&(p, level)| {
                    let s = membership[p.index()].classify(now, level);
                    let tag = match s {
                        FuzzyStatus::Trusted => "ok",
                        FuzzyStatus::Fuzzy => "FUZZY",
                        FuzzyStatus::Suspected => "DOWN",
                    };
                    format!("{p}:{tag}")
                })
                .collect();
            let order: Vec<String> = slowness
                .order()
                .iter()
                .map(|(p, s)| format!("{p}({s:.1})"))
                .collect();
            println!("  {tick:>4}  {:<40} {}", states.join(" "), order.join(" "));
        } else {
            for (p, level) in &snapshot {
                membership[p.index()].classify(now, *level);
            }
        }
    }

    println!(
        "\nThe crashed member walks trusted → fuzzy → suspected as κ accrues\n\
         one unit per missed heartbeat; the flaky member dips into 'fuzzy'\n\
         during loss bursts but recovers — the intermediate state Friedman's\n\
         proposal wanted, for free from the accrual level. The slowness\n\
         order demotes members only while they are actually slow."
    );
    Ok(())
}
