//! Quickstart: monitor one process with the φ accrual detector over a
//! simulated WAN, watch the suspicion level accrue after a crash, and act
//! on it with a threshold of your choosing.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use accrual_fd::prelude::*;
use accrual_fd::sim::replay::{replay, ReplayConfig};
use accrual_fd::sim::scenario::Scenario;
use accrual_fd::sim::simulate;

fn main() {
    // A jittery WAN: 1 s heartbeats, ~100 ms delay with 40 ms jitter, 1%
    // loss. The monitored process crashes at t = 60 s.
    let crash = Timestamp::from_secs(60);
    let scenario = Scenario::wan_jitter()
        .with_horizon(Timestamp::from_secs(90))
        .with_crash_at(crash);
    let arrivals = simulate(&scenario, 42);
    println!(
        "simulated {} heartbeats ({} delivered, {:.1}% lost), crash at {}",
        arrivals.sent_count(),
        arrivals.delivered_count(),
        arrivals.loss_rate() * 100.0,
        crash,
    );

    // Feed them to a φ detector and sample the suspicion level once a second.
    let mut monitor = PhiAccrual::with_defaults();
    let trace = replay(
        &arrivals,
        &mut monitor,
        ReplayConfig::every(Duration::from_secs(1)),
    );

    println!("\n   t(s)   φ        verdict at Φ = 3");
    let threshold = SuspicionLevel::new(3.0).expect("valid threshold");
    let mut interpreter = ThresholdInterpreter::new(threshold);
    let mut detected_at = None;
    for sample in trace.iter() {
        let status = interpreter.observe(sample.at, sample.level);
        if status.is_suspected() && detected_at.is_none() && sample.at >= crash {
            detected_at = Some(sample.at);
        }
        let secs = sample.at.as_secs_f64() as u64;
        if secs.is_multiple_of(5) || (55..70).contains(&secs) {
            println!(
                "  {:>5}   {:<8.3} {}",
                secs,
                sample.level.value().min(999.0),
                status
            );
        }
    }

    match detected_at {
        Some(at) => println!(
            "\ncrash detected {:.1} s after it happened",
            (at - crash).as_secs_f64()
        ),
        None => println!("\ncrash not detected within the horizon"),
    }
}
