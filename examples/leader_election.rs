//! Eventual leader election (Ω) end to end: heartbeats → φ suspicion
//! levels → Algorithm 1 binary verdicts → "smallest trusted id wins".
//!
//! This is the paper's §4 equivalence result doing real work: Ω is the
//! weakest failure detector for consensus, and here it is built from
//! nothing but accrual machinery. Five processes run over a jittery WAN;
//! the leader (p0) crashes at t = 100 s, its successor (p1) at t = 200 s.
//! Watch every correct process converge to the same new leader after each
//! crash.
//!
//! ```text
//! cargo run --example leader_election
//! ```

use accrual_fd::core::failure::FailurePattern;
use accrual_fd::omega::{run_omega, OmegaRunConfig};
use accrual_fd::prelude::*;
use accrual_fd::sim::scenario::Scenario;

fn main() {
    let n = 5;
    let mut pattern = FailurePattern::all_correct(n);
    pattern.crash(ProcessId::new(0), Timestamp::from_secs(100));
    pattern.crash(ProcessId::new(1), Timestamp::from_secs(200));

    let config = OmegaRunConfig {
        processes: n,
        link_template: Scenario::wan_jitter(),
        pattern,
        horizon: Timestamp::from_secs(300),
        query_interval: Duration::from_millis(500),
        epsilon: 0.1,
        stability: 8,
    };
    let run = run_omega(&config, 7, |_, _| PhiAccrual::with_defaults());

    println!("  t(s)  leader as seen by each correct process");
    for probe in [30u64, 90, 101, 103, 110, 190, 201, 204, 220, 290] {
        let at = Timestamp::from_secs(probe);
        let mut views = Vec::new();
        for q in 0..n {
            let process = ProcessId::new(q);
            if config.pattern.has_failed_by(process, at) {
                views.push(format!("{process}:†"));
                continue;
            }
            let leader = run
                .timeline(process)
                .iter()
                .rev()
                .find(|(t, _)| *t <= at)
                .map_or_else(|| "?".into(), |(_, l)| l.to_string());
            views.push(format!("{process}→{leader}"));
        }
        println!("  {probe:>4}  {}", views.join("  "));
    }

    match run.stable_leader(0.25) {
        Some(leader) => println!(
            "\nΩ holds: every correct process settled on {leader} (the lowest\n\
             surviving id) and stayed there — leadership built from suspicion\n\
             levels alone, via Algorithm 1 (§4.1) per peer."
        ),
        None => println!("\nΩ did not stabilize within the horizon (unexpected)"),
    }
}
