//! Capture once, evaluate every detector offline — the recorded-trace
//! workflow the φ paper's evaluation used (theirs was a week-long WAN
//! capture; here we record a simulated run, but the CSV could equally
//! come from production).
//!
//! The example writes a trace to CSV, reads it back, and scores all four
//! detectors on the *identical* arrival process — the only fair way to
//! compare failure detectors.
//!
//! ```text
//! cargo run --example trace_replay
//! ```

use accrual_fd::detectors::kappa::PhiContribution;
use accrual_fd::prelude::*;
use accrual_fd::qos::metrics::analyze_at_threshold;
use accrual_fd::sim::replay::{replay, ReplayConfig};
use accrual_fd::sim::scenario::Scenario;
use accrual_fd::sim::{read_csv, simulate, write_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Record" a run: 10 minutes of bursty WAN, crash at t = 400 s.
    let crash = Timestamp::from_secs(400);
    let scenario = Scenario::bursty_loss()
        .with_horizon(Timestamp::from_secs(600))
        .with_crash_at(crash);
    let recorded = simulate(&scenario, 2025);

    // 2. Export to CSV (in production: append rows as heartbeats arrive).
    let mut csv = Vec::new();
    write_csv(&recorded, &mut csv)?;
    println!(
        "captured {} heartbeats ({} delivered) into {} bytes of CSV\n",
        recorded.sent_count(),
        recorded.delivered_count(),
        csv.len()
    );

    // 3. Re-import and replay through each detector with a threshold in
    //    its own units, roughly matched for clean-network detection time.
    let trace = read_csv(csv.as_slice())?;
    let candidates: Vec<(
        &str,
        Box<dyn accrual_fd::core::accrual::AccrualFailureDetector>,
        f64,
    )> = vec![
        ("simple", Box::new(SimpleAccrual::new(Timestamp::ZERO)), 3.5),
        ("chen", Box::new(ChenAccrual::with_defaults()), 2.5),
        ("phi", Box::new(PhiAccrual::with_defaults()), 8.0),
        (
            "kappa",
            Box::new(KappaAccrual::new(KappaConfig::default(), PhiContribution)?),
            3.0,
        ),
    ];

    println!("detector  threshold  detection (s)  wrong suspicions  P_A");
    for (name, mut detector, thr) in candidates {
        let levels = replay(
            &trace,
            detector.as_mut(),
            ReplayConfig::every(Duration::from_millis(250)),
        );
        let report = analyze_at_threshold(&levels, SuspicionLevel::new(thr)?, Some(crash));
        println!(
            "{name:<9} {thr:>8.1}  {:>12}  {:>16}  {:.5}",
            report
                .detection_time
                .map_or("—".into(), |d| format!("{d:.2}")),
            report.mistakes,
            report.query_accuracy,
        );
    }

    println!(
        "\nSame bytes, four detectors: any capture — simulated or from a\n\
         real deployment — becomes a benchmark for every detector in the\n\
         library (afd_sim::trace_io)."
    );
    Ok(())
}
