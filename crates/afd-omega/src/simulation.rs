//! Whole-system Ω runs over the simulated network.
//!
//! Every ordered pair of processes gets an independent simulated link;
//! every process runs an [`OmegaElector`] over its
//! incoming heartbeats. The run records each correct process's leader
//! timeline, and [`OmegaRun::stable_leader`] checks the Ω property: from
//! some point on, every correct process trusts the *same correct*
//! process.

use std::collections::BTreeMap;

use afd_core::accrual::AccrualFailureDetector;
use afd_core::failure::FailurePattern;
use afd_core::process::ProcessId;
use afd_core::time::{Duration, Timestamp};
use afd_sim::scenario::Scenario;
use afd_sim::simulate;

use crate::elector::OmegaElector;

/// Configuration of a system-wide Ω run.
#[derive(Debug, Clone)]
pub struct OmegaRunConfig {
    /// Number of processes (ids `0..n`).
    pub processes: u32,
    /// Per-link scenario template; its `crash_at` and `horizon` are
    /// overridden per link / by `pattern`.
    pub link_template: Scenario,
    /// Who crashes, and when.
    pub pattern: FailurePattern,
    /// End of the run.
    pub horizon: Timestamp,
    /// How often each process queries its Ω module.
    pub query_interval: Duration,
    /// Resolution ε for the per-peer Algorithm 1 transformers.
    pub epsilon: f64,
    /// Leader-stability requirement in queries (see
    /// [`OmegaElector::with_stability`]).
    pub stability: u32,
}

/// The leader timelines of one Ω run.
#[derive(Debug, Clone)]
pub struct OmegaRun {
    timelines: BTreeMap<ProcessId, Vec<(Timestamp, ProcessId)>>,
    pattern: FailurePattern,
}

impl OmegaRun {
    /// The leader timeline of `process` (empty if it never queried).
    pub fn timeline(&self, process: ProcessId) -> &[(Timestamp, ProcessId)] {
        self.timelines.get(&process).map_or(&[], |v| v.as_slice())
    }

    /// The Ω check: if, over the trailing `tail_fraction` of each correct
    /// process's timeline, every correct process outputs one constant
    /// leader and they all agree on a *correct* process, returns that
    /// leader.
    ///
    /// # Panics
    ///
    /// Panics if `tail_fraction` is not in `(0, 1]`.
    pub fn stable_leader(&self, tail_fraction: f64) -> Option<ProcessId> {
        assert!(
            tail_fraction > 0.0 && tail_fraction <= 1.0,
            "tail fraction must be in (0, 1]"
        );
        let mut agreed: Option<ProcessId> = None;
        for q in self.pattern.correct() {
            let timeline = self.timelines.get(&q)?;
            if timeline.is_empty() {
                return None;
            }
            let start = timeline.len() - ((timeline.len() as f64 * tail_fraction) as usize).max(1);
            let tail = &timeline[start..];
            let leader = tail[0].1;
            if !tail.iter().all(|&(_, l)| l == leader) {
                return None; // still flapping
            }
            match agreed {
                None => agreed = Some(leader),
                Some(l) if l != leader => return None, // disagreement
                _ => {}
            }
        }
        // The agreed leader must itself be correct.
        agreed.filter(|&l| self.pattern.is_correct(l))
    }
}

/// Runs the whole system: n processes, all-to-all heartbeat links, one
/// elector per process.
///
/// Each ordered link `(sender, receiver)` is simulated independently from
/// `link_template` with its own derived seed; a sender's crash silences
/// all its outgoing links at the same instant. Crashed processes stop
/// querying at their crash time.
pub fn run_omega<D, F>(config: &OmegaRunConfig, seed: u64, mut factory: F) -> OmegaRun
where
    D: AccrualFailureDetector,
    F: FnMut(ProcessId, ProcessId) -> D,
{
    let n = config.processes;
    assert!(n >= 2, "need at least two processes");
    assert!(
        !config.query_interval.is_zero(),
        "query interval must be positive"
    );

    // Simulate every ordered link.
    let mut deliveries: BTreeMap<(ProcessId, ProcessId), Vec<(u64, Timestamp)>> = BTreeMap::new();
    for sender in 0..n {
        let sender_id = ProcessId::new(sender);
        for receiver in 0..n {
            if sender == receiver {
                continue;
            }
            let receiver_id = ProcessId::new(receiver);
            let mut scenario = config.link_template.clone().with_horizon(config.horizon);
            scenario.crash_at = config.pattern.crash_time(sender_id);
            let link_seed = seed ^ (u64::from(sender) << 24) ^ (u64::from(receiver) << 8);
            let trace = simulate(&scenario, link_seed);
            deliveries.insert(
                (sender_id, receiver_id),
                trace.deliveries_in_arrival_order(),
            );
        }
    }

    // One elector per process.
    let mut electors: BTreeMap<ProcessId, OmegaElector<D>> = (0..n)
        .map(|q| {
            let me = ProcessId::new(q);
            let peers = (0..n).filter(|&p| p != q).map(ProcessId::new);
            let elector = OmegaElector::new(me, peers, config.epsilon, |peer| factory(me, peer))
                .with_stability(config.stability);
            (me, elector)
        })
        .collect();

    // Per-link delivery cursor and freshness watermark (Algorithm 4
    // lines 8–10: a reordered heartbeat with a stale sequence number is
    // dropped, across the whole run).
    let mut cursors: BTreeMap<(ProcessId, ProcessId), (usize, u64)> =
        deliveries.keys().map(|&k| (k, (0, 0))).collect();
    let mut timelines: BTreeMap<ProcessId, Vec<(Timestamp, ProcessId)>> =
        (0..n).map(|q| (ProcessId::new(q), Vec::new())).collect();

    let mut now = Timestamp::ZERO + config.query_interval;
    while now <= config.horizon {
        for (me, elector) in electors.iter_mut() {
            if config.pattern.has_failed_by(*me, now) {
                continue; // crashed processes take no steps
            }
            // Deliver everything that arrived on my incoming links.
            for sender in 0..n {
                let sender_id = ProcessId::new(sender);
                if sender_id == *me {
                    continue;
                }
                let key = (sender_id, *me);
                let list = &deliveries[&key];
                let (cursor, highest) = cursors.get_mut(&key).expect("cursor exists");
                while *cursor < list.len() && list[*cursor].1 <= now {
                    let (seq, at) = list[*cursor];
                    *cursor += 1;
                    if seq > *highest {
                        *highest = seq;
                        elector.heartbeat(sender_id, at);
                    }
                }
            }
            let leader = elector.leader(now);
            timelines
                .get_mut(me)
                .expect("timeline exists")
                .push((now, leader));
        }
        now += config.query_interval;
    }

    OmegaRun {
        timelines,
        pattern: config.pattern.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_detectors::phi::PhiAccrual;

    fn config(n: u32, crashes: &[(u32, u64)]) -> OmegaRunConfig {
        let mut pattern = FailurePattern::all_correct(n);
        for &(p, at) in crashes {
            pattern.crash(ProcessId::new(p), Timestamp::from_secs(at));
        }
        OmegaRunConfig {
            processes: n,
            link_template: Scenario::wan_jitter(),
            pattern,
            horizon: Timestamp::from_secs(300),
            query_interval: Duration::from_millis(500),
            epsilon: 0.1,
            stability: 8, // 4 s of persistence before the output moves
        }
    }

    fn phi_factory(_me: ProcessId, _peer: ProcessId) -> PhiAccrual {
        PhiAccrual::with_defaults()
    }

    #[test]
    fn all_correct_system_elects_p0() {
        let run = run_omega(&config(4, &[]), 11, phi_factory);
        assert_eq!(run.stable_leader(0.5), Some(ProcessId::new(0)));
    }

    #[test]
    fn leader_crash_triggers_re_election() {
        // p0 crashes at t=80: everyone must converge on p1.
        let run = run_omega(&config(4, &[(0, 80)]), 13, phi_factory);
        assert_eq!(run.stable_leader(0.3), Some(ProcessId::new(1)));
        // Before the crash, p0 led.
        let early = run.timeline(ProcessId::new(3));
        let pre_crash: Vec<_> = early
            .iter()
            .filter(|(t, _)| *t < Timestamp::from_secs(60))
            .collect();
        assert!(pre_crash.iter().all(|(_, l)| *l == ProcessId::new(0)));
    }

    #[test]
    fn cascading_crashes_settle_on_lowest_survivor() {
        let run = run_omega(&config(5, &[(0, 60), (1, 120), (3, 90)]), 17, phi_factory);
        assert_eq!(run.stable_leader(0.25), Some(ProcessId::new(2)));
    }

    #[test]
    fn crashed_processes_stop_querying() {
        let run = run_omega(&config(3, &[(1, 50)]), 19, phi_factory);
        let t1 = run.timeline(ProcessId::new(1));
        assert!(!t1.is_empty());
        assert!(t1.last().unwrap().0 < Timestamp::from_secs(51));
    }

    #[test]
    #[should_panic(expected = "at least two processes")]
    fn single_process_rejected() {
        let _ = run_omega(&config(1, &[]), 1, phi_factory);
    }
}
