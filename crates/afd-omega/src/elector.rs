//! The Ω elector: eventual leader election over accrual detectors.

use std::collections::BTreeMap;

use afd_core::accrual::AccrualFailureDetector;
use afd_core::process::ProcessId;
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::Timestamp;
use afd_core::transform::{AccrualToBinary, Interpreter};

/// One process's Ω module: monitors every peer through an accrual
/// detector, interprets each with its own Algorithm 1 transformer, and
/// outputs the smallest-id unsuspected process as leader.
///
/// # Examples
///
/// ```
/// use afd_core::process::ProcessId;
/// use afd_core::time::Timestamp;
/// use afd_detectors::simple::SimpleAccrual;
/// use afd_omega::OmegaElector;
///
/// let me = ProcessId::new(2);
/// let peers = [ProcessId::new(0), ProcessId::new(1)];
/// let mut omega = OmegaElector::new(me, peers, 0.1, |_| {
///     SimpleAccrual::new(Timestamp::ZERO)
/// });
/// // With no heartbeats yet everyone is still trusted (Algorithm 1
/// // starts trusting): the lowest id leads.
/// assert_eq!(omega.leader(Timestamp::from_millis(1)), ProcessId::new(0));
/// ```
#[derive(Debug)]
pub struct OmegaElector<D> {
    me: ProcessId,
    peers: BTreeMap<ProcessId, PeerState<D>>,
    /// Consecutive queries the current candidate must differ from the
    /// output before the output changes (1 = raw min-trusted).
    stability: u32,
    output: Option<ProcessId>,
    streak: u32,
    streak_candidate: Option<ProcessId>,
}

#[derive(Debug)]
struct PeerState<D> {
    detector: D,
    interpreter: AccrualToBinary,
}

impl<D: AccrualFailureDetector> OmegaElector<D> {
    /// Creates the elector for process `me` monitoring `peers`, building
    /// one accrual detector per peer with `factory` and one Algorithm 1
    /// transformer (resolution `epsilon`) on top of each.
    ///
    /// # Panics
    ///
    /// Panics if `peers` contains `me`, or `epsilon` is not finite and
    /// positive.
    pub fn new(
        me: ProcessId,
        peers: impl IntoIterator<Item = ProcessId>,
        epsilon: f64,
        mut factory: impl FnMut(ProcessId) -> D,
    ) -> Self {
        let peers: BTreeMap<ProcessId, PeerState<D>> = peers
            .into_iter()
            .map(|p| {
                assert_ne!(p, me, "a process does not monitor itself");
                (
                    p,
                    PeerState {
                        detector: factory(p),
                        interpreter: AccrualToBinary::new(epsilon),
                    },
                )
            })
            .collect();
        OmegaElector {
            me,
            peers,
            stability: 1,
            output: None,
            streak: 0,
            streak_candidate: None,
        }
    }

    /// Returns a copy demanding that a new leader candidate persist for
    /// `queries` consecutive queries before the output changes.
    ///
    /// Ω only promises *eventual* agreement; the underlying ◊P verdicts
    /// may still flap briefly long after a run has mostly stabilized
    /// (Algorithm 1's mistakes become rare, not instantly impossible).
    /// A stability requirement — the standard smoothing in deployed
    /// leader elections — absorbs those blips without affecting the
    /// eventual guarantee: once the candidate is eventually constant,
    /// the output converges to it.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is zero.
    pub fn with_stability(mut self, queries: u32) -> Self {
        assert!(queries > 0, "stability must be at least one query");
        self.stability = queries;
        self
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Records a heartbeat from `from` (ignored if `from` is unknown).
    pub fn heartbeat(&mut self, from: ProcessId, arrival: Timestamp) -> bool {
        match self.peers.get_mut(&from) {
            Some(state) => {
                state.detector.record_heartbeat(arrival);
                true
            }
            None => false,
        }
    }

    /// One Ω query: steps every peer's detector + Algorithm 1 transformer
    /// and returns the current leader — the smallest-id process not
    /// currently suspected (`me` always trusts itself), smoothed by the
    /// configured stability requirement.
    pub fn leader(&mut self, now: Timestamp) -> ProcessId {
        let mut candidate = self.me;
        for (&p, state) in self.peers.iter_mut() {
            let level = state.detector.suspicion_level(now);
            let status = state.interpreter.observe(now, level);
            if status.is_trusted() && p < candidate {
                candidate = p;
            }
        }

        let current = *self.output.get_or_insert(candidate);
        if candidate == current {
            self.streak = 0;
            self.streak_candidate = None;
        } else {
            if self.streak_candidate == Some(candidate) {
                self.streak += 1;
            } else {
                self.streak_candidate = Some(candidate);
                self.streak = 1;
            }
            if self.streak >= self.stability {
                self.output = Some(candidate);
                self.streak = 0;
                self.streak_candidate = None;
                return candidate;
            }
        }
        current
    }

    /// The peers currently trusted (as of their last query), plus `me`.
    pub fn trusted(&self) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = self
            .peers
            .iter()
            .filter(|(_, s)| s.interpreter.status().is_trusted())
            .map(|(&p, _)| p)
            .collect();
        out.push(self.me);
        out.sort();
        out
    }

    /// The current suspicion level of `peer`, if monitored.
    pub fn suspicion_of(&mut self, peer: ProcessId, now: Timestamp) -> Option<SuspicionLevel> {
        self.peers
            .get_mut(&peer)
            .map(|s| s.detector.suspicion_level(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_detectors::simple::SimpleAccrual;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs_f64(s)
    }

    fn elector(me: u32, peers: &[u32]) -> OmegaElector<SimpleAccrual> {
        OmegaElector::new(p(me), peers.iter().map(|&i| p(i)), 0.1, |_| {
            SimpleAccrual::new(Timestamp::ZERO)
        })
    }

    /// Drives heartbeats from `alive` peers each second starting at
    /// `start` and queries the leader; returns the final leader.
    fn run(
        elector: &mut OmegaElector<SimpleAccrual>,
        alive: &[u32],
        start: u64,
        secs: u64,
    ) -> ProcessId {
        let mut leader = elector.id();
        for k in start..start + secs {
            for &a in alive {
                elector.heartbeat(p(a), ts(k as f64));
            }
            leader = elector.leader(ts(k as f64 + 0.5));
        }
        leader
    }

    #[test]
    fn lowest_alive_id_wins() {
        let mut omega = elector(2, &[0, 1]);
        assert_eq!(run(&mut omega, &[0, 1], 1, 30), p(0));
    }

    #[test]
    fn leader_moves_up_when_lowest_crashes() {
        let mut omega = elector(2, &[0, 1]);
        assert_eq!(run(&mut omega, &[0, 1], 1, 30), p(0));
        // p0 stops heartbeating: eventually p1 takes over.
        let leader = run(&mut omega, &[1], 31, 60);
        assert_eq!(leader, p(1));
    }

    #[test]
    fn self_leads_when_alone() {
        let mut omega = elector(2, &[0, 1]);
        let _ = run(&mut omega, &[0, 1], 1, 20);
        let leader = run(&mut omega, &[], 21, 120);
        assert_eq!(leader, p(2), "with every peer silent, me leads");
        assert_eq!(omega.trusted(), vec![p(2)]);
    }

    #[test]
    fn stability_absorbs_single_query_blips() {
        let mut omega = elector(2, &[0, 1]).with_stability(3);
        assert_eq!(run(&mut omega, &[0, 1], 1, 30), p(0));
        // One missed heartbeat round: the raw candidate flips briefly but
        // the output must hold.
        run(&mut omega, &[1], 31, 2);
        assert_eq!(run(&mut omega, &[0, 1], 33, 5), p(0));
        // A sustained outage does change the output.
        assert_eq!(run(&mut omega, &[1], 38, 40), p(1));
    }

    #[test]
    fn heartbeat_from_unknown_process_is_dropped() {
        let mut omega = elector(1, &[0]);
        assert!(!omega.heartbeat(p(9), ts(1.0)));
        assert!(omega.heartbeat(p(0), ts(1.0)));
    }

    #[test]
    #[should_panic(expected = "does not monitor itself")]
    fn self_in_peer_set_rejected() {
        let _ = elector(1, &[0, 1]);
    }

    #[test]
    fn suspicion_levels_visible() {
        let mut omega = elector(1, &[0]);
        omega.heartbeat(p(0), ts(5.0));
        let sl = omega.suspicion_of(p(0), ts(8.0)).unwrap();
        assert_eq!(sl.value(), 3.0);
        assert_eq!(omega.suspicion_of(p(7), ts(8.0)), None);
        assert_eq!(omega.id(), p(1));
    }
}
