//! Eventual leader election (the **Ω oracle**) built on accrual failure
//! detectors — the end-to-end demonstration of the paper's computational-
//! equivalence result.
//!
//! §4 of the paper proves that ◊P_ac and ◊P have the same computational
//! power, and §6 discusses leader oracles (Chu; Mostéfaoui et al.) as
//! consumers of failure detection. Ω — "eventually, all correct processes
//! trust the same correct process" — is the weakest failure detector for
//! consensus, so electing a leader through the paper's machinery is the
//! canonical proof-by-construction that nothing was lost on the way from
//! suspicion levels to classical verdicts:
//!
//! ```text
//! heartbeats → accrual detector (◊P_ac) → Algorithm 1 (◊P) → Ω = min trusted
//! ```
//!
//! - [`OmegaElector`]: one process's module — a detector plus an
//!   Algorithm 1 transformer per peer, leader = smallest unsuspected id.
//! - [`simulation`]: whole-system runs over `afd-sim` with crash
//!   patterns, plus the stability check for the Ω property.
//!
//! # Example
//!
//! ```
//! use afd_core::failure::FailurePattern;
//! use afd_core::process::ProcessId;
//! use afd_core::time::{Duration, Timestamp};
//! use afd_detectors::phi::PhiAccrual;
//! use afd_omega::{run_omega, OmegaRunConfig};
//! use afd_sim::scenario::Scenario;
//!
//! let mut pattern = FailurePattern::all_correct(3);
//! pattern.crash(ProcessId::new(0), Timestamp::from_secs(60));
//! let config = OmegaRunConfig {
//!     processes: 3,
//!     link_template: Scenario::wan_jitter(),
//!     pattern,
//!     horizon: Timestamp::from_secs(180),
//!     query_interval: Duration::from_millis(500),
//!     epsilon: 0.1,
//!     stability: 8,
//! };
//! let run = run_omega(&config, 42, |_, _| PhiAccrual::with_defaults());
//! // After p0's crash, every correct process settles on p1.
//! assert_eq!(run.stable_leader(0.3), Some(ProcessId::new(1)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod elector;
pub mod simulation;

pub use elector::OmegaElector;
pub use simulation::{run_omega, OmegaRun, OmegaRunConfig};
