//! Property-based tests for Ω: for arbitrary crash subsets and times, the
//! system must converge on the smallest surviving id.

use afd_core::failure::FailurePattern;
use afd_core::process::ProcessId;
use afd_core::time::{Duration, Timestamp};
use afd_detectors::phi::PhiAccrual;
use afd_omega::{run_omega, OmegaRunConfig};
use afd_sim::scenario::Scenario;
use proptest::prelude::*;

proptest! {
    // Each case simulates n²−n links; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn omega_converges_on_lowest_survivor(
        n in 3u32..6,
        crash_ids in prop::collection::btree_set(0u32..6, 0..3),
        crash_base in 40u64..120,
        seed in 0u64..1_000,
    ) {
        // Keep at least one process alive.
        let crash_ids: Vec<u32> = crash_ids.into_iter().filter(|&c| c < n).collect();
        prop_assume!((crash_ids.len() as u32) < n);

        let mut pattern = FailurePattern::all_correct(n);
        for (i, &c) in crash_ids.iter().enumerate() {
            pattern.crash(
                ProcessId::new(c),
                Timestamp::from_secs(crash_base + 20 * i as u64),
            );
        }
        let expected = (0..n)
            .map(ProcessId::new)
            .find(|p| pattern.is_correct(*p))
            .expect("someone survives");

        let config = OmegaRunConfig {
            processes: n,
            link_template: Scenario::wan_jitter(),
            pattern,
            horizon: Timestamp::from_secs(crash_base + 20 * crash_ids.len() as u64 + 140),
            query_interval: Duration::from_millis(500),
            epsilon: 0.1,
            stability: 8,
        };
        let run = run_omega(&config, seed, |_, _| PhiAccrual::with_defaults());
        prop_assert_eq!(
            run.stable_leader(0.2),
            Some(expected),
            "crashes {:?} should leave {} leading",
            crash_ids,
            expected
        );
    }

    /// Leadership timelines never name a process that is already known
    /// crashed for longer than the detection + stability horizon.
    #[test]
    fn dead_leaders_are_abandoned_promptly(
        seed in 0u64..500,
        crash_at in 50u64..100,
    ) {
        let n = 4;
        let mut pattern = FailurePattern::all_correct(n);
        pattern.crash(ProcessId::new(0), Timestamp::from_secs(crash_at));
        let config = OmegaRunConfig {
            processes: n,
            link_template: Scenario::wan_jitter(),
            pattern,
            horizon: Timestamp::from_secs(crash_at + 120),
            query_interval: Duration::from_millis(500),
            epsilon: 0.1,
            stability: 8,
        };
        let run = run_omega(&config, seed, |_, _| PhiAccrual::with_defaults());
        // Generous bound: detection (a few seconds at φ-threshold scale)
        // plus stability (4 s), with margin.
        let deadline = Timestamp::from_secs(crash_at + 60);
        for q in 1..n {
            let stale = run
                .timeline(ProcessId::new(q))
                .iter()
                .filter(|(t, l)| *t > deadline && *l == ProcessId::new(0))
                .count();
            prop_assert_eq!(stale, 0, "p{} still names the dead leader after {}", q, deadline);
        }
    }
}
