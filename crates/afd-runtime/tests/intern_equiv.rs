//! Observable equivalence of the slab-backed [`WireDecoder`] and the
//! PR 9 `HashMap`-backed decoder it replaced.
//!
//! The oracle below *is* the old implementation — same parse, same
//! checksums, same bounded-table semantics (reject new indices once the
//! map is full) — reimplemented against `HashMap<u32, Entry>`. The
//! proptests drive both decoders through arbitrary v1/v2 frame mixes
//! (jittered schedules, sequence gaps, index clobbering, bit flips,
//! truncations, trailing bytes, hand-built deltas with bogus checksums)
//! and demand identical observables after every single frame: the
//! decode result, `interned()`, and `interns_rejected()`.
//!
//! The one *intentional* divergence is the shape of the capacity bound:
//! the slab stores exactly indices `0..capacity`, where the map stored
//! any index until it held `capacity` entries. Under the dense
//! identity-index convention (intern index = sender id, below the
//! capacity) the two are indistinguishable — every index generated here
//! stays in `[0, capacity)`, and the dedicated boundary test pins the
//! slab's behavior on the first index past the edge.

use std::collections::HashMap;

use afd_core::process::ProcessId;
use afd_core::time::Timestamp;
use afd_runtime::varint;
use afd_runtime::{
    DeltaEncoder, Heartbeat, WireDecoder, WireError, DELTA_MAGIC, INTERN_LEN, MAX_V2_FRAME,
};
use proptest::prelude::*;

const INTERVAL_NANOS: u64 = 100_000_000;
/// Small enough that clobbering and full-table states are common.
const CAP: usize = 8;

// ---- the PR 9 decoder, verbatim semantics over a HashMap ----

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash ^ (hash >> 32)) as u32
}

fn fnv16_bound(payload: &[u8], sender: u32) -> u16 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload.iter().chain(sender.to_le_bytes().iter()) {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let folded = (hash ^ (hash >> 32)) as u32;
    (folded ^ (folded >> 16)) as u16
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    sender: u32,
    ckpt_seq: u64,
    ckpt_sent_at_nanos: u64,
    interval_nanos: u64,
}

struct OracleDecoder {
    table: HashMap<u32, Entry>,
    capacity: usize,
    interns_rejected: u64,
}

impl OracleDecoder {
    fn new(capacity: usize) -> Self {
        OracleDecoder {
            table: HashMap::new(),
            capacity: capacity.max(1),
            interns_rejected: 0,
        }
    }

    fn decode(&mut self, frame: &[u8]) -> Result<Heartbeat, WireError> {
        match frame.first() {
            None => Err(WireError::ShortFrame),
            Some(&DELTA_MAGIC) => self.decode_delta(frame),
            Some(_) => {
                if frame.len() < 4 {
                    return Err(WireError::ShortFrame);
                }
                if frame[0..2] != *b"AF" {
                    return Err(WireError::BadMagic);
                }
                match frame[2] {
                    1 => Heartbeat::decode(frame),
                    2 => self.decode_intern(frame),
                    v => Err(WireError::BadVersion(v)),
                }
            }
        }
    }

    fn decode_intern(&mut self, frame: &[u8]) -> Result<Heartbeat, WireError> {
        let frame: &[u8; INTERN_LEN] = frame.try_into().map_err(|_| {
            if frame.len() < INTERN_LEN {
                WireError::ShortFrame
            } else {
                WireError::TrailingBytes
            }
        })?;
        if frame[3] != 1 {
            return Err(WireError::BadKind(frame[3]));
        }
        let expected = u32::from_le_bytes([frame[36], frame[37], frame[38], frame[39]]);
        if fnv1a(&frame[..36]) != expected {
            return Err(WireError::ChecksumMismatch);
        }
        let intern_idx = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let sender = u32::from_le_bytes([frame[8], frame[9], frame[10], frame[11]]);
        let seq = u64::from_le_bytes(frame[12..20].try_into().expect("8 bytes"));
        let nanos = u64::from_le_bytes(frame[20..28].try_into().expect("8 bytes"));
        let interval = u64::from_le_bytes(frame[28..36].try_into().expect("8 bytes"));
        let entry = Entry {
            sender,
            ckpt_seq: seq,
            ckpt_sent_at_nanos: nanos,
            interval_nanos: interval,
        };
        // The old double probe, bound by table fullness.
        if self.table.contains_key(&intern_idx) || self.table.len() < self.capacity {
            self.table.insert(intern_idx, entry);
        } else {
            self.interns_rejected += 1;
        }
        Ok(Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            sent_at: Timestamp::from_nanos(nanos),
        })
    }

    fn decode_delta(&mut self, frame: &[u8]) -> Result<Heartbeat, WireError> {
        let mut at = 1usize;
        let (idx, n) = varint::decode_u64(&frame[at..]).map_err(|_| WireError::ShortFrame)?;
        at += n;
        let intern_idx = u32::try_from(idx).map_err(|_| WireError::InternOutOfRange(idx))?;
        let (seq_delta, n) = varint::decode_u64(&frame[at..]).map_err(|_| WireError::ShortFrame)?;
        at += n;
        let (residual, n) = varint::decode_i64(&frame[at..]).map_err(|_| WireError::ShortFrame)?;
        at += n;
        match frame.len() {
            l if l < at + 2 => return Err(WireError::ShortFrame),
            l if l > at + 2 => return Err(WireError::TrailingBytes),
            _ => {}
        }
        let entry = *self
            .table
            .get(&intern_idx)
            .ok_or(WireError::UnknownIntern(intern_idx))?;
        let expected = u16::from_le_bytes([frame[at], frame[at + 1]]);
        if fnv16_bound(&frame[..at], entry.sender) != expected {
            return Err(WireError::ChecksumMismatch);
        }
        let predicted = entry
            .ckpt_sent_at_nanos
            .wrapping_add(seq_delta.wrapping_mul(entry.interval_nanos));
        Ok(Heartbeat {
            sender: ProcessId::new(entry.sender),
            seq: entry.ckpt_seq.wrapping_add(seq_delta),
            sent_at: Timestamp::from_nanos(predicted.wrapping_add(residual as u64)),
        })
    }
}

// ---- frame-mix generation ----

#[derive(Debug, Clone, Copy)]
enum Mutation {
    Flip { at: usize, bit: u8 },
    Cut { keep: usize },
    Extend { extra: usize },
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// The next heartbeat of `sender`'s v2 stream (encoder state is
    /// carried across ops, so interns, deltas, resyncs, and clobbers
    /// all happen on the senders' own schedule).
    V2 {
        sender: u32,
        gap: u64,
        jitter: i64,
        mutate: Option<Mutation>,
    },
    /// A plain v1 frame interleaved on the same socket.
    V1 {
        sender: u32,
        seq: u64,
        mutate: Option<Mutation>,
    },
    /// A hand-built delta with an arbitrary (usually wrong) checksum —
    /// unknown-index and checksum-mismatch paths on demand.
    Raw {
        idx: u32,
        seq_delta: u64,
        residual: i64,
        sum: u16,
    },
}

fn mutation(rng: &mut TestRng) -> Option<Mutation> {
    // Mutate roughly one frame in five.
    if rng.below(5) != 0 {
        return None;
    }
    Some(match rng.below(3) {
        0 => Mutation::Flip {
            at: rng.below(64) as usize,
            bit: rng.below(8) as u8,
        },
        1 => Mutation::Cut {
            keep: rng.below(64) as usize,
        },
        _ => Mutation::Extend {
            extra: 1 + rng.below(3) as usize,
        },
    })
}

fn op() -> impl Strategy<Value = Op> {
    // Senders span twice the index space, so two senders share each
    // intern index and clobbering is routine. Indices stay in
    // [0, CAP): the domain where slab and map bounds coincide.
    proptest::FnStrategy::new(|rng: &mut TestRng| match rng.below(9) {
        0..=5 => Op::V2 {
            sender: rng.below(2 * CAP as u64) as u32,
            gap: rng.below(4),
            jitter: rng.below(20_000_001) as i64 - 10_000_000,
            mutate: mutation(rng),
        },
        6 | 7 => Op::V1 {
            sender: rng.below(2 * CAP as u64) as u32,
            seq: rng.below(1000),
            mutate: mutation(rng),
        },
        _ => Op::Raw {
            idx: rng.below(CAP as u64) as u32,
            seq_delta: rng.below(16),
            residual: rng.below(100_000) as i64 - 50_000,
            sum: rng.below(1 << 16) as u16,
        },
    })
}

/// Per-sender v2 stream state, lazily built as ops arrive.
struct Streams {
    encoders: HashMap<u32, (DeltaEncoder, u64)>,
}

impl Streams {
    fn new() -> Self {
        Streams {
            encoders: HashMap::new(),
        }
    }

    /// Encodes `sender`'s next heartbeat into `buf`, returning the
    /// frame length.
    fn next_frame(&mut self, sender: u32, gap: u64, jitter: i64, buf: &mut [u8]) -> usize {
        let (enc, seq) = self.encoders.entry(sender).or_insert_with(|| {
            (
                DeltaEncoder::new(
                    ProcessId::new(sender),
                    sender % CAP as u32,
                    std::time::Duration::from_nanos(INTERVAL_NANOS),
                    1 + sender % 5,
                ),
                0,
            )
        });
        *seq += 1 + gap;
        let nominal = (*seq as i64).saturating_mul(INTERVAL_NANOS as i64);
        let hb = Heartbeat {
            sender: ProcessId::new(sender),
            seq: *seq,
            sent_at: Timestamp::from_nanos(nominal.saturating_add(jitter).max(0) as u64),
        };
        enc.encode(&hb, buf)
    }
}

fn build_frame(streams: &mut Streams, op: Op, buf: &mut [u8; 80]) -> usize {
    match op {
        Op::V2 {
            sender,
            gap,
            jitter,
            mutate,
        } => {
            let n = streams.next_frame(sender, gap, jitter, buf);
            apply(buf, n, mutate)
        }
        Op::V1 {
            sender,
            seq,
            mutate,
        } => {
            let hb = Heartbeat {
                sender: ProcessId::new(sender),
                seq,
                sent_at: Timestamp::from_nanos(seq.wrapping_mul(INTERVAL_NANOS)),
            };
            let frame = hb.encode();
            buf[..frame.len()].copy_from_slice(&frame);
            apply(buf, frame.len(), mutate)
        }
        Op::Raw {
            idx,
            seq_delta,
            residual,
            sum,
        } => {
            buf[0] = DELTA_MAGIC;
            let mut at = 1usize;
            at += varint::encode_u64(u64::from(idx), &mut buf[at..]).expect("fits");
            at += varint::encode_u64(seq_delta, &mut buf[at..]).expect("fits");
            at += varint::encode_i64(residual, &mut buf[at..]).expect("fits");
            buf[at..at + 2].copy_from_slice(&sum.to_le_bytes());
            at + 2
        }
    }
}

fn apply(buf: &mut [u8; 80], n: usize, mutate: Option<Mutation>) -> usize {
    match mutate {
        None => n,
        Some(Mutation::Flip { at, bit }) => {
            buf[at % n] ^= 1 << bit;
            n
        }
        Some(Mutation::Cut { keep }) => keep % n,
        Some(Mutation::Extend { extra }) => {
            for b in &mut buf[n..n + extra] {
                *b = 0xEE;
            }
            n + extra
        }
    }
}

/// Feeds one frame to both decoders and demands identical observables.
fn step(dec: &mut WireDecoder, oracle: &mut OracleDecoder, frame: &[u8]) {
    let got = dec.decode(frame);
    let want = oracle.decode(frame);
    prop_assert_eq!(got, want, "decode diverged on {:02x?}", frame);
    prop_assert_eq!(dec.interned(), oracle.table.len(), "interned() diverged");
    prop_assert_eq!(
        dec.interns_rejected(),
        oracle.interns_rejected,
        "interns_rejected diverged"
    );
}

proptest! {
    /// On any v1/v2 mix — clean, clobbered, flipped, truncated,
    /// extended, or hand-forged — the slab decoder and the old map
    /// decoder agree on every accept, every error, and every counter,
    /// after every frame.
    #[test]
    fn slab_decoder_is_observably_the_hashmap_decoder(ops in prop::collection::vec(op(), 1..250)) {
        let mut dec = WireDecoder::with_capacity(CAP);
        let mut oracle = OracleDecoder::new(CAP);
        let mut streams = Streams::new();
        let mut buf = [0u8; 80];
        for op in ops {
            let n = build_frame(&mut streams, op, &mut buf);
            step(&mut dec, &mut oracle, &buf[..n]);
        }
    }

    /// A mid-stream receiver restart: `WireDecoder::reset` must behave
    /// exactly like standing up a fresh map decoder — stale deltas
    /// bounce, re-interns heal, counters keep agreeing. (The rejected
    /// counter is cumulative across the reset by contract, so the
    /// oracle's is carried over.)
    #[test]
    fn reset_is_observably_a_fresh_decoder(
        before in prop::collection::vec(op(), 1..120),
        after in prop::collection::vec(op(), 1..120),
    ) {
        let mut dec = WireDecoder::with_capacity(CAP);
        let mut oracle = OracleDecoder::new(CAP);
        let mut streams = Streams::new();
        let mut buf = [0u8; 80];
        for op in before {
            let n = build_frame(&mut streams, op, &mut buf);
            step(&mut dec, &mut oracle, &buf[..n]);
        }
        dec.reset();
        let rejected_so_far = oracle.interns_rejected;
        oracle = OracleDecoder::new(CAP);
        oracle.interns_rejected = rejected_so_far;
        // Sender encoder state is *not* reset: their in-flight deltas
        // now reference interns the receiver forgot, on both sides.
        for op in after {
            let n = build_frame(&mut streams, op, &mut buf);
            step(&mut dec, &mut oracle, &buf[..n]);
        }
    }
}

/// The slab's capacity edge, pinned: the last in-range index is
/// remembered, the first out-of-range index decodes as a heartbeat but
/// is counted as rejected, and its deltas bounce as unknown.
#[test]
fn capacity_boundary_rejects_only_past_the_edge() {
    let cap = 4u32;
    let mut dec = WireDecoder::with_capacity(cap as usize);
    let mut buf = [0u8; MAX_V2_FRAME];
    for idx in [cap - 1, cap] {
        let mut enc = DeltaEncoder::new(
            ProcessId::new(idx),
            idx,
            std::time::Duration::from_nanos(INTERVAL_NANOS),
            8,
        );
        let hb = Heartbeat {
            sender: ProcessId::new(idx),
            seq: 1,
            sent_at: Timestamp::from_nanos(1_000),
        };
        let n = enc.encode(&hb, &mut buf);
        assert_eq!(n, INTERN_LEN);
        // Either way the checkpoint heartbeat itself is delivered.
        assert_eq!(dec.decode(&buf[..n]), Ok(hb));
        let hb2 = Heartbeat {
            sender: ProcessId::new(idx),
            seq: 2,
            sent_at: Timestamp::from_nanos(INTERVAL_NANOS + 1_000),
        };
        let n2 = enc.encode(&hb2, &mut buf);
        assert!(n2 < INTERN_LEN, "second frame is a delta");
        if idx < cap {
            assert_eq!(dec.decode(&buf[..n2]), Ok(hb2), "in-range index works");
        } else {
            assert_eq!(
                dec.decode(&buf[..n2]),
                Err(WireError::UnknownIntern(idx)),
                "index past the edge was never remembered"
            );
        }
    }
    assert_eq!(dec.interned(), 1);
    assert_eq!(dec.interns_rejected(), 1);
}
