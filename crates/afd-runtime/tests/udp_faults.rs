//! Fault injection over *real* UDP loopback sockets — no in-process
//! channel stand-ins. Corrupt, duplicated, and reordered datagrams are
//! classified (not crashed on), oversize datagrams are detected and
//! dropped rather than silently truncated into decodable frames (the
//! truncation regression), and a v2 delta-wire sender interoperates
//! with a `RuntimeMonitor` across a real socket.
//!
//! UDP gives no delivery guarantee even on loopback, so every
//! expectation is polled under a deadline: the kernel queue is drained
//! until the expected counters appear or the deadline names the miss.

use std::time::{Duration as StdDuration, Instant};

use afd_core::process::ProcessId;
use afd_core::time::{Duration, Timestamp};
use afd_detectors::simple::SimpleAccrual;
use afd_runtime::{
    FrameBatch, Heartbeat, MonitorStats, RuntimeMonitor, SenderConfig, SenderCore, Transport,
    UdpTransport, VirtualClock, WireVersion, MAX_DATAGRAM,
};

const DEADLINE: StdDuration = StdDuration::from_secs(10);

fn frame(sender: u32, seq: u64) -> [u8; afd_runtime::FRAME_LEN] {
    Heartbeat {
        sender: ProcessId::new(sender),
        seq,
        sent_at: Timestamp::from_millis(seq * 100),
    }
    .encode()
}

/// Polls `monitor` until `done(stats)` holds or the deadline passes;
/// returns the final stats either way.
fn settle<T, C, D>(
    monitor: &mut RuntimeMonitor<T, C, D>,
    done: impl Fn(&MonitorStats) -> bool,
) -> MonitorStats
where
    T: Transport,
    C: afd_runtime::Clock,
    D: afd_core::accrual::AccrualFailureDetector,
{
    let deadline = Instant::now() + DEADLINE;
    loop {
        monitor.poll().expect("transport failed");
        let stats = monitor.stats();
        if done(&stats) || Instant::now() >= deadline {
            return stats;
        }
        std::thread::sleep(StdDuration::from_millis(2));
    }
}

/// Corrupt, duplicated, and reordered datagrams over a real socket are
/// each counted into their own bucket and kept away from detectors.
#[test]
fn corrupt_duplicate_and_reordered_datagrams_are_classified() {
    let (mut tx, rx) = UdpTransport::loopback_pair().expect("loopback sockets");
    let clock = VirtualClock::new();
    clock.set(Timestamp::from_secs(1));
    let mut monitor = RuntimeMonitor::new(rx, clock, |_| SimpleAccrual::new(Timestamp::ZERO));
    let peer = ProcessId::new(1);
    monitor.watch(peer);

    // In-order, then a datagram whose payload byte was flipped in
    // flight (checksum breaks), then a reordering (3 before 2), then an
    // exact duplicate of the freshest frame.
    tx.send(&frame(1, 1)).expect("send seq 1");
    let mut corrupt = frame(1, 9);
    corrupt[20] ^= 0xFF;
    tx.send(&corrupt).expect("send corrupt");
    tx.send(&frame(1, 3)).expect("send seq 3");
    tx.send(&frame(1, 2)).expect("send stale seq 2");
    tx.send(&frame(1, 3)).expect("send duplicate seq 3");

    let stats = settle(&mut monitor, |s| {
        s.accepted + s.corrupt + s.stale + s.duplicate >= 5
    });
    assert_eq!(stats.accepted, 2, "seq 1 and seq 3: {stats:?}");
    assert_eq!(stats.corrupt, 1, "{stats:?}");
    assert_eq!(stats.stale, 1, "reordered seq 2: {stats:?}");
    assert_eq!(stats.duplicate, 1, "redelivered seq 3: {stats:?}");
    assert_eq!(stats.unwatched, 0, "{stats:?}");
}

/// The oversize regression, receive side: a datagram longer than
/// `MAX_DATAGRAM` whose head is a perfectly valid frame must be
/// *dropped and counted* — the pre-fix code read into a
/// `MAX_DATAGRAM`-sized buffer, so the kernel truncated the tail and
/// the head decoded as if the peer had sent it.
#[test]
fn oversize_datagrams_are_dropped_not_truncated() {
    // The transport refuses to *send* oversize frames, so smuggle the
    // datagram in from a raw socket that the receiver treats as its peer.
    let raw = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind raw");
    let raw_addr = raw.local_addr().expect("raw addr");
    let mut rx =
        UdpTransport::bind("127.0.0.1:0".parse().expect("addr"), raw_addr).expect("bind receiver");
    let rx_addr = rx.local_addr().expect("receiver addr");

    let mut oversize = vec![0u8; MAX_DATAGRAM + 200];
    oversize[..frame(1, 1).len()].copy_from_slice(&frame(1, 1));
    raw.send_to(&oversize, rx_addr).expect("send oversize");
    raw.send_to(&frame(1, 2), rx_addr).expect("send good");

    // Drain via the per-frame path until the good frame arrives.
    let deadline = Instant::now() + DEADLINE;
    let mut got = Vec::new();
    while got.is_empty() && Instant::now() < deadline {
        while let Some(f) = rx.try_recv().expect("recv") {
            got.push(f);
        }
        std::thread::sleep(StdDuration::from_millis(2));
    }
    assert_eq!(got.len(), 1, "only the in-size datagram may surface");
    assert_eq!(
        Heartbeat::decode(&got[0]),
        Ok(Heartbeat {
            sender: ProcessId::new(1),
            seq: 2,
            sent_at: Timestamp::from_millis(200),
        })
    );
    assert_eq!(rx.oversize_dropped(), 1, "oversize is counted, not eaten");

    // Same property through the batched arena path.
    raw.send_to(&oversize, rx_addr)
        .expect("send oversize again");
    raw.send_to(&frame(1, 3), rx_addr).expect("send good again");
    let mut batch = FrameBatch::with_capacity(8);
    let deadline = Instant::now() + DEADLINE;
    let mut drained = 0usize;
    while drained == 0 && Instant::now() < deadline {
        drained = rx.recv_batch(&mut batch).expect("recv_batch");
        std::thread::sleep(StdDuration::from_millis(2));
    }
    assert_eq!(drained, 1);
    let slot = batch.iter().next().expect("one frame in the batch");
    assert_eq!(
        Heartbeat::decode(slot).map(|hb| hb.seq),
        Ok(3),
        "the truncated head of the oversize datagram must not decode"
    );
    assert_eq!(rx.oversize_dropped(), 2);

    // Send side refuses outright — the bug is named at the source.
    assert!(
        rx.send(&oversize).is_err(),
        "sender must reject frames over MAX_DATAGRAM"
    );
}

/// A v2 delta-wire sender heartbeating across a real UDP socket is
/// fully understood by a `RuntimeMonitor`: every beat accepted, zero
/// corrupt, and strictly fewer wire bytes than v1 would have spent.
#[test]
fn v2_sender_over_real_udp_feeds_runtime_monitor() {
    let (mut tx, rx) = UdpTransport::loopback_pair().expect("loopback sockets");
    let clock = VirtualClock::new();
    let mut monitor =
        RuntimeMonitor::new(rx, clock.clone(), |_| SimpleAccrual::new(Timestamp::ZERO));
    let peer = ProcessId::new(11);
    monitor.watch(peer);

    let interval = Duration::from_secs(1);
    let mut sender = SenderCore::new(
        SenderConfig::new(peer, interval).with_wire(WireVersion::V2 { resync_every: 4 }),
        Timestamp::ZERO,
        7,
    );

    let rounds = 12u64;
    for s in 0..rounds {
        let now = Timestamp::from_secs(s);
        clock.set(now);
        sender.poll(now, &mut tx, |_| {}).expect("sender poll");
    }

    let stats = settle(&mut monitor, |s| s.accepted >= rounds);
    assert_eq!(stats.accepted, rounds, "{stats:?}");
    assert_eq!(stats.corrupt, 0, "{stats:?}");
    assert!(
        sender.wire_bytes() < rounds * afd_runtime::FRAME_LEN as u64,
        "v2 must undercut v1's {} bytes, spent {}",
        rounds * afd_runtime::FRAME_LEN as u64,
        sender.wire_bytes()
    );
    assert!(
        monitor.level(peer).is_some(),
        "the watched peer has a live suspicion level"
    );
}
