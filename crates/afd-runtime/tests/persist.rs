//! Durability acceptance tests: kill-during-checkpoint chaos (restore
//! falls back to the last complete manifest generation; corrupt segments
//! are quarantined by checksum, never silently imported), supervisor
//! restart with restore-before-rewatch, engine wiring in both modes, and
//! proptest round-trips showing dump→restore preserves phi to 1e-9,
//! Chen's expected arrival to 1 ns, simple accrual exactly, and replay
//! rejection state.

// Exact float equality is the point of the simple-accrual round trip.
#![allow(clippy::float_cmp)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use afd_core::history::SuspicionTrace;
use afd_core::process::ProcessId;
use afd_core::properties::{check_upper_bound, AccruementCheck};
use afd_core::time::{Duration, Timestamp};
use afd_detectors::adaptive::AdaptiveAccrual;
use afd_detectors::akka::AkkaPhi;
use afd_detectors::chen::ChenAccrual;
use afd_detectors::phi::PhiAccrual;
use afd_detectors::simple::SimpleAccrual;
use afd_runtime::persist::CheckpointDaemon;
use afd_runtime::{
    ChannelTransport, CheckpointConfig, Checkpointer, EngineConfig, EngineError, EngineMode,
    FaultySink, FaultySinkPlan, Heartbeat, MemSink, ParallelShardEngine, SegmentSink, ShardConfig,
    ShardedMonitor, SupervisedThread, Supervisor, Transport, VirtualClock,
};
use proptest::prelude::*;

type PhiMonitor = ShardedMonitor<ChannelTransport, VirtualClock, PhiAccrual>;
type SharedSink = Arc<Mutex<MemSink>>;

fn frame(sender: u32, seq: u64) -> Vec<u8> {
    Heartbeat {
        sender: ProcessId::new(sender),
        seq,
        sent_at: Timestamp::from_nanos(seq),
    }
    .encode()
    .to_vec()
}

fn ts(s: f64) -> Timestamp {
    Timestamp::from_secs_f64(s)
}

fn phi_monitor(rx: ChannelTransport, clock: &VirtualClock, shards: usize) -> PhiMonitor {
    ShardedMonitor::new(
        rx,
        clock.clone(),
        ShardConfig {
            shards,
            slots_per_shard: 16,
        },
        |_| PhiAccrual::with_defaults(),
    )
}

/// The tentpole chaos scenario: a monitor learns arrival statistics, dumps
/// a complete generation, then is killed *mid-checkpoint* — segments of
/// the next generation hit the sink but the manifest (the commit point)
/// never installs. A Supervisor restarts it through a spawn closure that
/// restores from the shared sink *before* re-watching. The restore must
/// come from the last complete manifest generation, the restored phi must
/// match pre-crash phi within 1e-9 on the first post-restore query, replay
/// rejection must survive, and Accruement / Upper Bound must hold on the
/// post-restart run.
#[test]
fn kill_during_checkpoint_restores_last_complete_generation_via_supervisor() {
    const PEERS: u32 = 24;
    const SHARDS: usize = 4;
    const LEARN_UNTIL: u64 = 60;

    let clock = VirtualClock::new();
    let store: SharedSink = Arc::new(Mutex::new(MemSink::new()));

    // Incarnation 1 learns each peer's cadence on virtual time.
    let (mut tx, rx) = ChannelTransport::pair();
    let mut mon = phi_monitor(rx, &clock, SHARDS);
    for id in 0..PEERS {
        mon.watch(ProcessId::new(id)).unwrap();
    }
    let mut seqs = vec![0u64; PEERS as usize];
    for second in 1..=LEARN_UNTIL {
        clock.set(Timestamp::from_secs(second));
        for (id, seq) in seqs.iter_mut().enumerate() {
            *seq += 1;
            tx.send(&frame(id as u32, *seq)).unwrap();
        }
        mon.tick().unwrap();
    }

    // Generation 1 completes cleanly.
    let mut ckpt = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default());
    let report = mon.checkpoint(&mut ckpt).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.peers, PEERS as usize);
    assert_eq!(report.segments, SHARDS);

    // Reference: the pre-crash suspicion level of every peer, queried half
    // a second after the last heartbeat round.
    let t_query = ts(LEARN_UNTIL as f64 + 0.5);
    clock.set(t_query);
    let reference: Vec<f64> = (0..PEERS)
        .map(|id| mon.level(ProcessId::new(id)).unwrap().value())
        .collect();

    // Generation 2 dies mid-dump: every segment is written, but the
    // process is killed before the manifest's rename — modeled by a
    // drop-install fault targeting exactly the generation-2 manifest.
    let dying_sink = FaultySink::new(
        Arc::clone(&store),
        FaultySinkPlan::new().with_drop_install(1.0),
        99,
    )
    .with_filter("manifest-g2");
    let mut dying = Checkpointer::new(dying_sink, CheckpointConfig::default());
    mon.checkpoint(&mut dying).unwrap();
    assert_eq!(dying.sink().stats().dropped_installs, 1, "the kill landed");
    // The crash: monitor and its transport die with the process.
    drop(mon);
    drop(tx);

    // Supervisor restart. Incarnation 1's thread is already dead (the
    // crash); the respawn closure restores from the shared sink before
    // re-watching, then parks the rebuilt monitor for the test to drive.
    struct Incarnation {
        mon: PhiMonitor,
        tx: ChannelTransport,
        generation: Option<u64>,
        segments_rejected: u64,
        watched: u64,
        seeded: u64,
        next_generation: u64,
    }
    let slot: Arc<Mutex<Option<Incarnation>>> = Arc::new(Mutex::new(None));
    let attempt = Arc::new(AtomicU64::new(0));
    let spawn = {
        let slot = Arc::clone(&slot);
        let attempt = Arc::clone(&attempt);
        let store = Arc::clone(&store);
        let clock = clock.clone();
        move || {
            let liveness = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let handle = if attempt.fetch_add(1, Ordering::SeqCst) == 0 {
                // The incarnation that was killed mid-checkpoint.
                std::thread::spawn(|| {})
            } else {
                // Restore BEFORE re-watching.
                let mut ckpt = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default());
                let restored = ckpt.restore(&clock).unwrap();
                let (tx, rx) = ChannelTransport::pair();
                let mut mon = phi_monitor(rx, &clock, SHARDS);
                let import = mon.restore(&restored.peers);
                // A post-restore checkpoint must number above the dead
                // generation's leftover segments, never clobber them.
                let next = mon.checkpoint(&mut ckpt).unwrap().generation;
                *slot.lock().unwrap() = Some(Incarnation {
                    mon,
                    tx,
                    generation: restored.generation,
                    segments_rejected: restored.segments_rejected,
                    watched: import.watched,
                    seeded: import.seeded,
                    next_generation: next,
                });
                let liveness = Arc::clone(&liveness);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        liveness.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                })
            };
            SupervisedThread {
                liveness,
                stop,
                handle,
            }
        }
    };
    let mut sup = Supervisor::new(spawn, Duration::from_secs(3600), clock.clone());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while sup.restarts() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "dead thread unnoticed"
        );
        sup.tick();
        std::thread::yield_now();
    }
    let mut inc = slot
        .lock()
        .unwrap()
        .take()
        .expect("respawn parked the monitor");

    // Restore came from the last COMPLETE manifest generation (1), not the
    // partially-written generation 2, and rejected nothing within it.
    assert_eq!(inc.generation, Some(1));
    assert_eq!(inc.segments_rejected, 0);
    assert_eq!(inc.watched, u64::from(PEERS));
    assert_eq!(inc.seeded, u64::from(PEERS));
    assert_eq!(
        inc.next_generation, 3,
        "numbering continues past the dead generation"
    );

    // First post-restore query answers at pre-crash quality: phi within
    // 1e-9 of the pre-crash value, both on the exact-now path and on the
    // already-published lock-free path.
    for (id, &expected) in reference.iter().enumerate() {
        let p = ProcessId::new(id as u32);
        let got = inc.mon.level(p).unwrap().value();
        assert!(
            (got - expected).abs() < 1e-9,
            "peer {id}: restored phi {got} vs pre-crash {expected}"
        );
    }
    let published = inc.mon.reader().snapshot();
    assert_eq!(published.len(), PEERS as usize);
    for (p, level) in published {
        let expected = reference[p.index()];
        assert!(
            (level.value() - expected).abs() < 1e-9,
            "published level for {p:?} diverged after restore"
        );
    }

    // Replay rejection survived the restart: redelivering the highest
    // sequence numbers is rejected, the next fresh one is accepted.
    for id in 0..PEERS {
        inc.tx.send(&frame(id, seqs[id as usize])).unwrap();
    }
    let rejected = inc.mon.tick().unwrap();
    assert_eq!(rejected.accepted, 0, "replayed frames must not be accepted");
    let stats = inc.mon.stats();
    assert_eq!(
        stats.totals.duplicate + stats.totals.stale,
        u64::from(PEERS)
    );

    // Post-restart run: peers 0..12 stay crashed, the rest resume beating.
    // Accruement must hold for the crashed peers and Upper Bound for all —
    // the restored windows keep answering, not just at t_query.
    const CRASHED: u32 = 12;
    const RUN_UNTIL: u64 = 180;
    let mut traces: Vec<SuspicionTrace> = (0..PEERS).map(|_| SuspicionTrace::new()).collect();
    let reader = inc.mon.reader();
    for second in (LEARN_UNTIL + 1)..=RUN_UNTIL {
        clock.set(Timestamp::from_secs(second));
        for id in CRASHED..PEERS {
            seqs[id as usize] += 1;
            inc.tx.send(&frame(id, seqs[id as usize])).unwrap();
        }
        inc.mon.tick().unwrap();
        sup.tick();
        let at = reader.published_at();
        for (p, level) in reader.snapshot() {
            traces[p.index()].push(at, level);
        }
    }
    assert_eq!(sup.restarts(), 1, "no spurious restarts after recovery");

    let check = AccruementCheck {
        epsilon: 1e-6,
        min_increases: 10,
        min_suffix_fraction: 0.2,
    };
    for (id, trace) in traces.iter().enumerate() {
        check_upper_bound(trace, None)
            .unwrap_or_else(|e| panic!("peer {id}: Upper Bound violated post-restart: {e}"));
        if (id as u32) < CRASHED {
            let witness = check
                .run(trace)
                .unwrap_or_else(|e| panic!("peer {id}: Accruement violated post-restart: {e}"));
            assert!(witness.strict_increases >= 10, "peer {id}: flat suffix");
        }
    }
    sup.shutdown();
}

/// A segment torn mid-write (garbage tail + a guaranteed bit flip) fails
/// its checksum on restore: that shard's peers are quarantined and
/// counted, every other shard's peers are restored, and the
/// `persist.segments_rejected` counter reports it.
#[test]
fn torn_segment_is_quarantined_and_the_rest_restored() {
    const PEERS: u32 = 16;
    const SHARDS: usize = 4;
    let clock = VirtualClock::new();
    let store: SharedSink = Arc::new(Mutex::new(MemSink::new()));

    let (mut tx, rx) = ChannelTransport::pair();
    let mut mon = phi_monitor(rx, &clock, SHARDS);
    for id in 0..PEERS {
        mon.watch(ProcessId::new(id)).unwrap();
    }
    for second in 1..=20u64 {
        clock.set(Timestamp::from_secs(second));
        for id in 0..PEERS {
            tx.send(&frame(id, second)).unwrap();
        }
        mon.tick().unwrap();
    }

    // Tear exactly shard 2's segment; the manifest and the other segments
    // install intact.
    let torn_sink = FaultySink::new(
        Arc::clone(&store),
        FaultySinkPlan::new()
            .with_torn_write(1.0)
            .with_bit_flip(1.0),
        7,
    )
    .with_filter("-s2.afds");
    let mut dump = Checkpointer::new(torn_sink, CheckpointConfig::default());
    mon.checkpoint(&mut dump).unwrap();
    assert!(dump.sink().stats().torn_writes >= 1);

    let registry = afd_obs::Registry::new();
    let mut ckpt = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default());
    ckpt.bind_metrics(&registry);
    let restored = ckpt.restore(&clock).unwrap();
    assert_eq!(restored.generation, Some(1), "manifest generation is kept");
    assert_eq!(restored.segments_rejected, 1, "exactly the torn shard");
    assert_eq!(
        registry.snapshot().counter("persist.segments_rejected"),
        Some(1)
    );

    // The surviving peers are exactly the ones not routed to shard 2.
    let survivors: Vec<u32> = (0..PEERS)
        .filter(|&id| mon.shard_of(ProcessId::new(id)) != 2)
        .collect();
    assert!(survivors.len() < PEERS as usize, "shard 2 was populated");
    let mut got: Vec<u32> = restored.peers.iter().map(|p| p.process.as_u32()).collect();
    got.sort_unstable();
    assert_eq!(got, survivors);
    for peer in &restored.peers {
        assert!(peer.seed.is_some(), "surviving peers carry their seeds");
        assert!(peer.highest_seq.is_some());
    }

    // Importing the survivors into a fresh monitor works and publishes.
    let (_tx2, rx2) = ChannelTransport::pair();
    let mut fresh = phi_monitor(rx2, &clock, SHARDS);
    let import = fresh.restore(&restored.peers);
    assert_eq!(import.watched, survivors.len() as u64);
    assert_eq!(import.seeded, survivors.len() as u64);
    assert_eq!(import.capacity_rejected, 0);
    assert_eq!(fresh.reader().snapshot().len(), survivors.len());
}

/// A short write (truncation) is likewise rejected by the length check and
/// checksum, and a fully dropped install simply leaves the segment
/// missing — both quarantine without failing the restore.
#[test]
fn short_written_and_missing_segments_are_rejected_not_imported() {
    let clock = VirtualClock::new();
    let store: SharedSink = Arc::new(Mutex::new(MemSink::new()));
    let (mut tx, rx) = ChannelTransport::pair();
    let mut mon = phi_monitor(rx, &clock, 2);
    for id in 0..8u32 {
        mon.watch(ProcessId::new(id)).unwrap();
    }
    for second in 1..=10u64 {
        clock.set(Timestamp::from_secs(second));
        for id in 0..8u32 {
            tx.send(&frame(id, second)).unwrap();
        }
        mon.tick().unwrap();
    }

    let sink = FaultySink::new(
        Arc::clone(&store),
        FaultySinkPlan::new().with_short_write(1.0),
        11,
    )
    .with_filter("-s0.afds");
    let mut dump = Checkpointer::new(sink, CheckpointConfig::default());
    mon.checkpoint(&mut dump).unwrap();
    let restored = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default())
        .restore(&clock)
        .unwrap();
    assert_eq!(restored.generation, Some(1));
    assert_eq!(restored.segments_rejected, 1);
    assert!(restored.peers.iter().all(|p| mon.shard_of(p.process) != 0));

    // Second generation: shard 1's segment never installs at all.
    let sink = FaultySink::new(
        Arc::clone(&store),
        FaultySinkPlan::new().with_drop_install(1.0),
        12,
    )
    .with_filter("g2-s1.afds");
    let mut dump = Checkpointer::new(sink, CheckpointConfig::default());
    mon.checkpoint(&mut dump).unwrap();
    let restored = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default())
        .restore(&clock)
        .unwrap();
    assert_eq!(restored.generation, Some(2));
    assert_eq!(restored.segments_rejected, 1, "missing segment quarantined");
    assert!(restored.peers.iter().all(|p| mon.shard_of(p.process) != 1));
}

/// Engine wiring: explicit `checkpoint()` between Lockstep ticks, restore
/// only while Idle (refused while running), and post-restore reads at
/// pre-shutdown quality.
#[test]
fn engine_checkpoints_in_lockstep_and_restores_while_idle() {
    const PEERS: u32 = 8;
    let clock = VirtualClock::new();
    let store: SharedSink = Arc::new(Mutex::new(MemSink::new()));
    let config = EngineConfig {
        workers: 2,
        publish_every: Duration::ZERO,
        ..EngineConfig::default()
    };

    let (mut tx, rx) = ChannelTransport::pair();
    let mut engine =
        ParallelShardEngine::new(rx, clock.clone(), config, |_| PhiAccrual::with_defaults());
    for id in 0..PEERS {
        engine.watch(ProcessId::new(id)).unwrap();
    }
    engine.start(EngineMode::Lockstep).unwrap();
    for second in 1..=30u64 {
        clock.set(Timestamp::from_secs(second));
        for id in 0..PEERS {
            tx.send(&frame(id, second)).unwrap();
        }
        engine.tick().unwrap();
    }
    // Explicit checkpoint between ticks — the Lockstep cadence.
    let mut ckpt = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default());
    let report = engine.checkpoint(&mut ckpt).unwrap();
    assert_eq!(report.peers, PEERS as usize);
    let reference: Vec<_> = engine.reader().snapshot();
    engine.shutdown().unwrap();

    let restored = ckpt.restore(&clock).unwrap();
    assert_eq!(restored.peers.len(), PEERS as usize);

    let (mut tx2, rx2) = ChannelTransport::pair();
    let mut fresh =
        ParallelShardEngine::new(rx2, clock.clone(), config, |_| PhiAccrual::with_defaults());
    let import = fresh.restore(&restored.peers).unwrap();
    assert_eq!(import.watched, u64::from(PEERS));
    assert_eq!(import.seeded, u64::from(PEERS));
    // The restore already published: readers see pre-shutdown levels
    // before the first worker even starts.
    let recovered = fresh.reader().snapshot();
    assert_eq!(recovered.len(), reference.len());
    for ((p1, l1), (p2, l2)) in reference.iter().zip(&recovered) {
        assert_eq!(p1, p2);
        assert!(
            (l1.value() - l2.value()).abs() < 1e-9,
            "{p1:?}: {} vs {}",
            l1.value(),
            l2.value()
        );
    }

    fresh.start(EngineMode::Lockstep).unwrap();
    assert_eq!(
        fresh.restore(&restored.peers).unwrap_err(),
        EngineError::Running,
        "restore is an Idle-only operation"
    );
    // Replay rejection survived: the old sequence numbers stay rejected.
    clock.set(Timestamp::from_secs(31));
    for id in 0..PEERS {
        tx2.send(&frame(id, 30)).unwrap();
    }
    engine_settle(&mut fresh, |s| {
        s.totals.duplicate + s.totals.stale >= u64::from(PEERS)
    });
    assert_eq!(fresh.stats().totals.accepted, 0);
    fresh.shutdown().unwrap();
}

fn engine_settle<T, C, D>(
    engine: &mut ParallelShardEngine<T, C, D>,
    done: impl Fn(&afd_runtime::EngineStats) -> bool,
) where
    T: Transport + Send + 'static,
    C: afd_runtime::Clock + Clone + Send + 'static,
    D: afd_core::accrual::AccrualFailureDetector + Send + 'static,
{
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        engine.tick().unwrap();
        if done(&engine.stats()) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "engine never settled: {:?}",
            engine.stats()
        );
        std::thread::yield_now();
    }
}

/// FreeRunning cadence: a `CheckpointDaemon` over the engine's reader
/// dumps a new generation every period of virtual time, concurrently with
/// the running workers.
#[test]
fn checkpoint_daemon_dumps_on_cadence_while_free_running() {
    const PEERS: u32 = 4;
    let clock = VirtualClock::new();
    let store: SharedSink = Arc::new(Mutex::new(MemSink::new()));
    let (mut tx, rx) = ChannelTransport::pair();
    let mut engine = ParallelShardEngine::new(
        rx,
        clock.clone(),
        EngineConfig {
            workers: 2,
            publish_every: Duration::ZERO,
            ..EngineConfig::default()
        },
        |_| PhiAccrual::with_defaults(),
    );
    for id in 0..PEERS {
        engine.watch(ProcessId::new(id)).unwrap();
    }
    engine.start(EngineMode::FreeRunning).unwrap();
    clock.set(Timestamp::from_secs(1));
    for id in 0..PEERS {
        tx.send(&frame(id, 1)).unwrap();
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while engine.stats().totals.accepted < u64::from(PEERS) {
        assert!(std::time::Instant::now() < deadline, "intake stalled");
        std::thread::yield_now();
    }

    let ckpt = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default());
    let daemon =
        CheckpointDaemon::spawn(engine.reader(), ckpt, clock.clone(), Duration::from_secs(5));
    let wait_for = |name: &str| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while store.lock().unwrap().get(name).unwrap().is_none() {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never wrote {name}"
            );
            std::thread::yield_now();
        }
    };
    clock.set(Timestamp::from_secs(7));
    wait_for("manifest-g1.afdm");
    clock.set(Timestamp::from_secs(13));
    wait_for("manifest-g2.afdm");
    let mut ckpt = daemon
        .stop()
        .expect("daemon thread returned its checkpointer");
    engine.shutdown().unwrap();

    let restored = ckpt.restore(&clock).unwrap();
    assert!(restored.generation >= Some(2));
    assert_eq!(restored.peers.len(), PEERS as usize);
    assert_eq!(restored.segments_rejected, 0);
}

/// The two PR-7 detectors slot into the sharded checkpoint/restore path
/// unchanged: dump a monitor full of them through the real segment bytes,
/// restore into a fresh monitor, and the first post-restore query answers
/// within 1e-9 of pre-crash for every peer. (A regular cadence, where the
/// moments→samples reconstruction is lossless for the adaptive histogram.)
#[test]
fn new_detectors_roundtrip_through_sharded_checkpoint() {
    fn run<D: afd_core::accrual::AccrualFailureDetector>(
        name: &str,
        factory: impl Fn(ProcessId) -> D + Send + Clone + 'static,
    ) {
        const PEERS: u32 = 12;
        let clock = VirtualClock::new();
        let (mut tx, rx) = ChannelTransport::pair();
        let mut mon = ShardedMonitor::new(
            rx,
            clock.clone(),
            ShardConfig {
                shards: 3,
                slots_per_shard: 8,
            },
            factory.clone(),
        );
        for id in 0..PEERS {
            mon.watch(ProcessId::new(id)).unwrap();
        }
        for second in 1..=40u64 {
            clock.set(Timestamp::from_secs(second));
            for id in 0..PEERS {
                tx.send(&frame(id, second)).unwrap();
            }
            mon.tick().unwrap();
        }

        let store: SharedSink = Arc::new(Mutex::new(MemSink::new()));
        let mut ckpt = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default());
        mon.checkpoint(&mut ckpt).unwrap();
        let restored = ckpt.restore(&clock).unwrap();
        assert_eq!(restored.segments_rejected, 0, "{name}: clean dump");
        assert_eq!(restored.peers.len(), PEERS as usize);

        clock.set(ts(40.7));
        let (_tx2, rx2) = ChannelTransport::pair();
        let mut fresh = ShardedMonitor::new(
            rx2,
            clock.clone(),
            ShardConfig {
                shards: 3,
                slots_per_shard: 8,
            },
            factory,
        );
        let import = fresh.restore(&restored.peers);
        assert_eq!(import.seeded, u64::from(PEERS), "{name}: all seeded");
        for id in 0..PEERS {
            let p = ProcessId::new(id);
            let a = mon.level(p).unwrap().value();
            let b = fresh.level(p).unwrap().value();
            assert!(
                (a - b).abs() < 1e-9,
                "{name} peer {id}: {a} vs restored {b}"
            );
        }
    }

    run("akka", |_| AkkaPhi::with_defaults());
    run("adaptive", |_| AdaptiveAccrual::with_defaults());
}

fn heartbeat_times(gaps: &[f64]) -> Vec<Timestamp> {
    let mut t = 1.0;
    let mut out = vec![ts(t)];
    for g in gaps {
        t += g;
        out.push(ts(t));
    }
    out
}

proptest! {
    /// phi dump→restore equivalence: a detector restored from its saved
    /// moments answers within 1e-9 of the original at any later query
    /// time, on any arrival history.
    #[test]
    fn phi_roundtrips_within_1e9(
        gaps in prop::collection::vec(0.05f64..3.0, 0..60),
        late in 0.0f64..5.0,
    ) {
        use afd_core::accrual::AccrualFailureDetector;
        let mut fd = PhiAccrual::with_defaults();
        let arrivals = heartbeat_times(&gaps);
        for &a in &arrivals {
            fd.record_heartbeat(a);
        }
        let seed = fd.save_seed().expect("phi persists a seed");
        let mut restored = PhiAccrual::with_defaults();
        restored.restore_seed(&seed);
        let q = arrivals.last().unwrap().saturating_add(afd_core::time::Duration::from_secs_f64(late));
        let a = fd.suspicion_level(q).value();
        let b = restored.suspicion_level(q).value();
        prop_assert!((a - b).abs() < 1e-9, "phi {a} vs restored {b}");
    }

    /// Akka φ dump→restore equivalence under arbitrary gap histories. The
    /// tolerance is relative because the logistic deviate grows cubically
    /// in elapsed time, amplifying last-bit moment differences.
    #[test]
    fn akka_phi_roundtrips_within_1e9_relative(
        gaps in prop::collection::vec(0.05f64..3.0, 0..60),
        late in 0.0f64..5.0,
    ) {
        use afd_core::accrual::AccrualFailureDetector;
        let mut fd = AkkaPhi::with_defaults();
        let arrivals = heartbeat_times(&gaps);
        for &a in &arrivals {
            fd.record_heartbeat(a);
        }
        let seed = fd.save_seed().expect("akka persists a seed");
        let mut restored = AkkaPhi::with_defaults();
        restored.restore_seed(&seed);
        let q = arrivals.last().unwrap().saturating_add(afd_core::time::Duration::from_secs_f64(late));
        let a = fd.suspicion_level(q).value();
        let b = restored.suspicion_level(q).value();
        prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "akka {a} vs restored {b}");
    }

    /// Adaptive accrual dump→restore equivalence on a regular cadence,
    /// where the moments-only seed reconstructs the histogram losslessly.
    #[test]
    fn adaptive_roundtrips_exactly_on_regular_cadence(
        gap in 0.1f64..3.0,
        beats in 2usize..40,
        late in 0.0f64..5.0,
    ) {
        use afd_core::accrual::AccrualFailureDetector;
        let mut fd = AdaptiveAccrual::with_defaults();
        let arrivals = heartbeat_times(&vec![gap; beats]);
        for &a in &arrivals {
            fd.record_heartbeat(a);
        }
        let seed = fd.save_seed().expect("adaptive persists a seed");
        let mut restored = AdaptiveAccrual::with_defaults();
        restored.restore_seed(&seed);
        let q = arrivals.last().unwrap().saturating_add(afd_core::time::Duration::from_secs_f64(late));
        let a = fd.suspicion_level(q).value();
        let b = restored.suspicion_level(q).value();
        prop_assert!((a - b).abs() < 1e-9, "adaptive {a} vs restored {b}");
    }

    /// Chen dump→restore equivalence: the restored expected arrival is
    /// within one nanosecond of the original.
    #[test]
    fn chen_expected_arrival_roundtrips_within_1ns(
        gaps in prop::collection::vec(0.05f64..3.0, 0..60),
    ) {
        use afd_core::accrual::AccrualFailureDetector;
        let mut fd = ChenAccrual::with_defaults();
        for &a in &heartbeat_times(&gaps) {
            fd.record_heartbeat(a);
        }
        let seed = fd.save_seed().expect("chen persists a seed");
        let mut restored = ChenAccrual::with_defaults();
        restored.restore_seed(&seed);
        let a = fd.expected_arrival().unwrap().as_nanos();
        let b = restored.expected_arrival().unwrap().as_nanos();
        prop_assert!(a.abs_diff(b) <= 1, "EA {a}ns vs restored {b}ns");
    }

    /// Simple accrual dump→restore is exact: same level at every query
    /// time and the heartbeat count is preserved.
    #[test]
    fn simple_roundtrips_exactly(
        beats in 1u64..50,
        late in 0.0f64..10.0,
    ) {
        use afd_core::accrual::AccrualFailureDetector;
        let mut fd = SimpleAccrual::new(Timestamp::ZERO);
        for s in 1..=beats {
            fd.record_heartbeat(Timestamp::from_secs(s));
        }
        let seed = fd.save_seed().expect("simple persists a seed");
        let mut restored = SimpleAccrual::new(Timestamp::ZERO);
        restored.restore_seed(&seed);
        prop_assert_eq!(restored.heartbeats_seen(), beats);
        let q = ts(beats as f64 + late);
        prop_assert_eq!(fd.suspicion_level(q).value(), restored.suspicion_level(q).value());
    }

    /// Full-monitor round trip through the real segment bytes: dump a
    /// monitor, restore into a fresh one with a possibly *different* shard
    /// count, and require identical levels (1e-9), preserved highest
    /// sequence numbers (replays stay rejected), and no peer lost.
    #[test]
    fn monitor_dump_restore_preserves_levels_and_replay_state(
        beats in prop::collection::vec(1u64..30, 1..12),
        shards_before in 1usize..5,
        shards_after in 1usize..5,
    ) {
        let peers = beats.len() as u32;
        let clock = VirtualClock::new();
        let (mut tx, rx) = ChannelTransport::pair();
        let mut mon = phi_monitor(rx, &clock, shards_before);
        for id in 0..peers {
            mon.watch(ProcessId::new(id)).unwrap();
        }
        let last = *beats.iter().max().unwrap();
        for second in 1..=last {
            clock.set(Timestamp::from_secs(second));
            for (id, &b) in beats.iter().enumerate() {
                if second <= b {
                    tx.send(&frame(id as u32, second)).unwrap();
                }
            }
            mon.tick().unwrap();
        }

        let store: SharedSink = Arc::new(Mutex::new(MemSink::new()));
        let mut ckpt = Checkpointer::new(Arc::clone(&store), CheckpointConfig::default());
        mon.checkpoint(&mut ckpt).unwrap();
        let restored = ckpt.restore(&clock).unwrap();
        prop_assert_eq!(restored.segments_rejected, 0);
        prop_assert_eq!(restored.peers.len(), peers as usize);

        clock.set(ts(last as f64 + 0.5));
        let (mut tx2, rx2) = ChannelTransport::pair();
        let mut fresh = phi_monitor(rx2, &clock, shards_after);
        let import = fresh.restore(&restored.peers);
        prop_assert_eq!(import.watched, u64::from(peers));
        prop_assert_eq!(import.seeded, u64::from(peers));
        for id in 0..peers {
            let p = ProcessId::new(id);
            let a = mon.level(p).unwrap().value();
            let b = fresh.level(p).unwrap().value();
            prop_assert!((a - b).abs() < 1e-9, "peer {}: {} vs {}", id, a, b);
        }
        // Replays of each peer's highest seen sequence stay rejected.
        for (id, &b) in beats.iter().enumerate() {
            tx2.send(&frame(id as u32, b)).unwrap();
        }
        let report = fresh.tick().unwrap();
        prop_assert_eq!(report.accepted, 0);
        // The next sequence is fresh and accepted.
        for (id, &b) in beats.iter().enumerate() {
            tx2.send(&frame(id as u32, b + 1)).unwrap();
        }
        let report = fresh.tick().unwrap();
        prop_assert_eq!(report.accepted, peers as usize);
    }
}
