//! Acceptance tests for the compact v2 delta wire format: exact
//! encoder→decoder roundtrips on randomized jittered schedules, v1/v2
//! interop through one decoder (and through one `RuntimeMonitor` fed by
//! mixed-version senders), and the slot-reuse regression — a long frame
//! followed by a shorter one through the same intake slot must never
//! decode by reading the previous occupant's stale arena tail.

use afd_core::process::ProcessId;
use afd_core::time::{Duration, Timestamp};
use afd_detectors::simple::SimpleAccrual;
use afd_runtime::{
    ChannelTransport, DeltaEncoder, FrameBatch, Heartbeat, RuntimeMonitor, SenderConfig,
    SenderCore, VirtualClock, WireDecoder, WireError, WireVersion, FRAME_LEN, INTERN_LEN,
    MAX_V2_FRAME,
};
use proptest::prelude::*;

const INTERVAL_NANOS: u64 = 100_000_000;

/// One heartbeat of a randomized sender schedule: how many sequence
/// numbers it jumps (0 = the normal +1) and how far its send time
/// strays from the nominal 100 ms cadence.
#[derive(Debug, Clone, Copy)]
struct Step {
    gap: u64,
    jitter_nanos: i64,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    let step = proptest::FnStrategy::new(|rng: &mut TestRng| Step {
        gap: rng.below(4),
        // ±10 ms of jitter around the nominal cadence — far beyond what
        // a single-byte residual can express, so multi-byte varints and
        // both residual signs are exercised.
        jitter_nanos: rng.below(20_000_001) as i64 - 10_000_000,
    });
    prop::collection::vec(step, 1..150)
}

fn heartbeat(sender: ProcessId, seq: u64, jitter_nanos: i64) -> Heartbeat {
    let nominal = (seq as i64).saturating_mul(INTERVAL_NANOS as i64);
    Heartbeat {
        sender,
        seq,
        sent_at: Timestamp::from_nanos(nominal.saturating_add(jitter_nanos).max(0) as u64),
    }
}

proptest! {
    /// On any schedule of sequence gaps and timestamp jitter, and any
    /// resync cadence, every v2 frame decodes back to exactly the
    /// heartbeat that went in — intern frames and deltas alike.
    #[test]
    fn v2_roundtrips_exactly_on_jittered_schedules(steps in steps(), resync in 1u32..9) {
        let sender = ProcessId::new(42);
        let mut enc = DeltaEncoder::new(
            sender,
            sender.as_u32(),
            std::time::Duration::from_nanos(INTERVAL_NANOS),
            resync,
        );
        let mut dec = WireDecoder::new();
        let mut buf = [0u8; MAX_V2_FRAME];
        let mut seq = 0u64;
        for step in steps {
            seq += 1 + step.gap;
            let hb = heartbeat(sender, seq, step.jitter_nanos);
            let n = enc.encode(&hb, &mut buf);
            prop_assert!(n > 0, "encoder refused a well-formed heartbeat");
            prop_assert!(n <= MAX_V2_FRAME);
            let got = dec.decode(&buf[..n]);
            prop_assert_eq!(got, Ok(hb));
        }
    }

    /// Slot-reuse regression: after a long frame occupied an intake
    /// slot, a shorter (truncated) frame written into the same slot
    /// must fail to decode — never succeed by reading the previous
    /// frame's stale bytes past the declared length.
    #[test]
    fn truncated_frame_in_reused_slot_never_reads_stale_tail(cut in 1usize..40) {
        let sender = ProcessId::new(7);
        let mut enc = DeltaEncoder::new(
            sender,
            sender.as_u32(),
            std::time::Duration::from_nanos(INTERVAL_NANOS),
            4,
        );
        let mut buf = [0u8; MAX_V2_FRAME];
        let hb = heartbeat(sender, 1, 0);
        let n = enc.encode(&hb, &mut buf);
        prop_assert_eq!(n, INTERN_LEN);

        // Occupy the slot with the full intern frame; it decodes fine.
        let mut batch = FrameBatch::with_capacity(1);
        let mut dec = WireDecoder::new();
        prop_assert!(batch.push(&buf[..n]));
        {
            let frame = batch.iter().next().expect("slot holds the frame");
            prop_assert_eq!(dec.decode(frame), Ok(hb));
        }

        // Reuse the slot for a truncated prefix of the same frame. The
        // arena past `cut` still holds the old tail — decode sees only
        // the declared length and must reject, not resurrect `hb`.
        let cut = cut.min(n - 1);
        batch.clear();
        prop_assert!(batch.push(&buf[..cut]));
        let frame = batch.iter().next().expect("slot holds the short frame");
        prop_assert_eq!(frame.len(), cut);
        prop_assert!(
            dec.decode(frame).is_err(),
            "truncated {cut}-byte frame decoded by reading the stale slot tail"
        );
    }
}

/// Exact-length enforcement on the delta path: bytes past the checksum
/// are an error (a reused slot's tail is untrusted), and a frame cut
/// before its checksum is short, not a different valid frame.
#[test]
fn delta_frames_reject_trailing_and_missing_bytes() {
    let sender = ProcessId::new(9);
    let mut enc = DeltaEncoder::new(
        sender,
        sender.as_u32(),
        std::time::Duration::from_nanos(INTERVAL_NANOS),
        64,
    );
    let mut dec = WireDecoder::new();
    let mut buf = [0u8; MAX_V2_FRAME];

    let n = enc.encode(&heartbeat(sender, 1, 0), &mut buf);
    assert_eq!(dec.decode(&buf[..n]), Ok(heartbeat(sender, 1, 0)));

    let n = enc.encode(&heartbeat(sender, 2, 5_000), &mut buf);
    assert!(n < INTERN_LEN, "second frame should be a compact delta");

    // Stale bytes after the checksum — exactly what a reused arena slot
    // would leave if lengths were not enforced.
    let mut extended = [0xEEu8; MAX_V2_FRAME];
    extended[..n].copy_from_slice(&buf[..n]);
    assert_eq!(
        dec.decode(&extended[..n + 3]),
        Err(WireError::TrailingBytes)
    );

    // Cut before the checksum: short, never a bogus decode.
    assert_eq!(dec.decode(&buf[..n - 2]), Err(WireError::ShortFrame));

    // The intact frame still decodes after both rejections.
    assert_eq!(dec.decode(&buf[..n]), Ok(heartbeat(sender, 2, 5_000)));
}

/// One decoder on one socket accepts any interleaving of v1 and v2
/// frames, and v1 frames remain decodable by the legacy
/// [`Heartbeat::decode`] path — the fallback story for pre-v2 peers.
#[test]
fn one_decoder_accepts_interleaved_v1_and_v2_frames() {
    let v1_peer = ProcessId::new(1);
    let v2_peer = ProcessId::new(2);
    let mut enc = DeltaEncoder::new(
        v2_peer,
        v2_peer.as_u32(),
        std::time::Duration::from_nanos(INTERVAL_NANOS),
        3,
    );
    let mut dec = WireDecoder::new();
    let mut buf = [0u8; MAX_V2_FRAME];

    for seq in 1u64..=10 {
        let v1_hb = heartbeat(v1_peer, seq, -1_000);
        let v1_frame = v1_hb.encode();
        assert_eq!(dec.decode(&v1_frame), Ok(v1_hb));
        // A v1-only receiver still understands the v1 sender.
        assert_eq!(Heartbeat::decode(&v1_frame), Ok(v1_hb));
        assert_eq!(v1_frame.len(), FRAME_LEN);

        let v2_hb = heartbeat(v2_peer, seq, 1_000);
        let n = enc.encode(&v2_hb, &mut buf);
        assert_eq!(dec.decode(&buf[..n]), Ok(v2_hb));
    }
}

/// A delta arriving before its intern frame (receiver restart, first
/// contact) bounces with `UnknownIntern` instead of guessing; the
/// sender's next checkpoint heals the gap.
#[test]
fn delta_before_intern_bounces_until_resync() {
    let sender = ProcessId::new(5);
    let mut enc = DeltaEncoder::new(
        sender,
        sender.as_u32(),
        std::time::Duration::from_nanos(INTERVAL_NANOS),
        64,
    );
    let mut warm = WireDecoder::new();
    let mut buf = [0u8; MAX_V2_FRAME];

    let n = enc.encode(&heartbeat(sender, 1, 0), &mut buf);
    assert_eq!(warm.decode(&buf[..n]), Ok(heartbeat(sender, 1, 0)));
    let n = enc.encode(&heartbeat(sender, 2, 0), &mut buf);

    // A decoder that never saw the intern frame (fresh restart).
    let mut cold = WireDecoder::new();
    assert_eq!(
        cold.decode(&buf[..n]),
        Err(WireError::UnknownIntern(sender.as_u32()))
    );

    // The warm decoder, with its table intact, accepts the same bytes.
    assert_eq!(warm.decode(&buf[..n]), Ok(heartbeat(sender, 2, 0)));
}

/// A v1 sender and a v2 sender share one transport into one
/// `RuntimeMonitor`: every heartbeat from both is accepted, nothing is
/// miscounted as corrupt, and the v2 sender moved strictly fewer bytes.
#[test]
fn mixed_version_senders_share_one_runtime_monitor() {
    let (mut tx, rx) = ChannelTransport::pair();
    let clock = VirtualClock::new();
    let mut monitor =
        RuntimeMonitor::new(rx, clock.clone(), |_| SimpleAccrual::new(Timestamp::ZERO));
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    monitor.watch(p1);
    monitor.watch(p2);

    let interval = Duration::from_secs(1);
    let mut v1 = SenderCore::new(SenderConfig::new(p1, interval), Timestamp::ZERO, 1);
    let mut v2 = SenderCore::new(
        SenderConfig::new(p2, interval).with_wire(WireVersion::V2 { resync_every: 8 }),
        Timestamp::ZERO,
        2,
    );

    let rounds = 16u64;
    let mut accepted = 0usize;
    for s in 0..rounds {
        let now = Timestamp::from_secs(s);
        clock.set(now);
        v1.poll(now, &mut tx, |_| {}).expect("v1 send");
        v2.poll(now, &mut tx, |_| {}).expect("v2 send");
        accepted += monitor.poll().expect("monitor poll");
    }

    assert_eq!(accepted as u64, 2 * rounds);
    let stats = monitor.stats();
    assert_eq!(stats.corrupt, 0);
    assert_eq!(stats.stale, 0);
    assert_eq!(stats.duplicate, 0);
    assert!(
        v2.wire_bytes() * 2 < v1.wire_bytes(),
        "v2 moved {} bytes vs v1's {} — expected a >2x cut",
        v2.wire_bytes(),
        v1.wire_bytes()
    );
}
