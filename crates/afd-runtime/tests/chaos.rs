//! The acceptance chaos scenario from the robustness issue: a 10 s
//! partition that heals, 20 % burst loss throughout, one crash/recover
//! cycle, and a final crash — run deterministically in virtual time, twice,
//! with the paper's property checkers applied to every detector's timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use afd_core::process::ProcessId;
use afd_core::properties::{check_upper_bound, AccruementCheck};
use afd_core::time::{Duration, Timestamp};
use afd_detectors::phi::PhiAccrual;
use afd_runtime::{
    run_chaos, ChannelTransport, ChaosScenario, Clock, Heartbeat, RuntimeMonitor, Transport,
};

/// Gilbert–Elliott bursts with mean length 4 and burst-start probability
/// 1/16 have stationary loss 0.0625 / (0.0625 + 0.25) = 20 %.
const BURST_START: f64 = 0.0625;
const MEAN_BURST_LEN: f64 = 4.0;

fn acceptance_scenario() -> ChaosScenario {
    let mut s = ChaosScenario::new(Duration::from_secs(120));
    s.burst_loss = Some((BURST_START, MEAN_BURST_LEN));
    // Partition for 10 s, then heal.
    s.partitions
        .push((Timestamp::from_secs(20), Timestamp::from_secs(30)));
    // One crash/recover cycle…
    s.crashes
        .push((Timestamp::from_secs(50), Some(Timestamp::from_secs(60))));
    // …and a final crash so the run ends with a faulty process, giving
    // Accruement a suffix to quantify over.
    s.crashes.push((Timestamp::from_secs(90), None));
    s
}

#[test]
fn acceptance_scenario_is_deterministic() {
    let scenario = acceptance_scenario();
    let a = run_chaos(&scenario, 7);
    let b = run_chaos(&scenario, 7);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "same scenario + seed must replay the exact suspicion timeline"
    );
    assert_eq!(a.heartbeats_sent, b.heartbeats_sent);
    assert_eq!(a.monitor_stats, b.monitor_stats);
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.degrade_events, b.degrade_events);
}

#[test]
fn acceptance_scenario_satisfies_accruement_and_upper_bound() {
    let report = run_chaos(&acceptance_scenario(), 7);

    // The faults actually happened.
    assert!(report.fault_stats.dropped_partition > 0, "partition inert");
    assert!(report.fault_stats.dropped_loss > 0, "burst loss inert");
    assert!(report.monitor_stats.accepted > 0, "no heartbeat survived");
    assert!(
        report.degrade_events > 0,
        "starvation fallback never engaged"
    );
    assert_eq!(report.transport_errors, 0, "in-process transport failed");

    let check = AccruementCheck {
        epsilon: 1e-6,
        min_increases: 10,
        min_suffix_fraction: 0.2,
    };
    for (name, trace) in report.traces() {
        // Property 1 on the post-crash suffix: the level stabilizes into a
        // monotone climb with regular strict increases.
        let witness = check
            .run(trace)
            .unwrap_or_else(|e| panic!("{name}: Accruement violated: {e}"));
        assert!(
            witness.strict_increases >= 10,
            "{name}: suffix too flat ({} increases)",
            witness.strict_increases
        );
        // Property 2's finite-trace form: every emitted level is finite —
        // partitions, loss bursts, and the degradation fallback never push
        // any detector to an infinite level.
        let bound = check_upper_bound(trace, None)
            .unwrap_or_else(|e| panic!("{name}: Upper Bound violated: {e}"));
        assert!(bound.observed_bound.value() > 0.0);
    }
}

#[test]
fn healed_faults_leave_a_correct_process_trusted() {
    // Same faults, but the process recovers and stays up: by the end of the
    // run every detector should have calmed down again.
    let mut scenario = acceptance_scenario();
    scenario.crashes.pop();
    let report = run_chaos(&scenario, 7);
    for (name, trace) in report.traces() {
        check_upper_bound(trace, None)
            .unwrap_or_else(|e| panic!("{name}: Upper Bound violated: {e}"));
        let last = trace.samples().last().unwrap();
        let max = trace.max_level().unwrap();
        assert!(
            last.level.value() < max.value() / 2.0,
            "{name}: level never recovered after faults healed \
             (last {}, peak {})",
            last.level,
            max
        );
    }
}

/// A real clock's time keeps moving while a backlog is drained; this stub
/// models that by advancing on every read.
#[derive(Clone)]
struct SteppingClock {
    now: Arc<AtomicU64>,
    step: Duration,
}

impl Clock for SteppingClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.now.fetch_add(self.step.as_nanos(), Ordering::SeqCst))
    }
}

/// Regression: a post-partition backlog drained in a single `poll()` used
/// to stamp every frame with one arrival time, collapsing the adaptive
/// window's inter-arrival samples to zero.
#[test]
fn backlog_drained_in_one_poll_keeps_interarrival_samples_positive() {
    let (mut tx, rx) = ChannelTransport::pair();
    let clock = SteppingClock {
        now: Arc::new(AtomicU64::new(Timestamp::from_secs(10).as_nanos())),
        step: Duration::from_millis(200),
    };
    let mut monitor = RuntimeMonitor::new(rx, clock, |_| PhiAccrual::with_defaults());
    let process = ProcessId::new(1);
    monitor.watch(process);

    // Ten heartbeats pile up (e.g. a partition healing) before one poll.
    for seq in 1..=10u64 {
        tx.send(
            &Heartbeat {
                sender: process,
                seq,
                sent_at: Timestamp::from_secs(seq),
            }
            .encode(),
        )
        .unwrap();
    }
    assert_eq!(monitor.poll().unwrap(), 10);

    let phi = monitor.detector_mut(process).unwrap();
    assert!(
        phi.samples() >= 9,
        "window should hold the burst's intervals"
    );
    assert!(
        phi.mean_interval() > 0.0,
        "inter-arrival samples collapsed to zero: mean {}",
        phi.mean_interval()
    );
}

#[test]
fn chaos_report_carries_observability_evidence() {
    let report = run_chaos(&acceptance_scenario(), 7);

    // The online QoS estimators ran for all three detectors and saw the
    // whole run.
    assert_eq!(report.online_qos.len(), 3);
    for (name, qos) in &report.online_qos {
        assert!(
            qos.observed_alive > 0.0,
            "{name}: empty alive window in online QoS"
        );
        assert!(
            qos.detection_time.is_some(),
            "{name}: final crash never detected online"
        );
    }

    // The event ring captured transitions and degradation switches without
    // overflowing, in non-decreasing time order.
    assert_eq!(report.events_dropped, 0);
    assert!(
        report.events.iter().any(|e| e.source == "phi"),
        "no phi events recorded"
    );
    for pair in report.events.windows(2) {
        assert!(pair[0].at <= pair[1].at, "events out of order");
    }

    // The metrics snapshot mirrors the struct-level counters and renders.
    let snap = &report.metrics;
    assert_eq!(
        snap.counter("monitor.accepted"),
        Some(report.monitor_stats.accepted)
    );
    assert_eq!(
        snap.counter("fault.dropped_partition"),
        Some(report.fault_stats.dropped_partition)
    );
    assert_eq!(
        snap.counter("sender.heartbeats_sent"),
        Some(report.heartbeats_sent)
    );
    assert!(snap.to_text().contains("degrade.phi.events"));
    assert!(snap.to_json().starts_with('{'));
}

#[test]
fn different_seeds_explore_different_schedules() {
    let scenario = acceptance_scenario();
    let a = run_chaos(&scenario, 1);
    let b = run_chaos(&scenario, 2);
    assert_ne!(a.fingerprint(), b.fingerprint());
    // But the structural outcome is seed-independent: faults fire and the
    // protocol survives them.
    for r in [&a, &b] {
        assert!(r.fault_stats.dropped_loss > 0);
        assert!(r.monitor_stats.accepted > 0);
        assert_eq!(r.transport_errors, 0);
    }
}
