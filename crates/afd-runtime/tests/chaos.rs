//! The acceptance chaos scenario from the robustness issue: a 10 s
//! partition that heals, 20 % burst loss throughout, one crash/recover
//! cycle, and a final crash — run deterministically in virtual time, twice,
//! with the paper's property checkers applied to every detector's timeline.

use afd_core::properties::{check_upper_bound, AccruementCheck};
use afd_core::time::{Duration, Timestamp};
use afd_runtime::{run_chaos, ChaosScenario};

/// Gilbert–Elliott bursts with mean length 4 and burst-start probability
/// 1/16 have stationary loss 0.0625 / (0.0625 + 0.25) = 20 %.
const BURST_START: f64 = 0.0625;
const MEAN_BURST_LEN: f64 = 4.0;

fn acceptance_scenario() -> ChaosScenario {
    let mut s = ChaosScenario::new(Duration::from_secs(120));
    s.burst_loss = Some((BURST_START, MEAN_BURST_LEN));
    // Partition for 10 s, then heal.
    s.partitions
        .push((Timestamp::from_secs(20), Timestamp::from_secs(30)));
    // One crash/recover cycle…
    s.crashes
        .push((Timestamp::from_secs(50), Some(Timestamp::from_secs(60))));
    // …and a final crash so the run ends with a faulty process, giving
    // Accruement a suffix to quantify over.
    s.crashes.push((Timestamp::from_secs(90), None));
    s
}

#[test]
fn acceptance_scenario_is_deterministic() {
    let scenario = acceptance_scenario();
    let a = run_chaos(&scenario, 7);
    let b = run_chaos(&scenario, 7);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "same scenario + seed must replay the exact suspicion timeline"
    );
    assert_eq!(a.heartbeats_sent, b.heartbeats_sent);
    assert_eq!(a.monitor_stats, b.monitor_stats);
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.degrade_events, b.degrade_events);
}

#[test]
fn acceptance_scenario_satisfies_accruement_and_upper_bound() {
    let report = run_chaos(&acceptance_scenario(), 7);

    // The faults actually happened.
    assert!(report.fault_stats.dropped_partition > 0, "partition inert");
    assert!(report.fault_stats.dropped_loss > 0, "burst loss inert");
    assert!(report.monitor_stats.accepted > 0, "no heartbeat survived");
    assert!(
        report.degrade_events > 0,
        "starvation fallback never engaged"
    );
    assert_eq!(report.transport_errors, 0, "in-process transport failed");

    let check = AccruementCheck {
        epsilon: 1e-6,
        min_increases: 10,
        min_suffix_fraction: 0.2,
    };
    for (name, trace) in report.traces() {
        // Property 1 on the post-crash suffix: the level stabilizes into a
        // monotone climb with regular strict increases.
        let witness = check
            .run(trace)
            .unwrap_or_else(|e| panic!("{name}: Accruement violated: {e}"));
        assert!(
            witness.strict_increases >= 10,
            "{name}: suffix too flat ({} increases)",
            witness.strict_increases
        );
        // Property 2's finite-trace form: every emitted level is finite —
        // partitions, loss bursts, and the degradation fallback never push
        // any detector to an infinite level.
        let bound = check_upper_bound(trace, None)
            .unwrap_or_else(|e| panic!("{name}: Upper Bound violated: {e}"));
        assert!(bound.observed_bound.value() > 0.0);
    }
}

#[test]
fn healed_faults_leave_a_correct_process_trusted() {
    // Same faults, but the process recovers and stays up: by the end of the
    // run every detector should have calmed down again.
    let mut scenario = acceptance_scenario();
    scenario.crashes.pop();
    let report = run_chaos(&scenario, 7);
    for (name, trace) in report.traces() {
        check_upper_bound(trace, None)
            .unwrap_or_else(|e| panic!("{name}: Upper Bound violated: {e}"));
        let last = trace.samples().last().unwrap();
        let max = trace.max_level().unwrap();
        assert!(
            last.level.value() < max.value() / 2.0,
            "{name}: level never recovered after faults healed \
             (last {}, peak {})",
            last.level,
            max
        );
    }
}

#[test]
fn different_seeds_explore_different_schedules() {
    let scenario = acceptance_scenario();
    let a = run_chaos(&scenario, 1);
    let b = run_chaos(&scenario, 2);
    assert_ne!(a.fingerprint(), b.fingerprint());
    // But the structural outcome is seed-independent: faults fire and the
    // protocol survives them.
    for r in [&a, &b] {
        assert!(r.fault_stats.dropped_loss > 0);
        assert!(r.monitor_stats.accepted > 0);
        assert_eq!(r.transport_errors, 0);
    }
}
