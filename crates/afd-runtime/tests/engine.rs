//! Acceptance tests for the parallel shard-worker engine: lockstep
//! equivalence with the single-threaded `ShardedMonitor` on randomized
//! schedules, a free-running multi-threaded chaos run holding the
//! paper's Accruement and Upper Bound properties per peer, drop-oldest
//! ring backpressure accounting, and poisoned-worker detection.

use afd_core::accrual::AccrualFailureDetector;
use afd_core::history::SuspicionTrace;
use afd_core::process::ProcessId;
use afd_core::properties::{check_upper_bound, AccruementCheck};
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::{Duration, Timestamp};
use afd_detectors::phi::PhiAccrual;
use afd_detectors::simple::SimpleAccrual;
use afd_obs::Registry;
use afd_runtime::{
    ChannelTransport, EngineConfig, EngineError, EngineMode, FaultInjector, FaultPlan, Heartbeat,
    ParallelShardEngine, ShardConfig, ShardedMonitor, SnapshotReader, Transport, VirtualClock,
};
use afd_sim::loss::GilbertElliottLoss;
use proptest::prelude::*;

fn frame(sender: u32, seq: u64) -> Vec<u8> {
    Heartbeat {
        sender: ProcessId::new(sender),
        seq,
        sent_at: Timestamp::from_nanos(seq),
    }
    .encode()
    .to_vec()
}

/// One step of a randomized intake schedule (same distribution as the
/// sharded-monitor acceptance suite).
#[derive(Debug, Clone, Copy)]
enum Op {
    Send { sender: u32, seq: u64 },
    Corrupt,
    Tick { advance_ms: u32 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = proptest::FnStrategy::new(|rng: &mut TestRng| match rng.below(8) {
        0 => Op::Corrupt,
        1 | 2 => Op::Tick {
            advance_ms: 1 + rng.below(4999) as u32,
        },
        _ => Op::Send {
            sender: rng.below(6) as u32,
            seq: rng.below(8),
        },
    });
    prop::collection::vec(op, 1..120)
}

proptest! {
    /// On any frame schedule and any worker count, a lockstep engine is
    /// frame-for-frame equivalent to the single-threaded sharded
    /// monitor: same per-tick acceptance, same per-shard counters, same
    /// published snapshots, same lock-free point lookups — even though
    /// every heartbeat crossed an SPSC ring into a real worker thread.
    #[test]
    fn lockstep_engine_reproduces_sharded_monitor(ops in ops(), workers in 1usize..6) {
        let clock = VirtualClock::new();
        clock.set(Timestamp::from_secs(1));

        let (mut mono_tx, mono_rx) = ChannelTransport::pair();
        let mut sharded = ShardedMonitor::new(
            mono_rx,
            clock.clone(),
            ShardConfig { shards: workers, slots_per_shard: 8 },
            |_| SimpleAccrual::new(Timestamp::ZERO),
        );
        let (mut eng_tx, eng_rx) = ChannelTransport::pair();
        let mut engine = ParallelShardEngine::new(
            eng_rx,
            clock.clone(),
            EngineConfig {
                workers,
                slots_per_shard: 8,
                ring_capacity: 1024,
                batch_slots: 32,
                publish_every: Duration::ZERO,
            },
            |_| SimpleAccrual::new(Timestamp::ZERO),
        );

        // Watch senders 0..4; senders 4 and 5 stay unwatched.
        for id in 0..4u32 {
            sharded.watch(ProcessId::new(id)).unwrap();
            engine.watch(ProcessId::new(id)).unwrap();
        }
        engine.start(EngineMode::Lockstep).unwrap();

        for op in ops {
            match op {
                Op::Send { sender, seq } => {
                    mono_tx.send(&frame(sender, seq)).unwrap();
                    eng_tx.send(&frame(sender, seq)).unwrap();
                }
                Op::Corrupt => {
                    mono_tx.send(b"not a heartbeat").unwrap();
                    eng_tx.send(b"not a heartbeat").unwrap();
                }
                Op::Tick { advance_ms } => {
                    clock.advance(Duration::from_millis(u64::from(advance_ms)));
                    let s = sharded.tick().unwrap();
                    let e = engine.tick().unwrap();
                    prop_assert_eq!(s.accepted as u64, e.accepted);
                    prop_assert_eq!(s.drained, e.drained);
                }
            }
        }
        clock.advance(Duration::from_millis(1));
        let s = sharded.tick().unwrap();
        let e = engine.tick().unwrap();
        prop_assert_eq!(s.accepted as u64, e.accepted);

        let s_stats = sharded.stats();
        let e_stats = engine.stats();
        prop_assert_eq!(s_stats.totals, e_stats.totals);
        prop_assert_eq!(s_stats.per_shard, e_stats.per_worker);
        prop_assert_eq!(s_stats.peers_per_shard, e_stats.peers_per_shard);
        prop_assert_eq!(e_stats.ring_dropped, 0, "ring never overflowed");

        prop_assert_eq!(
            sharded.reader().published_at(),
            engine.reader().published_at()
        );
        prop_assert_eq!(sharded.reader().snapshot(), engine.reader().snapshot());
        for id in 0..6u32 {
            let p = ProcessId::new(id);
            prop_assert_eq!(sharded.reader().level(p), engine.reader().level(p));
        }
        engine.shutdown().unwrap();
    }
}

/// Blocks until a free-running engine has drained everything in flight:
/// stats stable, every ring empty, and all shards published at `now`.
fn settle<T, C, D>(
    engine: &ParallelShardEngine<T, C, D>,
    reader: &SnapshotReader,
    now: Timestamp,
    workers: usize,
) where
    T: Transport + Send + 'static,
    C: afd_runtime::Clock + Clone + Send + 'static,
    D: AccrualFailureDetector + Send + 'static,
{
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut prev = engine.stats();
    let mut stable = 0u32;
    while stable < 8 {
        assert!(
            std::time::Instant::now() < deadline,
            "engine failed to settle: {prev:?}"
        );
        std::thread::yield_now();
        let cur = engine.stats();
        let registry = Registry::new();
        engine.export_metrics(&registry);
        let snap = registry.snapshot();
        let depth: f64 = (0..workers)
            .map(|i| {
                snap.gauge(&format!("engine.worker.{i}.ring_depth"))
                    .unwrap_or(0.0)
            })
            .sum();
        if cur == prev && depth == 0.0 && reader.published_at() >= now {
            stable += 1;
        } else {
            stable = 0;
            prev = cur;
        }
    }
}

/// Gilbert–Elliott bursts with mean length 4 and burst-start probability
/// 1/16: stationary loss 20 %, as in the sharded acceptance scenario.
fn bursty_loss() -> GilbertElliottLoss {
    GilbertElliottLoss::new(0.0625, 0.25, 0.0, 1.0)
}

/// The sharded chaos scenario — partition, sustained burst loss, final
/// crash — driven through the *free-running* engine: real intake and
/// worker threads racing on OS scheduling, with only virtual time
/// barriers per second. Every peer's suspicion trace, read through the
/// lock-free published path, must satisfy Accruement after the crash
/// and stay finite throughout (Upper Bound).
#[test]
fn free_running_chaos_upholds_accruement_and_upper_bound_per_peer() {
    const PEERS: u32 = 32;
    const WORKERS: usize = 4;
    const PARTITION: (u64, u64) = (20, 30);
    const CRASH_AT: u64 = 90;
    const RUN_UNTIL: u64 = 240;

    let clock = VirtualClock::new();
    let (mut tx, rx) = ChannelTransport::pair();
    let plan = FaultPlan::new().with_loss(bursty_loss()).with_partition(
        Timestamp::from_secs(PARTITION.0),
        Timestamp::from_secs(PARTITION.1),
    );
    let injected = FaultInjector::new(rx, clock.clone(), plan, 1234);
    let mut engine = ParallelShardEngine::new(
        injected,
        clock.clone(),
        EngineConfig {
            workers: WORKERS,
            slots_per_shard: 16,
            ring_capacity: 1024,
            batch_slots: 64,
            publish_every: Duration::ZERO,
        },
        |_| PhiAccrual::with_defaults(),
    );
    for id in 0..PEERS {
        engine.watch(ProcessId::new(id)).unwrap();
    }
    let reader = engine.reader();
    engine.start(EngineMode::FreeRunning).unwrap();

    let mut seqs = vec![0u64; PEERS as usize];
    let mut traces: Vec<SuspicionTrace> = (0..PEERS).map(|_| SuspicionTrace::new()).collect();

    for second in 1..=RUN_UNTIL {
        clock.set(Timestamp::from_secs(second));
        if second < CRASH_AT {
            for (id, seq) in seqs.iter_mut().enumerate() {
                *seq += 1;
                tx.send(&frame(id as u32, *seq)).unwrap();
            }
        }
        settle(&engine, &reader, Timestamp::from_secs(second), WORKERS);
        let at = reader.published_at();
        for (p, level) in reader.snapshot() {
            traces[p.index()].push(at, level);
        }
    }

    engine.shutdown().unwrap();
    assert_eq!(engine.poisoned(), None);

    // The faults actually fired, and enough heartbeats survived them.
    let fstats = engine.transport().expect("stopped engine").stats();
    assert!(fstats.dropped_partition > 0, "partition inert");
    assert!(fstats.dropped_loss > 0, "burst loss inert");
    let stats = engine.stats();
    assert!(
        stats.totals.accepted > u64::from(PEERS) * 30,
        "too few heartbeats survived: {stats:?}"
    );
    assert_eq!(stats.ring_dropped, 0, "1024-slot rings never overflowed");

    let check = AccruementCheck {
        epsilon: 1e-6,
        min_increases: 10,
        min_suffix_fraction: 0.2,
    };
    for (id, trace) in traces.iter().enumerate() {
        assert_eq!(trace.len() as u64, RUN_UNTIL, "peer {id}: sparse trace");
        let witness = check
            .run(trace)
            .unwrap_or_else(|e| panic!("peer {id}: Accruement violated: {e}"));
        assert!(
            witness.strict_increases >= 10,
            "peer {id}: suffix too flat ({} increases)",
            witness.strict_increases
        );
        check_upper_bound(trace, None)
            .unwrap_or_else(|e| panic!("peer {id}: Upper Bound violated: {e}"));
    }
}

/// Drop-oldest backpressure, observed end to end: flooding a tiny ring
/// keeps exactly the newest frames, counts every eviction, and leaves
/// the detector state as if only the survivors had ever been sent.
#[test]
fn ring_overflow_drops_oldest_and_counts() {
    let clock = VirtualClock::new();
    let (mut tx, rx) = ChannelTransport::pair();
    let mut engine = ParallelShardEngine::new(
        rx,
        clock.clone(),
        EngineConfig {
            workers: 1,
            slots_per_shard: 4,
            ring_capacity: 8,
            batch_slots: 16,
            publish_every: Duration::ZERO,
        },
        |_| SimpleAccrual::new(Timestamp::ZERO),
    );
    engine.watch(ProcessId::new(7)).unwrap();
    engine.start(EngineMode::Lockstep).unwrap();

    // 40 frames land in one tick; the parked worker can't drain, so the
    // 8-slot ring must evict the 32 oldest.
    clock.set(Timestamp::from_secs(1));
    for seq in 1..=40u64 {
        tx.send(&frame(7, seq)).unwrap();
    }
    let report = engine.tick().unwrap();
    assert_eq!(report.drained, 40);
    assert_eq!(report.accepted, 8, "only the newest ring-capacity frames");
    let stats = engine.stats();
    assert_eq!(stats.ring_dropped, 32);
    assert_eq!(stats.totals.accepted, 8);
    assert_eq!(stats.totals.stale, 0);

    // Proof the *newest* frames survived: seq 36 is now a stale replay.
    tx.send(&frame(7, 36)).unwrap();
    clock.advance(Duration::from_secs(1));
    engine.tick().unwrap();
    assert_eq!(
        engine.stats().totals.stale,
        1,
        "seq 36 must already be seen"
    );

    // The drop counter survives shutdown (rings are torn down).
    engine.shutdown().unwrap();
    assert_eq!(engine.stats().ring_dropped, 32);
}

/// A detector that panics on a magic arrival time — stands in for any
/// bug inside a worker thread.
struct Exploding {
    inner: SimpleAccrual,
}

const POISON_AT: Timestamp = Timestamp::from_secs(666);

impl AccrualFailureDetector for Exploding {
    fn record_heartbeat(&mut self, arrival: Timestamp) {
        assert_ne!(arrival, POISON_AT, "injected worker fault");
        self.inner.record_heartbeat(arrival);
    }
    fn suspicion_level(&mut self, now: Timestamp) -> SuspicionLevel {
        self.inner.suspicion_level(now)
    }
}

fn poison_rig() -> (
    ChannelTransport,
    ParallelShardEngine<ChannelTransport, VirtualClock, Exploding>,
    VirtualClock,
    usize,
) {
    let clock = VirtualClock::new();
    let (tx, rx) = ChannelTransport::pair();
    let mut engine = ParallelShardEngine::new(
        rx,
        clock.clone(),
        EngineConfig {
            workers: 2,
            publish_every: Duration::ZERO,
            ..EngineConfig::default()
        },
        |_| Exploding {
            inner: SimpleAccrual::new(Timestamp::ZERO),
        },
    );
    engine.watch(ProcessId::new(0)).unwrap();
    let victim = engine.shard_of(ProcessId::new(0));
    (tx, engine, clock, victim)
}

/// A worker panic in lockstep mode poisons the tick barrier: the driver
/// gets a typed error instead of a deadlock, and the engine stays
/// terminally failed.
#[test]
fn lockstep_worker_panic_is_reported_not_deadlocked() {
    let (mut tx, mut engine, clock, victim) = poison_rig();
    engine.start(EngineMode::Lockstep).unwrap();

    clock.set(POISON_AT);
    tx.send(&frame(0, 1)).unwrap();
    assert_eq!(
        engine.tick(),
        Err(EngineError::WorkerPanicked { worker: victim })
    );
    assert_eq!(engine.poisoned(), Some(victim));

    // Shutdown reports the casualty; the engine is then terminally
    // failed (the dead worker's detector state is unrecoverable).
    assert_eq!(
        engine.shutdown(),
        Err(EngineError::WorkerPanicked { worker: victim })
    );
    assert!(matches!(
        engine.watch(ProcessId::new(9)),
        Err(EngineError::WorkerPanicked { .. })
    ));
}

/// The same fault in free-running mode trips the per-worker panic flag
/// (the watchdog-facing signal) without any tick to observe it.
#[test]
fn free_running_worker_panic_raises_the_poison_flag() {
    let (mut tx, mut engine, clock, victim) = poison_rig();
    engine.start(EngineMode::FreeRunning).unwrap();

    clock.set(POISON_AT);
    tx.send(&frame(0, 1)).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while engine.poisoned().is_none() {
        assert!(std::time::Instant::now() < deadline, "panic never surfaced");
        std::thread::yield_now();
    }
    assert_eq!(engine.poisoned(), Some(victim));
    assert_eq!(
        engine.shutdown(),
        Err(EngineError::WorkerPanicked { worker: victim })
    );
}
