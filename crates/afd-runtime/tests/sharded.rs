//! Acceptance tests for the sharded monitor: exact equivalence with
//! `RuntimeMonitor` at one shard, the union property across shards, and a
//! many-peer virtual-time chaos run (partition + burst loss) with the
//! paper's Accruement and Upper Bound checkers applied per peer.

use afd_core::history::SuspicionTrace;
use afd_core::process::ProcessId;
use afd_core::properties::{check_upper_bound, AccruementCheck};
use afd_core::time::{Duration, Timestamp};
use afd_detectors::phi::PhiAccrual;
use afd_detectors::simple::SimpleAccrual;
use afd_runtime::{
    ChannelTransport, FaultInjector, FaultPlan, Heartbeat, RuntimeMonitor, ShardConfig,
    ShardedMonitor, Transport, VirtualClock,
};
use afd_sim::loss::GilbertElliottLoss;
use proptest::prelude::*;

fn frame(sender: u32, seq: u64) -> Vec<u8> {
    Heartbeat {
        sender: ProcessId::new(sender),
        seq,
        sent_at: Timestamp::from_nanos(seq),
    }
    .encode()
    .to_vec()
}

/// One step of a randomized intake schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Deliver a (possibly duplicate, stale, or unwatched) heartbeat.
    Send { sender: u32, seq: u64 },
    /// Deliver an undecodable frame.
    Corrupt,
    /// Advance virtual time and drain both monitors.
    Tick { advance_ms: u32 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = proptest::FnStrategy::new(|rng: &mut TestRng| match rng.below(8) {
        0 => Op::Corrupt,
        1 | 2 => Op::Tick {
            advance_ms: 1 + rng.below(4999) as u32,
        },
        // Small sender/seq spaces force collisions: duplicates, stale
        // replays, and unwatched senders all occur.
        _ => Op::Send {
            sender: rng.below(6) as u32,
            seq: rng.below(8),
        },
    });
    prop::collection::vec(op, 1..120)
}

proptest! {
    /// With one shard, the sharded monitor accepts, rejects, and scores
    /// exactly as `RuntimeMonitor` does on any frame schedule.
    #[test]
    fn single_shard_reproduces_runtime_monitor(ops in ops()) {
        let clock = VirtualClock::new();
        clock.set(Timestamp::from_secs(1));

        let (mut mono_tx, mono_rx) = ChannelTransport::pair();
        let mut mono = RuntimeMonitor::new(mono_rx, clock.clone(), |_| {
            SimpleAccrual::new(Timestamp::ZERO)
        });
        let (mut shard_tx, shard_rx) = ChannelTransport::pair();
        let mut sharded = ShardedMonitor::new(
            shard_rx,
            clock.clone(),
            ShardConfig { shards: 1, slots_per_shard: 8 },
            |_| SimpleAccrual::new(Timestamp::ZERO),
        );

        // Watch senders 0..4; senders 4 and 5 stay unwatched.
        for id in 0..4u32 {
            mono.watch(ProcessId::new(id));
            sharded.watch(ProcessId::new(id)).unwrap();
        }

        for op in ops {
            match op {
                Op::Send { sender, seq } => {
                    mono_tx.send(&frame(sender, seq)).unwrap();
                    shard_tx.send(&frame(sender, seq)).unwrap();
                }
                Op::Corrupt => {
                    mono_tx.send(b"not a heartbeat").unwrap();
                    shard_tx.send(b"not a heartbeat").unwrap();
                }
                Op::Tick { advance_ms } => {
                    clock.advance(Duration::from_millis(u64::from(advance_ms)));
                    let accepted = mono.poll().unwrap();
                    let report = sharded.tick().unwrap();
                    prop_assert_eq!(accepted, report.accepted);
                }
            }
        }
        // Drain whatever the schedule left queued.
        let accepted = mono.poll().unwrap();
        let report = sharded.tick().unwrap();
        prop_assert_eq!(accepted, report.accepted);

        let mono_stats = mono.stats();
        let shard_stats = sharded.stats();
        prop_assert_eq!(mono_stats, shard_stats.totals);
        prop_assert_eq!(mono.snapshot(), sharded.snapshot());
        // The published epoch equals the exact-now view at publish time
        // (virtual time has not moved since the tick).
        prop_assert_eq!(sharded.snapshot(), sharded.reader().snapshot());
        for id in 0..6u32 {
            let p = ProcessId::new(id);
            prop_assert_eq!(mono.level(p), sharded.level(p));
        }
    }

    /// The global snapshot is exactly the union of the per-shard
    /// snapshots — no peer lost, duplicated, or mis-routed — under
    /// randomized interleavings of intake and time.
    #[test]
    fn snapshot_is_union_of_shard_snapshots(
        ops in ops(),
        shards in 1usize..6,
    ) {
        let clock = VirtualClock::new();
        clock.set(Timestamp::from_secs(1));
        let (mut tx, rx) = ChannelTransport::pair();
        let mut mon = ShardedMonitor::new(
            rx,
            clock.clone(),
            ShardConfig { shards, slots_per_shard: 8 },
            |_| SimpleAccrual::new(Timestamp::ZERO),
        );
        for id in 0..6u32 {
            mon.watch(ProcessId::new(id)).unwrap();
        }

        for op in ops {
            match op {
                Op::Send { sender, seq } => tx.send(&frame(sender, seq)).unwrap(),
                Op::Corrupt => tx.send(b"junk").unwrap(),
                Op::Tick { advance_ms } => {
                    clock.advance(Duration::from_millis(u64::from(advance_ms)));
                    mon.tick().unwrap();
                }
            }
        }
        mon.tick().unwrap();

        let mut union = Vec::new();
        for s in 0..mon.shard_count() {
            let part = mon.shard_snapshot(s);
            // Every entry in a shard's snapshot routes to that shard.
            for &(p, _) in &part {
                assert_eq!(mon.shard_of(p), s);
            }
            union.extend(part);
        }
        union.sort_unstable_by_key(|&(p, _)| p);
        prop_assert_eq!(union.len(), 6, "all watched peers present");
        prop_assert_eq!(mon.snapshot(), union.clone());
        prop_assert_eq!(mon.reader().snapshot(), union);
        // Lock-free point lookups agree with the published table.
        for id in 0..6u32 {
            let p = ProcessId::new(id);
            prop_assert_eq!(
                mon.reader().level(p),
                mon.snapshot().iter().find(|&&(q, _)| q == p).map(|&(_, l)| l)
            );
        }
    }
}

/// Gilbert–Elliott bursts with mean length 4 and burst-start probability
/// 1/16: stationary loss 20 %, as in the acceptance chaos scenario.
fn bursty_loss() -> GilbertElliottLoss {
    GilbertElliottLoss::new(0.0625, 0.25, 0.0, 1.0)
}

/// Many peers through a partition and sustained burst loss, on virtual
/// time: every peer's suspicion trace (read through the lock-free
/// published path) must satisfy Accruement after the final crash and stay
/// finite throughout (Upper Bound).
#[test]
fn many_peer_chaos_run_upholds_accruement_and_upper_bound_per_peer() {
    const PEERS: u32 = 32;
    const PARTITION: (u64, u64) = (20, 30);
    const CRASH_AT: u64 = 90;
    const RUN_UNTIL: u64 = 240;

    let clock = VirtualClock::new();
    let (mut tx, rx) = ChannelTransport::pair();
    let plan = FaultPlan::new().with_loss(bursty_loss()).with_partition(
        Timestamp::from_secs(PARTITION.0),
        Timestamp::from_secs(PARTITION.1),
    );
    let injected = FaultInjector::new(rx, clock.clone(), plan, 1234);
    let mut mon = ShardedMonitor::new(
        injected,
        clock.clone(),
        ShardConfig {
            shards: 4,
            slots_per_shard: 16,
        },
        |_| PhiAccrual::with_defaults(),
    );
    for id in 0..PEERS {
        mon.watch(ProcessId::new(id)).unwrap();
    }

    let mut seqs = vec![0u64; PEERS as usize];
    let mut traces: Vec<SuspicionTrace> = (0..PEERS).map(|_| SuspicionTrace::new()).collect();
    let reader = mon.reader();

    for second in 1..=RUN_UNTIL {
        clock.set(Timestamp::from_secs(second));
        // One heartbeat per peer per second of virtual time until the crash.
        if second < CRASH_AT {
            for (id, seq) in seqs.iter_mut().enumerate() {
                *seq += 1;
                tx.send(&frame(id as u32, *seq)).unwrap();
            }
        }
        mon.tick().unwrap();
        // Record through the lock-free published path.
        let at = reader.published_at();
        for (p, level) in reader.snapshot() {
            traces[p.index()].push(at, level);
        }
    }

    // The faults actually fired.
    let fstats = mon.transport().stats();
    assert!(fstats.dropped_partition > 0, "partition inert");
    assert!(fstats.dropped_loss > 0, "burst loss inert");
    let stats = mon.stats();
    assert!(
        stats.totals.accepted > u64::from(PEERS) * 30,
        "too few heartbeats survived: {stats:?}"
    );

    let check = AccruementCheck {
        epsilon: 1e-6,
        min_increases: 10,
        min_suffix_fraction: 0.2,
    };
    for (id, trace) in traces.iter().enumerate() {
        assert_eq!(trace.len() as u64, RUN_UNTIL, "peer {id}: sparse trace");
        // Property 1 on the post-crash suffix: a monotone climb with
        // regular strict increases.
        let witness = check
            .run(trace)
            .unwrap_or_else(|e| panic!("peer {id}: Accruement violated: {e}"));
        assert!(
            witness.strict_increases >= 10,
            "peer {id}: suffix too flat ({} increases)",
            witness.strict_increases
        );
        // Property 2 (finite-trace form): partitions and loss bursts
        // never push any peer's level to infinity.
        check_upper_bound(trace, None)
            .unwrap_or_else(|e| panic!("peer {id}: Upper Bound violated: {e}"));
    }
}

/// The same chaos schedule replays identically: sharding must not
/// introduce nondeterminism under virtual time.
#[test]
fn sharded_chaos_run_is_deterministic() {
    fn run() -> (Vec<(ProcessId, String)>, u64) {
        let clock = VirtualClock::new();
        let (mut tx, rx) = ChannelTransport::pair();
        let plan = FaultPlan::new()
            .with_loss(bursty_loss())
            .with_partition(Timestamp::from_secs(10), Timestamp::from_secs(15));
        let injected = FaultInjector::new(rx, clock.clone(), plan, 77);
        let mut mon = ShardedMonitor::new(
            injected,
            clock.clone(),
            ShardConfig {
                shards: 3,
                slots_per_shard: 8,
            },
            |_| PhiAccrual::with_defaults(),
        );
        for id in 0..12u32 {
            mon.watch(ProcessId::new(id)).unwrap();
        }
        for second in 1..=60u64 {
            clock.set(Timestamp::from_secs(second));
            for id in 0..12u32 {
                tx.send(&frame(id, second)).unwrap();
            }
            mon.tick().unwrap();
        }
        let snap = mon
            .snapshot()
            .into_iter()
            .map(|(p, l)| (p, format!("{:.12}", l.value())))
            .collect();
        (snap, mon.stats().totals.accepted)
    }

    assert_eq!(run(), run());
}
