//! LEB128 varints and zigzag mapping for the delta wire format.
//!
//! The v2 heartbeat frames ([`wire`](crate::wire)) shave bytes by
//! encoding small integers — intern indices, sequence deltas, timestamp
//! residuals — as base-128 varints. Both directions are allocation-free
//! (encode writes into a caller slice, decode reads a slice and reports
//! how many bytes it consumed) so they can run inside the frame-intake
//! hot path; the `no-alloc-in-hot-path` afd-lint rule covers this file.
//!
//! Decoding is **strict**: a varint that runs past the end of the input
//! is [`VarintError::Truncated`] (never a read of stale bytes beyond the
//! received datagram) and an encoding longer than the canonical ten
//! bytes for a `u64` is [`VarintError::Overlong`]. Strictness is part of
//! the wire-format contract — a frame's declared structure must be
//! satisfiable within the bytes actually received.

use std::error::Error;
use std::fmt;

/// Longest canonical LEB128 encoding of a `u64` (10 × 7 bits ≥ 64).
pub const MAX_VARINT_LEN: usize = 10;

/// Why a varint failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The input ended while a continuation bit promised more bytes.
    Truncated,
    /// The encoding exceeds ten bytes or overflows 64 bits.
    Overlong,
}

impl fmt::Display for VarintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "varint truncated mid-encoding"),
            VarintError::Overlong => write!(f, "varint exceeds 64-bit range"),
        }
    }
}

impl Error for VarintError {}

/// Encodes `value` as LEB128 into `buf`, returning the bytes written.
///
/// Returns `None` if `buf` is too short — callers size frame buffers to
/// worst case ([`MAX_VARINT_LEN`] per field), so `None` is a programmer
/// error surfaced as a value rather than a panic.
#[inline]
#[must_use]
pub fn encode_u64(mut value: u64, buf: &mut [u8]) -> Option<usize> {
    let mut i = 0usize;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let last = value == 0;
        *buf.get_mut(i)? = if last { byte } else { byte | 0x80 };
        i += 1;
        if last {
            return Some(i);
        }
    }
}

/// Decodes one LEB128 varint from the front of `input`, returning the
/// value and how many bytes it consumed.
///
/// # Errors
///
/// [`VarintError::Truncated`] if `input` ends mid-varint,
/// [`VarintError::Overlong`] past ten bytes or 64 bits.
#[inline]
pub fn decode_u64(input: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(VarintError::Overlong);
        }
        let bits = u64::from(byte & 0x7f);
        // The tenth byte may only carry the final single bit of a u64.
        if shift == 63 && bits > 1 {
            return Err(VarintError::Overlong);
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(VarintError::Truncated)
}

/// Maps a signed value onto the unsigned varint space so that small
/// magnitudes of either sign stay short: 0, -1, 1, -2, … → 0, 1, 2, 3, …
#[inline]
#[must_use]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Encodes a signed value zigzag-then-LEB128. See [`encode_u64`].
#[inline]
#[must_use]
pub fn encode_i64(value: i64, buf: &mut [u8]) -> Option<usize> {
    encode_u64(zigzag(value), buf)
}

/// Decodes a zigzag-LEB128 signed value. See [`decode_u64`].
///
/// # Errors
///
/// Propagates [`VarintError`] from the underlying varint decode.
#[inline]
pub fn decode_i64(input: &[u8]) -> Result<(i64, usize), VarintError> {
    let (raw, used) = decode_u64(input)?;
    Ok((unzigzag(raw), used))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_representative_values() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = [0u8; MAX_VARINT_LEN];
        for &v in &cases {
            let n = encode_u64(v, &mut buf).unwrap();
            assert_eq!(decode_u64(&buf[..n]), Ok((v, n)), "value {v}");
        }
    }

    #[test]
    fn length_tracks_magnitude() {
        let mut buf = [0u8; MAX_VARINT_LEN];
        assert_eq!(encode_u64(0, &mut buf), Some(1));
        assert_eq!(encode_u64(127, &mut buf), Some(1));
        assert_eq!(encode_u64(128, &mut buf), Some(2));
        assert_eq!(encode_u64(16_383, &mut buf), Some(2));
        assert_eq!(encode_u64(16_384, &mut buf), Some(3));
        assert_eq!(encode_u64(u64::MAX, &mut buf), Some(10));
    }

    #[test]
    fn truncated_input_is_rejected_not_read_past() {
        let mut buf = [0u8; MAX_VARINT_LEN];
        let n = encode_u64(u64::from(u32::MAX), &mut buf).unwrap();
        for cut in 0..n {
            assert_eq!(
                decode_u64(&buf[..cut]),
                Err(VarintError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn overlong_encodings_are_rejected() {
        // Eleven continuation bytes can never be a canonical u64.
        let overlong = [0x80u8; 11];
        assert_eq!(decode_u64(&overlong), Err(VarintError::Overlong));
        // Ten bytes whose tenth carries more than the final bit overflow.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert_eq!(decode_u64(&overflow), Err(VarintError::Overlong));
    }

    #[test]
    fn short_buffer_reports_none() {
        let mut buf = [0u8; 1];
        assert_eq!(encode_u64(127, &mut buf), Some(1));
        assert_eq!(encode_u64(128, &mut buf), None);
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-3i64, -1, 0, 1, 5, 1_000_000, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn signed_roundtrip_through_bytes() {
        let mut buf = [0u8; MAX_VARINT_LEN];
        for v in [-1_000_000_007i64, -1, 0, 1, 42, i64::MAX, i64::MIN] {
            let n = encode_i64(v, &mut buf).unwrap();
            assert_eq!(decode_i64(&buf[..n]), Ok((v, n)));
        }
    }

    #[test]
    fn decode_consumes_exactly_one_varint() {
        let mut buf = [0u8; MAX_VARINT_LEN + 3];
        let n = encode_u64(300, &mut buf).unwrap();
        buf[n] = 0x07; // trailing byte belongs to the *next* field
        let (v, used) = decode_u64(&buf[..n + 1]).unwrap();
        assert_eq!((v, used), (300, n));
    }
}
