//! Dense, generation-tagged intern table for the v2 decode fast path.
//!
//! The receiver-side intern table maps a delta frame's `intern_idx` to
//! the checkpoint it decodes against. PR 9's million-peer soak showed
//! the `HashMap` backing that table dominating the intake profile: one
//! hash + probe per delta frame, on the hottest path in the system. By
//! convention the index space is *dense* — senders claim their own id
//! as the intern index (see [`DeltaEncoder`](crate::wire::DeltaEncoder))
//! — so the map can be a flat slab indexed directly by `intern_idx`:
//!
//! - **probe = one bounds check + one bit test + one load** — no
//!   hashing, no collision chains;
//! - **zero allocation after construction** — the entry array, the
//!   generation tags, and the occupancy bitset are all sized up front
//!   from the capacity;
//! - **O(1) reset** — restarting a decoder bumps a generation counter
//!   instead of touching a million slots; a slot is live only if its
//!   tag matches the current generation (the rare u32 generation wrap
//!   falls back to an explicit clear);
//! - **last-entry hot cache** — a paced-sender burst lands several
//!   deltas from one sender back to back, so the previous hit answers
//!   the next probe without touching the (multi-megabyte) slab at all.
//!
//! The capacity bound changes *shape* but not strength versus the old
//! map: the slab stores exactly the indices `0..capacity`, so an index
//! at or past capacity is rejected (and counted by the caller) just as
//! an insert into a full `HashMap` was. Under the dense identity-index
//! convention the two are observably identical — an in-range index can
//! never hit the fullness rejection in either backing — and the
//! `intern_equiv` proptest in `tests/` holds the slab-backed
//! [`WireDecoder`](crate::wire::WireDecoder) to that, frame for frame.

/// One receiver-side intern table entry: the checkpoint a sender's
/// delta frames decode against, registered by an intern frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternEntry {
    /// The sender id bound into every delta checksum for this index.
    pub sender: u32,
    /// Sequence number of the checkpoint heartbeat.
    pub ckpt_seq: u64,
    /// Send time of the checkpoint heartbeat, in nanoseconds.
    pub ckpt_sent_at_nanos: u64,
    /// The sender's nominal heartbeat interval, in nanoseconds, used to
    /// predict delta send times arithmetically.
    pub interval_nanos: u64,
}

const VACANT: InternEntry = InternEntry {
    sender: 0,
    ckpt_seq: 0,
    ckpt_sent_at_nanos: 0,
    interval_nanos: 0,
};

/// A flat intern table: `Vec<InternEntry>` indexed directly by the
/// intern index, with an occupancy bitset, generation-tagged slots for
/// O(1) [`reset`](InternSlab::reset), and a one-entry hot cache.
///
/// Indices `0..capacity` always insert (first fill or overwrite);
/// indices at or past capacity are rejected — the slab's form of the
/// bounded-table guarantee. See the module docs for why this matches
/// the old `HashMap` bound under the dense-index convention.
#[derive(Debug)]
pub struct InternSlab {
    entries: Box<[InternEntry]>,
    /// Generation each slot was last written in; a slot is live only if
    /// this matches `generation` (and its occupancy bit is set), which
    /// is what lets `reset` retire every slot without touching them.
    gens: Box<[u32]>,
    /// One bit per slot: a cheap first test that keeps a miss on a
    /// vacant index from loading the (cold) entry array at all.
    occupied: Box<[u64]>,
    generation: u32,
    live: usize,
    /// The last entry hit or inserted: a paced-sender burst probes the
    /// same index repeatedly, and this answers without a slab load.
    hot: Option<(u32, InternEntry)>,
}

impl InternSlab {
    /// Creates a slab holding intern indices `0..capacity` (floored at
    /// 1). All storage is allocated here; no later call allocates.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        InternSlab {
            // lint:allow(no-alloc-in-hot-path, one-time construction)
            entries: vec![VACANT; cap].into_boxed_slice(),
            // lint:allow(no-alloc-in-hot-path, one-time construction)
            gens: vec![0u32; cap].into_boxed_slice(),
            // lint:allow(no-alloc-in-hot-path, one-time construction)
            occupied: vec![0u64; cap.div_ceil(64)].into_boxed_slice(),
            generation: 1,
            live: 0,
            hot: None,
        }
    }

    /// The index bound: the slab stores exactly indices `0..capacity`.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn is_live(&self, i: usize) -> bool {
        (self.occupied[i / 64] >> (i % 64)) & 1 == 1 && self.gens[i] == self.generation
    }

    /// Looks up `idx`, refreshing the hot cache on a slab hit. Returns
    /// `None` for vacant and out-of-capacity indices alike — neither
    /// has an entry to decode against.
    #[inline]
    pub fn get(&mut self, idx: u32) -> Option<InternEntry> {
        if let Some((hot_idx, entry)) = self.hot {
            if hot_idx == idx {
                return Some(entry);
            }
        }
        let i = idx as usize;
        if i >= self.entries.len() || !self.is_live(i) {
            return None;
        }
        let entry = self.entries[i];
        self.hot = Some((idx, entry));
        Some(entry)
    }

    /// Inserts (or overwrites) the entry for `idx`, returning `false` —
    /// and storing nothing — if `idx` is at or past capacity. In-range
    /// inserts never fail: the slot for every in-range index exists by
    /// construction.
    #[inline]
    pub fn insert(&mut self, idx: u32, entry: InternEntry) -> bool {
        let i = idx as usize;
        if i >= self.entries.len() {
            return false;
        }
        if !self.is_live(i) {
            self.live += 1;
        }
        self.occupied[i / 64] |= 1 << (i % 64);
        self.gens[i] = self.generation;
        self.entries[i] = entry;
        self.hot = Some((idx, entry));
        true
    }

    /// Retires every entry in O(1) by advancing the generation: stale
    /// slots keep their bits and bytes but no longer match, so the next
    /// `get` misses and the next `insert` refills them. Only on the
    /// (effectively unreachable) u32 generation wrap does reset pay for
    /// an explicit clear, to keep ancient tags from false-matching.
    pub fn reset(&mut self) {
        self.hot = None;
        self.live = 0;
        match self.generation.checked_add(1) {
            Some(g) => self.generation = g,
            None => {
                for word in self.occupied.iter_mut() {
                    *word = 0;
                }
                for gen in self.gens.iter_mut() {
                    *gen = 0;
                }
                self.generation = 1;
            }
        }
    }

    /// Test hook: jump to a specific generation to exercise the wrap.
    /// Invalidates the hot cache like every real generation change.
    #[cfg(test)]
    fn set_generation(&mut self, generation: u32) {
        self.generation = generation;
        self.hot = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sender: u32) -> InternEntry {
        InternEntry {
            sender,
            ckpt_seq: u64::from(sender) * 10,
            ckpt_sent_at_nanos: u64::from(sender) * 100,
            interval_nanos: 1_000,
        }
    }

    #[test]
    fn insert_get_overwrite() {
        let mut slab = InternSlab::new(8);
        assert!(slab.is_empty());
        assert_eq!(slab.get(3), None);
        assert!(slab.insert(3, entry(30)));
        assert_eq!(slab.get(3), Some(entry(30)));
        assert_eq!(slab.len(), 1);
        // Overwrite does not double-count.
        assert!(slab.insert(3, entry(31)));
        assert_eq!(slab.get(3), Some(entry(31)));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(4), None);
    }

    #[test]
    fn out_of_capacity_indices_are_rejected() {
        let mut slab = InternSlab::new(4);
        assert!(slab.insert(3, entry(3)), "last in-range index");
        assert!(!slab.insert(4, entry(4)), "first out-of-range index");
        assert!(!slab.insert(u32::MAX, entry(9)));
        assert_eq!(slab.get(4), None);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.capacity(), 4);
    }

    #[test]
    fn capacity_floors_at_one() {
        let mut slab = InternSlab::new(0);
        assert_eq!(slab.capacity(), 1);
        assert!(slab.insert(0, entry(1)));
        assert!(!slab.insert(1, entry(2)));
    }

    #[test]
    fn every_in_range_index_fits_simultaneously() {
        let mut slab = InternSlab::new(200);
        for i in 0..200u32 {
            assert!(slab.insert(i, entry(i)));
        }
        assert_eq!(slab.len(), 200);
        for i in 0..200u32 {
            assert_eq!(slab.get(i), Some(entry(i)));
        }
    }

    #[test]
    fn reset_retires_everything_and_slots_refill() {
        let mut slab = InternSlab::new(128);
        for i in 0..100u32 {
            slab.insert(i, entry(i));
        }
        slab.reset();
        assert!(slab.is_empty());
        for i in 0..100u32 {
            assert_eq!(slab.get(i), None, "stale slot {i} survived reset");
        }
        // Refill after reset behaves like a fresh slab.
        assert!(slab.insert(7, entry(70)));
        assert_eq!(slab.get(7), Some(entry(70)));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn hot_cache_tracks_overwrites_and_reset() {
        let mut slab = InternSlab::new(8);
        slab.insert(2, entry(20));
        assert_eq!(slab.get(2), Some(entry(20)));
        // The hot cache must serve the *new* value after an overwrite.
        slab.insert(2, entry(21));
        assert_eq!(slab.get(2), Some(entry(21)));
        slab.reset();
        assert_eq!(slab.get(2), None, "hot cache leaked across reset");
    }

    #[test]
    fn generation_wrap_clears_stale_tags() {
        let mut slab = InternSlab::new(8);
        slab.insert(1, entry(1));
        slab.set_generation(u32::MAX);
        // Generation u32::MAX never wrote slot 1, so it reads vacant.
        assert_eq!(slab.get(1), None);
        slab.insert(2, entry(2));
        slab.reset(); // wraps: explicit clear, back to generation 1
        assert_eq!(slab.get(1), None, "gen-1 tag from before the wrap matched");
        assert_eq!(slab.get(2), None);
        assert!(slab.is_empty());
        slab.insert(1, entry(11));
        assert_eq!(slab.get(1), Some(entry(11)));
    }
}
