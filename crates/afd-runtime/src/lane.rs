//! Multi-socket UDP intake lanes: the million-peer fan-in path.
//!
//! A single `UdpSocket` serializes every peer's heartbeats through one
//! kernel receive queue and one reader thread — e14 showed that socket,
//! not the detectors, is the intake bottleneck. [`MultiUdpTransport`]
//! shards the receive side across `L` independent non-blocking sockets
//! (*lanes*), each drained by its own engine intake thread into its own
//! [`FrameBatch`] arena, so datagram receive, decode, and ring routing
//! all parallelize with the socket count.
//!
//! # Port fan-in
//!
//! The portable deployment binds each lane to a **distinct port**
//! (`base_port + i`, or OS-chosen when the base port is 0) and senders
//! pick a lane by hashing their process id — the same load-spreading
//! effect as `SO_REUSEPORT` kernel hashing without requiring platform
//! socket options (`std::net` exposes none, and this crate takes no
//! platform dependencies). On hosts with `SO_REUSEPORT` the same
//! `N sockets → N threads` topology applies; only the bind call differs.
//!
//! # Receive discipline
//!
//! Each lane's [`recv_batch`](Transport::recv_batch) drains its socket
//! until `EWOULDBLOCK`, the batch fills, or a per-call syscall budget is
//! spent — the budget bounds how long one drain can monopolize the
//! intake thread when a lane is firehosed, keeping liveness ticks and
//! stop-flag checks timely. Datagrams are received straight into the
//! probe-sized arena slots ([`PROBE_LEN`]): an oversize datagram
//! (> [`MAX_DATAGRAM`]) is detected and counted, never truncated into a
//! decodable-looking frame, and a runt shorter than any wire frame
//! ([`MIN_FRAME`](crate::wire::MIN_FRAME)) is dropped before decode.
//! Unlike [`UdpTransport`](crate::transport::UdpTransport)'s
//! single-peer filter, lanes accept datagrams from **any** source — a
//! million senders cannot share one known address; authenticity is the
//! checksum's job, liveness the detector's.
//!
//! Every counter is published through [`UdpLaneStats`] (single-writer:
//! only the lane's intake thread stores) and exported as
//! `udp.lane.<i>.*` metrics plus `udp.*` totals by
//! [`MultiUdpStats::export_metrics`].
//!
//! Downstream, the engine's lane intake stamps every heartbeat of a
//! drained batch with **one** clock read and publishes per-worker
//! groups through `push_batch` — see the batch-stamping and grouped
//! seqlock publish notes in `engine.rs` and DESIGN.md §7j for the
//! stamp-skew bound.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::TransportError;
use crate::transport::{FrameBatch, Transport, MAX_DATAGRAM, PROBE_LEN};
use crate::wire::MIN_FRAME;

use std::io::ErrorKind;

/// Default per-`recv_batch` syscall budget for a lane.
pub const DEFAULT_RECV_BUDGET: usize = 4096;

/// Counters one lane's intake publishes. Single-writer: only the thread
/// draining the lane stores; readers (metrics export, benches) load.
#[derive(Debug, Default)]
pub struct UdpLaneStats {
    datagrams: AtomicU64,
    oversize: AtomicU64,
    short: AtomicU64,
    syscalls: AtomicU64,
    batches: AtomicU64,
}

impl UdpLaneStats {
    /// Single-writer add: a plain load+store pair is exact because only
    /// the lane's intake thread writes these counters.
    fn add(counter: &AtomicU64, n: u64) {
        counter.store(
            counter.load(Ordering::Relaxed).wrapping_add(n),
            Ordering::Relaxed,
        );
    }

    /// Datagrams accepted into a batch.
    pub fn datagrams(&self) -> u64 {
        self.datagrams.load(Ordering::Relaxed)
    }

    /// Datagrams dropped for exceeding [`MAX_DATAGRAM`].
    pub fn oversize_dropped(&self) -> u64 {
        self.oversize.load(Ordering::Relaxed)
    }

    /// Datagrams dropped for being shorter than any wire frame.
    pub fn short_dropped(&self) -> u64 {
        self.short.load(Ordering::Relaxed)
    }

    /// `recv_from` syscalls issued (including the terminal
    /// `EWOULDBLOCK` probe of each drain).
    pub fn syscalls(&self) -> u64 {
        self.syscalls.load(Ordering::Relaxed)
    }

    /// `recv_batch` calls that stored at least one frame.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Mean syscalls per non-empty batch — the syscall-batching win.
    pub fn syscalls_per_batch(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        self.syscalls() as f64 / batches as f64
    }
}

/// One intake lane: a non-blocking any-source UDP socket with budgeted
/// batch draining and per-lane counters.
#[derive(Debug)]
pub struct UdpLane {
    socket: UdpSocket,
    stats: Arc<UdpLaneStats>,
    recv_budget: usize,
}

impl UdpLane {
    /// Binds one lane on `local` (port 0 = OS-chosen).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the socket cannot be bound or made
    /// non-blocking.
    pub fn bind(local: SocketAddr) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(local)?;
        socket.set_nonblocking(true)?;
        Ok(UdpLane {
            socket,
            stats: Arc::new(UdpLaneStats::default()),
            recv_budget: DEFAULT_RECV_BUDGET,
        })
    }

    /// The lane's bound address — senders target this.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the OS cannot report the address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.socket.local_addr()?)
    }

    /// Shared handle to this lane's counters (clone it before moving the
    /// lane into an engine).
    pub fn stats(&self) -> Arc<UdpLaneStats> {
        Arc::clone(&self.stats)
    }

    /// Caps `recv_from` syscalls per `recv_batch` call (floored at 1).
    pub fn set_recv_budget(&mut self, budget: usize) {
        self.recv_budget = budget.max(1);
    }
}

impl Transport for UdpLane {
    /// Lanes are receive-only; heartbeat *sending* goes through
    /// [`UdpTransport`](crate::transport::UdpTransport) aimed at a
    /// lane's address.
    fn send(&mut self, _frame: &[u8]) -> Result<(), TransportError> {
        Err(TransportError::Io(
            "UDP intake lane is receive-only".to_owned(),
        ))
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut buf = [0u8; PROBE_LEN];
        loop {
            UdpLaneStats::add(&self.stats.syscalls, 1);
            return match self.socket.recv_from(&mut buf) {
                Ok((n, _from)) => {
                    if n > MAX_DATAGRAM {
                        UdpLaneStats::add(&self.stats.oversize, 1);
                        continue;
                    }
                    if n < MIN_FRAME {
                        UdpLaneStats::add(&self.stats.short, 1);
                        continue;
                    }
                    UdpLaneStats::add(&self.stats.datagrams, 1);
                    // lint:allow(no-alloc-in-hot-path, legacy per-frame path; batched intake uses recv_batch)
                    Ok(Some(buf[..n].to_vec()))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                Err(e) if e.kind() == ErrorKind::ConnectionRefused => Ok(None),
                Err(e) => Err(e.into()),
            };
        }
    }

    /// Budgeted drain-until-`EWOULDBLOCK` straight into the arena slots:
    /// one syscall per datagram, zero copies beyond the kernel's, zero
    /// heap allocations.
    fn recv_batch(&mut self, batch: &mut FrameBatch) -> Result<usize, TransportError> {
        let mut got = 0usize;
        let mut oversize = 0u64;
        let mut short = 0u64;
        let mut syscalls = 0u64;
        let mut failure: Option<TransportError> = None;
        let mut drained = false;
        let socket = &self.socket;
        while !batch.is_full()
            && !drained
            && failure.is_none()
            && syscalls < self.recv_budget as u64
        {
            batch.push_with(|buf| {
                syscalls += 1;
                match socket.recv_from(buf) {
                    Ok((n, _from)) => {
                        if n > MAX_DATAGRAM {
                            oversize += 1;
                            return None;
                        }
                        if n < MIN_FRAME {
                            short += 1;
                            return None;
                        }
                        got += 1;
                        Some(n)
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        drained = true;
                        None
                    }
                    Err(e) if e.kind() == ErrorKind::ConnectionRefused => None,
                    Err(e) => {
                        failure = Some(e.into());
                        None
                    }
                }
            });
        }
        UdpLaneStats::add(&self.stats.syscalls, syscalls);
        UdpLaneStats::add(&self.stats.oversize, oversize);
        UdpLaneStats::add(&self.stats.short, short);
        if got > 0 {
            UdpLaneStats::add(&self.stats.datagrams, got as u64);
            UdpLaneStats::add(&self.stats.batches, 1);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(got),
        }
    }
}

/// Cloneable read side of a lane group's counters, usable after the
/// lanes themselves have moved into an engine.
#[derive(Debug, Clone)]
pub struct MultiUdpStats {
    per_lane: Vec<Arc<UdpLaneStats>>,
}

impl MultiUdpStats {
    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.per_lane.len()
    }

    /// One lane's counters.
    pub fn lane(&self, i: usize) -> &UdpLaneStats {
        &self.per_lane[i]
    }

    /// Sum of accepted datagrams across lanes.
    pub fn datagrams(&self) -> u64 {
        self.per_lane.iter().map(|l| l.datagrams()).sum()
    }

    /// Sum of oversize drops across lanes.
    pub fn oversize_dropped(&self) -> u64 {
        self.per_lane.iter().map(|l| l.oversize_dropped()).sum()
    }

    /// Sum of short-datagram drops across lanes.
    pub fn short_dropped(&self) -> u64 {
        self.per_lane.iter().map(|l| l.short_dropped()).sum()
    }

    /// Sum of `recv_from` syscalls across lanes.
    pub fn syscalls(&self) -> u64 {
        self.per_lane.iter().map(|l| l.syscalls()).sum()
    }

    /// Publishes per-lane counters under `udp.lane.<i>.*` and totals
    /// under `udp.*` into `registry`.
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        for (i, lane) in self.per_lane.iter().enumerate() {
            registry
                .counter(&format!("udp.lane.{i}.datagrams"))
                .set(lane.datagrams());
            registry
                .counter(&format!("udp.lane.{i}.oversize_dropped"))
                .set(lane.oversize_dropped());
            registry
                .counter(&format!("udp.lane.{i}.short_dropped"))
                .set(lane.short_dropped());
            registry
                .counter(&format!("udp.lane.{i}.syscalls"))
                .set(lane.syscalls());
            registry
                .gauge(&format!("udp.lane.{i}.syscalls_per_batch"))
                .set(lane.syscalls_per_batch());
        }
        registry.counter("udp.datagrams").set(self.datagrams());
        registry
            .counter("udp.oversize_dropped")
            .set(self.oversize_dropped());
        registry
            .counter("udp.short_dropped")
            .set(self.short_dropped());
        registry.counter("udp.syscalls").set(self.syscalls());
        registry.gauge("udp.lanes").set(self.lanes() as f64);
    }
}

/// A group of UDP intake lanes bound on distinct ports.
///
/// Build it, hand the per-lane addresses to senders (each sender hashes
/// its id onto a lane with [`lane_for`](MultiUdpTransport::lane_for)),
/// keep a [`stats`](MultiUdpTransport::stats) handle, and move the lanes
/// into a `ParallelShardEngine` with
/// [`into_lanes`](MultiUdpTransport::into_lanes).
#[derive(Debug)]
pub struct MultiUdpTransport {
    lanes: Vec<UdpLane>,
}

impl MultiUdpTransport {
    /// Binds `lanes` sockets (floored at 1). With `local.port() == 0`
    /// every lane gets an OS-chosen port; otherwise lane `i` binds
    /// `local.port() + i`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if any socket cannot be bound (e.g. a
    /// fixed port range collides) or a fixed port range overflows
    /// `u16`.
    pub fn bind(local: SocketAddr, lanes: usize) -> Result<Self, TransportError> {
        let lanes = lanes.max(1);
        let mut bound = Vec::with_capacity(lanes);
        for i in 0..lanes {
            let mut addr = local;
            if local.port() != 0 {
                let port = local.port().checked_add(i as u16).ok_or_else(|| {
                    TransportError::Io(format!(
                        "lane port range {}+{lanes} overflows u16",
                        local.port()
                    ))
                })?;
                addr.set_port(port);
            }
            bound.push(UdpLane::bind(addr)?);
        }
        Ok(MultiUdpTransport { lanes: bound })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Every lane's bound address, lane-indexed.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the OS cannot report an address.
    pub fn local_addrs(&self) -> Result<Vec<SocketAddr>, TransportError> {
        self.lanes.iter().map(UdpLane::local_addr).collect()
    }

    /// The lane a sender with `id` should target — the same Fibonacci
    /// multiplicative hash the shard router uses, so senders spread
    /// uniformly without coordination.
    pub fn lane_for(id: u32, lanes: usize) -> usize {
        crate::shard::shard_index(afd_core::process::ProcessId::new(id), lanes.max(1))
    }

    /// Caps every lane's per-`recv_batch` syscall budget.
    pub fn set_recv_budget(&mut self, budget: usize) {
        for lane in &mut self.lanes {
            lane.set_recv_budget(budget);
        }
    }

    /// Cloneable counter handles that outlive the lanes' move into an
    /// engine.
    pub fn stats(&self) -> MultiUdpStats {
        MultiUdpStats {
            per_lane: self.lanes.iter().map(UdpLane::stats).collect(),
        }
    }

    /// Consumes the group into its lanes, ready for
    /// `ParallelShardEngine::start_lanes`.
    pub fn into_lanes(self) -> Vec<UdpLane> {
        self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, SocketAddrV4};
    use std::time::Duration;

    fn loopback_any() -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))
    }

    fn drain_expect(lane: &mut UdpLane, batch: &mut FrameBatch, want: usize) -> usize {
        let mut got = 0usize;
        for _ in 0..200 {
            got += lane.recv_batch(batch).unwrap();
            if got >= want {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn lanes_bind_distinct_ports() {
        let multi = MultiUdpTransport::bind(loopback_any(), 4).unwrap();
        let addrs = multi.local_addrs().unwrap();
        assert_eq!(addrs.len(), 4);
        let mut ports: Vec<u16> = addrs.iter().map(SocketAddr::port).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 4, "every lane has its own port");
    }

    #[test]
    fn lane_accepts_any_source_and_counts() {
        let multi = MultiUdpTransport::bind(loopback_any(), 1).unwrap();
        let addr = multi.local_addrs().unwrap()[0];
        let stats = multi.stats();
        let mut lanes = multi.into_lanes();
        let lane = &mut lanes[0];

        let s1 = UdpSocket::bind(loopback_any()).unwrap();
        let s2 = UdpSocket::bind(loopback_any()).unwrap();
        s1.send_to(b"abcdef", addr).unwrap();
        s2.send_to(b"ghijkl", addr).unwrap();
        s1.send_to(&[0u8; MAX_DATAGRAM + 1], addr).unwrap(); // oversize
        s2.send_to(b"x", addr).unwrap(); // runt

        let mut batch = FrameBatch::with_capacity(16);
        assert_eq!(drain_expect(lane, &mut batch, 2), 2);
        // Give the two drop-path datagrams time to land too.
        for _ in 0..200 {
            if stats.oversize_dropped() + stats.short_dropped() >= 2 {
                break;
            }
            lane.recv_batch(&mut batch).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(stats.datagrams(), 2);
        assert_eq!(stats.oversize_dropped(), 1);
        assert_eq!(stats.short_dropped(), 1);
        assert!(stats.syscalls() >= 3, "at least datagrams + final probe");
    }

    #[test]
    fn recv_budget_bounds_one_drain() {
        let multi = MultiUdpTransport::bind(loopback_any(), 1).unwrap();
        let addr = multi.local_addrs().unwrap()[0];
        let mut lanes = multi.into_lanes();
        let lane = &mut lanes[0];
        lane.set_recv_budget(3);

        let s = UdpSocket::bind(loopback_any()).unwrap();
        for _ in 0..10 {
            s.send_to(b"abcdef", addr).unwrap();
        }
        std::thread::sleep(Duration::from_millis(30));
        let mut batch = FrameBatch::with_capacity(16);
        let got = lane.recv_batch(&mut batch).unwrap();
        assert!(got <= 3, "budget of 3 syscalls caps the drain, got {got}");
        // Subsequent calls pick up the rest.
        let total = got + drain_expect(lane, &mut batch, 10 - got);
        assert_eq!(total, 10);
    }

    #[test]
    fn lane_for_spreads_and_is_stable() {
        let lanes = 4usize;
        let mut hit = vec![0usize; lanes];
        for id in 0..4096u32 {
            let l = MultiUdpTransport::lane_for(id, lanes);
            assert_eq!(l, MultiUdpTransport::lane_for(id, lanes));
            hit[l] += 1;
        }
        for (i, h) in hit.iter().enumerate() {
            assert!(
                *h > 4096 / lanes / 2,
                "lane {i} underloaded: {h} of 4096 ids"
            );
        }
    }

    #[test]
    fn lane_send_is_rejected() {
        let multi = MultiUdpTransport::bind(loopback_any(), 1).unwrap();
        let mut lanes = multi.into_lanes();
        assert!(matches!(lanes[0].send(b"nope"), Err(TransportError::Io(_))));
    }

    #[test]
    fn metrics_export_names_every_lane() {
        let multi = MultiUdpTransport::bind(loopback_any(), 2).unwrap();
        let stats = multi.stats();
        let registry = afd_obs::Registry::new();
        stats.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("udp.lane.0.datagrams"), Some(0));
        assert_eq!(snap.counter("udp.lane.1.syscalls"), Some(0));
        assert_eq!(snap.counter("udp.datagrams"), Some(0));
        assert_eq!(snap.gauge("udp.lanes"), Some(2.0));
    }
}
