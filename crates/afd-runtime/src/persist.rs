//! Crash-safe durable state: checkpointed detector windows and
//! corruption-tolerant restore.
//!
//! A restarted monitor that re-learns every peer's inter-arrival window
//! from scratch answers queries from the small-sample bootstrap prior for
//! minutes at scale — inflated detection time, spurious wrong suspicions.
//! This module checkpoints the per-peer durable state (window moments,
//! last arrival, replay sequence) and restores it so phi/Chen answer at
//! pre-crash quality on the very first post-restore query.
//!
//! # Architecture
//!
//! - **Dump path**: [`Checkpointer::checkpoint`] reads each shard's
//!   published epoch snapshot through
//!   [`SnapshotReader`](crate::shard::SnapshotReader) — the double-buffered
//!   seqlocked banks the tick writer publishes into. The dumper therefore
//!   never touches worker-owned detector state and runs entirely off the
//!   hot path; workers pay nothing beyond the durable columns they already
//!   publish per tick.
//! - **Format**: one *segment* per shard (length-prefixed record table,
//!   CRC-32 trailer) plus a *manifest* binding the segment set to a
//!   generation and epoch. Every file is installed atomically by the
//!   [`SegmentSink`] (`DirSink`: write tmp → fsync → rename), so a crash
//!   at any byte boundary leaves either the previous complete generation
//!   or the new one — never a half-installed mix the restore would trust.
//! - **Restore**: [`Checkpointer::restore`] walks manifest generations
//!   newest-first, verifies every checksum, quarantines (skips and
//!   counts) any segment that fails, and returns the surviving peers for
//!   bulk import via [`ShardedMonitor::restore`](crate::shard::ShardedMonitor::restore)
//!   or [`ParallelShardEngine::restore`](crate::engine::ParallelShardEngine::restore).
//!
//! Storage faults are exercised deterministically with [`FaultySink`],
//! the storage sibling of the network
//! [`FaultInjector`](crate::fault::FaultInjector).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use afd_core::accrual::DetectorSeed;
use afd_core::process::ProcessId;
use afd_core::time::{Duration, Timestamp};
use afd_sim::rng::SimRng;

use crate::clock::Clock;
use crate::shard::{PeerDurable, SnapshotReader};

/// Magic prefix of a segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"AFDSEG01";
/// Magic prefix of a manifest file.
const MANIFEST_MAGIC: &[u8; 8] = b"AFDMAN01";
/// On-disk format version.
const FORMAT_VERSION: u32 = 1;
/// Bytes per peer record in a segment.
const RECORD_BYTES: usize = 64;
/// Segment header bytes before the record table.
const SEGMENT_HEADER: usize = 40;
/// Manifest header bytes before the entry table.
const MANIFEST_HEADER: usize = 32;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), hand-rolled: the workspace is zero-dependency by charter.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a persistence operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The underlying storage failed (message carries the OS detail).
    Io(String),
    /// A file failed structural or checksum validation.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "storage error: {msg}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persistent state: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(e: std::io::Error) -> PersistError {
    PersistError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// SegmentSink: the storage abstraction
// ---------------------------------------------------------------------------

/// Atomically-installing blob storage for checkpoint files.
///
/// The single contract that makes checkpoints crash-safe:
/// [`put`](SegmentSink::put) is **all-or-nothing** — after a crash at any
/// point, a later [`get`](SegmentSink::get) returns either the complete
/// new bytes, the complete previous bytes, or nothing, never a prefix.
/// [`DirSink`] realises this with write-tmp → fsync → atomic rename;
/// [`MemSink`] trivially; [`FaultySink`] deliberately violates it to
/// exercise the restore path's checksum rejection.
pub trait SegmentSink {
    /// Atomically installs `bytes` under `name`, replacing any previous
    /// content.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the storage failed.
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), PersistError>;

    /// Reads the blob named `name` (`None` if absent).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the storage failed.
    fn get(&self, name: &str) -> Result<Option<Vec<u8>>, PersistError>;

    /// Lists all installed blob names, ascending.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the storage failed.
    fn list(&self) -> Result<Vec<String>, PersistError>;

    /// Removes the blob named `name` (absent is not an error).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the storage failed.
    fn delete(&mut self, name: &str) -> Result<(), PersistError>;
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        // A poisoned sink mutex means another checkpoint thread panicked
        // mid-put; the blob layer is still structurally sound (puts are
        // atomic), so recover the guard rather than propagate the poison.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Shared-sink forwarding so a [`CheckpointDaemon`] thread and a restart
/// path can use one store: clones of the `Arc` are one logical sink.
impl<S: SegmentSink> SegmentSink for Arc<Mutex<S>> {
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        lock_unpoisoned(self).put(name, bytes)
    }
    fn get(&self, name: &str) -> Result<Option<Vec<u8>>, PersistError> {
        lock_unpoisoned(self).get(name)
    }
    fn list(&self) -> Result<Vec<String>, PersistError> {
        lock_unpoisoned(self).list()
    }
    fn delete(&mut self, name: &str) -> Result<(), PersistError> {
        lock_unpoisoned(self).delete(name)
    }
}

/// Durable directory-backed sink: write `<name>.tmp`, fsync, atomically
/// rename to `<name>`, then fsync the directory so the rename itself
/// survives power loss.
///
/// This is the **only** place in `afd-runtime` allowed to touch
/// `std::fs` (enforced by the `io-discipline` lint rule).
#[derive(Debug)]
pub struct DirSink {
    root: PathBuf,
}

impl DirSink {
    /// Opens (creating if needed) `root` as a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(io_err)?;
        Ok(DirSink { root })
    }

    /// The directory this sink installs into.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn checked(&self, name: &str) -> Result<PathBuf, PersistError> {
        if name.is_empty() || name.contains(['/', '\\']) || name.contains("..") {
            return Err(PersistError::Io(format!("invalid blob name {name:?}")));
        }
        Ok(self.root.join(name))
    }
}

impl SegmentSink for DirSink {
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        use std::io::Write;
        let path = self.checked(name)?;
        let tmp = self.root.join(format!("{name}.tmp"));
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(bytes).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        drop(file);
        std::fs::rename(&tmp, &path).map_err(io_err)?;
        // Make the rename durable: fsync the containing directory. Best
        // effort — some filesystems refuse directory handles.
        if let Ok(dir) = std::fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Option<Vec<u8>>, PersistError> {
        match std::fs::read(self.checked(name)?) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, PersistError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            if let Some(name) = entry.file_name().to_str() {
                // Leftover tmp files are uninstalled garbage from a crash
                // mid-put; they are invisible to readers.
                if !name.ends_with(".tmp") {
                    out.push(name.to_string());
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn delete(&mut self, name: &str) -> Result<(), PersistError> {
        match std::fs::remove_file(self.checked(name)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }
}

/// In-memory sink for tests, benches, and the chaos harness.
#[derive(Debug, Clone, Default)]
pub struct MemSink {
    blobs: BTreeMap<String, Vec<u8>>,
}

impl MemSink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        MemSink::default()
    }

    /// Number of installed blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// `true` if nothing is installed.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

impl SegmentSink for MemSink {
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        self.blobs.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }
    fn get(&self, name: &str) -> Result<Option<Vec<u8>>, PersistError> {
        Ok(self.blobs.get(name).cloned())
    }
    fn list(&self) -> Result<Vec<String>, PersistError> {
        Ok(self.blobs.keys().cloned().collect())
    }
    fn delete(&mut self, name: &str) -> Result<(), PersistError> {
        self.blobs.remove(name);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultySink: deterministic storage fault injection
// ---------------------------------------------------------------------------

/// Which storage faults a [`FaultySink`] injects, as per-put
/// probabilities — the storage sibling of
/// [`FaultPlan`](crate::fault::FaultPlan).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultySinkPlan {
    /// Probability a put is truncated at a random byte offset.
    pub short_write: f64,
    /// Probability the tail of a put, from a random byte offset on, is
    /// replaced with garbage (a torn write across sectors).
    pub torn_write: f64,
    /// Probability exactly one random bit of a put is flipped.
    pub bit_flip: f64,
    /// Probability a put is silently discarded — the crash-before-rename
    /// case where the tmp file was written but never installed.
    pub drop_install: f64,
}

impl FaultySinkPlan {
    /// A plan injecting nothing.
    pub fn new() -> Self {
        FaultySinkPlan::default()
    }

    /// Sets the short-write (truncation) probability.
    #[must_use]
    pub fn with_short_write(mut self, p: f64) -> Self {
        self.short_write = p;
        self
    }

    /// Sets the torn-write probability.
    #[must_use]
    pub fn with_torn_write(mut self, p: f64) -> Self {
        self.torn_write = p;
        self
    }

    /// Sets the bit-flip probability.
    #[must_use]
    pub fn with_bit_flip(mut self, p: f64) -> Self {
        self.bit_flip = p;
        self
    }

    /// Sets the drop-install (crash before rename) probability.
    #[must_use]
    pub fn with_drop_install(mut self, p: f64) -> Self {
        self.drop_install = p;
        self
    }
}

/// Counters describing what a [`FaultySink`] actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultySinkStats {
    /// Puts observed (faulted or not).
    pub puts: u64,
    /// Puts truncated short.
    pub short_writes: u64,
    /// Puts with a garbage tail.
    pub torn_writes: u64,
    /// Puts with one bit flipped.
    pub bit_flips: u64,
    /// Puts silently discarded before install.
    pub dropped_installs: u64,
}

/// A [`SegmentSink`] wrapper injecting seeded, deterministic storage
/// faults on the write path, so every corruption branch of the restore
/// logic is exercised reproducibly.
#[derive(Debug)]
pub struct FaultySink<S> {
    inner: S,
    plan: FaultySinkPlan,
    rng: SimRng,
    stats: FaultySinkStats,
    filter: Option<String>,
}

impl<S: SegmentSink> FaultySink<S> {
    /// Wraps `inner`, applying `plan` with randomness seeded by `seed`.
    pub fn new(inner: S, plan: FaultySinkPlan, seed: u64) -> Self {
        FaultySink {
            inner,
            plan,
            rng: SimRng::seed_from_u64(seed),
            stats: FaultySinkStats::default(),
            filter: None,
        }
    }

    /// Restricts fault injection to puts whose name contains
    /// `substring` — e.g. `"seg-g2-"` to corrupt exactly one generation's
    /// segments while leaving its manifest intact.
    #[must_use]
    pub fn with_filter(mut self, substring: impl Into<String>) -> Self {
        self.filter = Some(substring.into());
        self
    }

    /// What the sink has done so far.
    pub fn stats(&self) -> FaultySinkStats {
        self.stats
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps into the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Publishes the fault counters into `registry` under
    /// `persist.fault.*`.
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        registry.counter("persist.fault.puts").set(self.stats.puts);
        registry
            .counter("persist.fault.short_writes")
            .set(self.stats.short_writes);
        registry
            .counter("persist.fault.torn_writes")
            .set(self.stats.torn_writes);
        registry
            .counter("persist.fault.bit_flips")
            .set(self.stats.bit_flips);
        registry
            .counter("persist.fault.dropped_installs")
            .set(self.stats.dropped_installs);
    }
}

impl<S: SegmentSink> SegmentSink for FaultySink<S> {
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        self.stats.puts += 1;
        let targeted = self.filter.as_deref().is_none_or(|f| name.contains(f));
        if !targeted {
            return self.inner.put(name, bytes);
        }
        if self.rng.bernoulli(self.plan.drop_install) {
            // Crash before rename: the tmp file dies with the process and
            // nothing is installed.
            self.stats.dropped_installs += 1;
            return Ok(());
        }
        let mut data = bytes.to_vec();
        if !data.is_empty() && self.rng.bernoulli(self.plan.short_write) {
            data.truncate(self.rng.index(data.len()));
            self.stats.short_writes += 1;
        }
        if !data.is_empty() && self.rng.bernoulli(self.plan.torn_write) {
            let from = self.rng.index(data.len());
            for b in &mut data[from..] {
                *b = self.rng.index(256) as u8;
            }
            self.stats.torn_writes += 1;
        }
        if !data.is_empty() && self.rng.bernoulli(self.plan.bit_flip) {
            let at = self.rng.index(data.len());
            data[at] ^= 1 << self.rng.index(8);
            self.stats.bit_flips += 1;
        }
        self.inner.put(name, &data)
    }

    fn get(&self, name: &str) -> Result<Option<Vec<u8>>, PersistError> {
        self.inner.get(name)
    }
    fn list(&self) -> Result<Vec<String>, PersistError> {
        self.inner.list()
    }
    fn delete(&mut self, name: &str) -> Result<(), PersistError> {
        self.inner.delete(name)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

fn segment_name(generation: u64, shard: usize) -> String {
    format!("seg-g{generation}-s{shard}.afds")
}

fn manifest_name(generation: u64) -> String {
    format!("manifest-g{generation}.afdm")
}

/// Parses `manifest-g{N}.afdm` back to `N`.
fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("manifest-g")?
        .strip_suffix(".afdm")?
        .parse()
        .ok()
}

/// Parses `seg-g{N}-s{S}.afds` back to `N`.
fn parse_segment_generation(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-g")?.strip_suffix(".afds")?;
    let (generation, _shard) = rest.split_once("-s")?;
    generation.parse().ok()
}

fn encode_segment(
    shard: u32,
    generation: u64,
    epoch: Timestamp,
    records: &[(ProcessId, PeerDurable)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER + records.len() * RECORD_BYTES + 4);
    out.extend_from_slice(SEGMENT_MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    push_u32(&mut out, shard);
    push_u64(&mut out, generation);
    push_u64(&mut out, epoch.as_nanos());
    push_u64(&mut out, records.len() as u64);
    for (p, d) in records {
        push_u64(&mut out, u64::from(p.as_u32()));
        push_u64(&mut out, d.flags);
        push_u64(&mut out, d.highest_seq);
        push_u64(&mut out, d.last_hb_nanos);
        push_u64(&mut out, d.samples);
        push_u64(&mut out, d.mean_bits);
        push_u64(&mut out, d.var_bits);
        push_u64(&mut out, d.heartbeats_seen);
    }
    let crc = crc32(&out);
    push_u32(&mut out, crc);
    out
}

struct SegmentData {
    shard: u32,
    generation: u64,
    #[allow(dead_code)]
    epoch: Timestamp,
    crc: u32,
    records: Vec<(ProcessId, PeerDurable)>,
}

fn decode_segment(buf: &[u8]) -> Result<SegmentData, PersistError> {
    let corrupt = |why: &str| PersistError::Corrupt(format!("segment: {why}"));
    if buf.len() < SEGMENT_HEADER + 4 {
        return Err(corrupt("truncated header"));
    }
    if &buf[..8] != SEGMENT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if read_u32(buf, 8) != Some(FORMAT_VERSION) {
        return Err(corrupt("unsupported version"));
    }
    let count = read_u64(buf, 32).ok_or_else(|| corrupt("missing count"))?;
    let body = usize::try_from(count)
        .ok()
        .and_then(|c| c.checked_mul(RECORD_BYTES))
        .and_then(|b| b.checked_add(SEGMENT_HEADER))
        .ok_or_else(|| corrupt("count overflow"))?;
    let expected = body
        .checked_add(4)
        .ok_or_else(|| corrupt("count overflow"))?;
    if buf.len() != expected {
        return Err(corrupt("length prefix does not match file size"));
    }
    let stored_crc = read_u32(buf, body).ok_or_else(|| corrupt("missing checksum"))?;
    if crc32(&buf[..body]) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let shard = read_u32(buf, 12).ok_or_else(|| corrupt("missing shard"))?;
    let generation = read_u64(buf, 16).ok_or_else(|| corrupt("missing generation"))?;
    let epoch = read_u64(buf, 24).ok_or_else(|| corrupt("missing epoch"))?;
    let mut records = Vec::with_capacity(count as usize);
    let mut at = SEGMENT_HEADER;
    for _ in 0..count {
        let word = |k: usize| read_u64(buf, at + 8 * k).ok_or_else(|| corrupt("short record"));
        let peer = ProcessId::new(word(0)? as u32);
        records.push((
            peer,
            PeerDurable {
                flags: word(1)?,
                highest_seq: word(2)?,
                last_hb_nanos: word(3)?,
                samples: word(4)?,
                mean_bits: word(5)?,
                var_bits: word(6)?,
                heartbeats_seen: word(7)?,
            },
        ));
        at += RECORD_BYTES;
    }
    Ok(SegmentData {
        shard,
        generation,
        epoch: Timestamp::from_nanos(epoch),
        crc: stored_crc,
        records,
    })
}

/// One segment's entry in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    name: String,
    records: u64,
    crc: u32,
}

struct ManifestData {
    generation: u64,
    // Read by format tests; restore keys on per-segment epochs instead.
    #[allow(dead_code)]
    epoch: Timestamp,
    segments: Vec<ManifestEntry>,
}

fn encode_manifest(generation: u64, epoch: Timestamp, segments: &[ManifestEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MANIFEST_HEADER + segments.len() * 48 + 4);
    out.extend_from_slice(MANIFEST_MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    push_u32(&mut out, segments.len() as u32);
    push_u64(&mut out, generation);
    push_u64(&mut out, epoch.as_nanos());
    for entry in segments {
        push_u32(&mut out, entry.name.len() as u32);
        out.extend_from_slice(entry.name.as_bytes());
        push_u64(&mut out, entry.records);
        push_u32(&mut out, entry.crc);
    }
    let crc = crc32(&out);
    push_u32(&mut out, crc);
    out
}

fn decode_manifest(buf: &[u8]) -> Result<ManifestData, PersistError> {
    let corrupt = |why: &str| PersistError::Corrupt(format!("manifest: {why}"));
    if buf.len() < MANIFEST_HEADER + 4 {
        return Err(corrupt("truncated header"));
    }
    if &buf[..8] != MANIFEST_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if read_u32(buf, 8) != Some(FORMAT_VERSION) {
        return Err(corrupt("unsupported version"));
    }
    let body = buf.len() - 4;
    let stored_crc = read_u32(buf, body).ok_or_else(|| corrupt("missing checksum"))?;
    if crc32(&buf[..body]) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let count = read_u32(buf, 12).ok_or_else(|| corrupt("missing count"))?;
    let generation = read_u64(buf, 16).ok_or_else(|| corrupt("missing generation"))?;
    let epoch = read_u64(buf, 24).ok_or_else(|| corrupt("missing epoch"))?;
    let mut segments = Vec::with_capacity(count as usize);
    let mut at = MANIFEST_HEADER;
    for _ in 0..count {
        let name_len = read_u32(buf, at).ok_or_else(|| corrupt("short entry"))? as usize;
        at += 4;
        let name_bytes = buf
            .get(at..at + name_len)
            .ok_or_else(|| corrupt("short entry name"))?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| corrupt("entry name not utf-8"))?
            .to_string();
        at += name_len;
        let records = read_u64(buf, at).ok_or_else(|| corrupt("short entry"))?;
        at += 8;
        let crc = read_u32(buf, at).ok_or_else(|| corrupt("short entry"))?;
        at += 4;
        segments.push(ManifestEntry { name, records, crc });
    }
    if at != body {
        return Err(corrupt("trailing bytes after entries"));
    }
    Ok(ManifestData {
        generation,
        epoch: Timestamp::from_nanos(epoch),
        segments,
    })
}

// ---------------------------------------------------------------------------
// Checkpointer
// ---------------------------------------------------------------------------

/// Tuning for a [`Checkpointer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// How many complete manifest generations to retain (floored at 1).
    /// Two is the crash-safe minimum *plus* one fallback: if the newest
    /// generation's segments turn out corrupt, restore can still fall
    /// back a generation.
    pub keep_generations: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            keep_generations: 2,
        }
    }
}

/// What one [`Checkpointer::checkpoint`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The manifest generation installed.
    pub generation: u64,
    /// Peers dumped across all segments.
    pub peers: usize,
    /// Segments written (one per shard).
    pub segments: usize,
    /// Total bytes written, segments plus manifest.
    pub bytes: usize,
    /// Oldest shard epoch bound into the manifest.
    pub epoch: Timestamp,
    /// Clock time the dump took (zero under an unadvanced virtual clock).
    pub elapsed: Duration,
}

/// One peer recovered from a checkpoint, ready for bulk import.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestoredPeer {
    /// The monitored process.
    pub process: ProcessId,
    /// Its replay-rejection state, if one was recorded.
    pub highest_seq: Option<u64>,
    /// Its detector seed, if the detector persisted one.
    pub seed: Option<DetectorSeed>,
}

/// What [`Checkpointer::restore`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct Restored {
    /// The manifest generation restored from (`None`: no usable
    /// manifest — cold start).
    pub generation: Option<u64>,
    /// Every peer recovered from segments that passed their checksums.
    pub peers: Vec<RestoredPeer>,
    /// Segments rejected by checksum/structure and quarantined (their
    /// peers are absent from `peers`; the rest of the generation is
    /// restored regardless).
    pub segments_rejected: u64,
    /// Manifests skipped as corrupt while walking generations
    /// newest-first.
    pub manifests_rejected: u64,
    /// Clock time the restore took.
    pub elapsed: Duration,
}

/// Outcome of bulk-importing restored peers into a monitor or engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreImport {
    /// Peers re-watched.
    pub watched: u64,
    /// Peers whose detector was re-seeded with saved moments.
    pub seeded: u64,
    /// Peers dropped because their target shard was at capacity.
    pub capacity_rejected: u64,
}

struct PersistMetrics {
    dump_nanos: afd_obs::Histogram,
    restore_nanos: afd_obs::Histogram,
    bytes: afd_obs::Counter,
    segments_rejected: afd_obs::Counter,
    checkpoints: afd_obs::Counter,
    errors: afd_obs::Counter,
}

/// Dumps and restores checkpoint generations through a [`SegmentSink`].
///
/// The dump side reads only published epoch snapshots (via
/// [`SnapshotReader`]); the restore side walks manifest generations
/// newest-first and never imports bytes that fail their checksum.
pub struct Checkpointer<S> {
    sink: S,
    config: CheckpointConfig,
    /// Last generation this process wrote or observed on the sink.
    generation: Option<u64>,
    metrics: Option<PersistMetrics>,
}

impl<S> std::fmt::Debug for Checkpointer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("generation", &self.generation)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<S: SegmentSink> Checkpointer<S> {
    /// Creates a checkpointer over `sink`. Generation numbering continues
    /// above whatever the sink already holds (scanned lazily on first
    /// use), so restarts never clobber an earlier process's checkpoints.
    pub fn new(sink: S, config: CheckpointConfig) -> Self {
        Checkpointer {
            sink,
            config: CheckpointConfig {
                keep_generations: config.keep_generations.max(1),
            },
            generation: None,
            metrics: None,
        }
    }

    /// The sink, e.g. to inspect [`FaultySink::stats`].
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Unwraps into the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The last generation written or restored, if any.
    pub fn generation(&self) -> Option<u64> {
        self.generation
    }

    /// Binds `persist.*` counters and histograms so every subsequent
    /// checkpoint/restore records its cost into `registry`.
    pub fn bind_metrics(&mut self, registry: &afd_obs::Registry) {
        let nanos_bounds = &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];
        self.metrics = Some(PersistMetrics {
            dump_nanos: registry.histogram("persist.dump_nanos", nanos_bounds),
            restore_nanos: registry.histogram("persist.restore_nanos", nanos_bounds),
            bytes: registry.counter("persist.bytes"),
            segments_rejected: registry.counter("persist.segments_rejected"),
            checkpoints: registry.counter("persist.checkpoints"),
            errors: registry.counter("persist.errors"),
        });
    }

    /// Highest generation present on the sink, parsed from names.
    fn latest_on_sink(&self) -> Result<Option<u64>, PersistError> {
        let names = self.sink.list()?;
        Ok(names
            .iter()
            .filter_map(|n| parse_manifest_name(n).or_else(|| parse_segment_generation(n)))
            .max())
    }

    /// Dumps every shard's published durable table as a new checkpoint
    /// generation: one CRC-trailed segment per shard, then the manifest
    /// that makes the generation visible, then garbage-collection of
    /// generations beyond [`CheckpointConfig::keep_generations`].
    ///
    /// Because the manifest is installed *last* (and atomically), a crash
    /// anywhere in the dump leaves the previous generation's manifest as
    /// the newest complete one — partial segments of the dead generation
    /// are unreferenced garbage, collected by the next successful dump.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the sink fails; the snapshot read side
    /// cannot fail.
    pub fn checkpoint<C: Clock>(
        &mut self,
        reader: &SnapshotReader,
        clock: &C,
    ) -> Result<CheckpointReport, PersistError> {
        let started = clock.now();
        let result = self.checkpoint_inner(reader, started);
        let elapsed = clock.now().saturating_duration_since(started);
        if let Some(m) = &self.metrics {
            match &result {
                Ok(report) => {
                    m.dump_nanos.observe(elapsed.as_nanos() as f64);
                    m.bytes.add(report.bytes as u64);
                    m.checkpoints.inc();
                }
                Err(_) => m.errors.inc(),
            }
        }
        result.map(|mut report| {
            report.elapsed = elapsed;
            report
        })
    }

    fn checkpoint_inner(
        &mut self,
        reader: &SnapshotReader,
        _started: Timestamp,
    ) -> Result<CheckpointReport, PersistError> {
        let generation = match self.generation {
            Some(g) => g + 1,
            None => self.latest_on_sink()?.map_or(1, |g| g + 1),
        };
        let mut scratch = Vec::new();
        let mut entries = Vec::new();
        let mut peers = 0usize;
        let mut bytes = 0usize;
        let mut epoch = Timestamp::MAX;
        for shard in 0..reader.shard_count() {
            let Some(at) = reader.durable_shard(shard, &mut scratch) else {
                break;
            };
            epoch = epoch.min(at);
            let name = segment_name(generation, shard);
            let encoded = encode_segment(shard as u32, generation, at, &scratch);
            let crc = read_u32(&encoded, encoded.len() - 4).unwrap_or(0);
            self.sink.put(&name, &encoded)?;
            peers += scratch.len();
            bytes += encoded.len();
            entries.push(ManifestEntry {
                name,
                records: scratch.len() as u64,
                crc,
            });
        }
        if epoch == Timestamp::MAX {
            epoch = Timestamp::ZERO;
        }
        let manifest = encode_manifest(generation, epoch, &entries);
        bytes += manifest.len();
        // Installing the manifest is the commit point of the generation.
        self.sink.put(&manifest_name(generation), &manifest)?;
        self.generation = Some(generation);
        self.collect_garbage(generation);
        Ok(CheckpointReport {
            generation,
            peers,
            segments: entries.len(),
            bytes,
            epoch,
            elapsed: Duration::ZERO,
        })
    }

    /// Deletes generations older than the retention window. Best effort:
    /// a delete failure leaves garbage, never breaks a checkpoint.
    fn collect_garbage(&mut self, newest: u64) {
        let cutoff = newest.saturating_sub(self.config.keep_generations.max(1) - 1);
        let Ok(names) = self.sink.list() else {
            return;
        };
        for name in names {
            let generation = parse_manifest_name(&name).or_else(|| parse_segment_generation(&name));
            if let Some(g) = generation {
                if g < cutoff {
                    let _ = self.sink.delete(&name);
                }
            }
        }
    }

    /// Restores from the newest complete manifest generation.
    ///
    /// Walks manifests newest-first; a manifest that fails its checksum is
    /// skipped (counted in [`Restored::manifests_rejected`]) and the walk
    /// falls back a generation. Within the chosen generation, each segment
    /// is verified against both its own CRC trailer and the CRC recorded
    /// in the manifest; failures are quarantined — skipped and counted in
    /// [`Restored::segments_rejected`] (`persist.segments_rejected`) —
    /// while every passing segment is restored. Corrupt bytes are never
    /// silently imported.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] only if the sink itself fails;
    /// corruption and absence degrade to a (possibly empty) [`Restored`].
    pub fn restore<C: Clock>(&mut self, clock: &C) -> Result<Restored, PersistError> {
        let started = clock.now();
        let result = self.restore_inner();
        let elapsed = clock.now().saturating_duration_since(started);
        if let Some(m) = &self.metrics {
            match &result {
                Ok(restored) => {
                    m.restore_nanos.observe(elapsed.as_nanos() as f64);
                    m.segments_rejected.add(restored.segments_rejected);
                }
                Err(_) => m.errors.inc(),
            }
        }
        result.map(|mut restored| {
            restored.elapsed = elapsed;
            restored
        })
    }

    fn restore_inner(&mut self) -> Result<Restored, PersistError> {
        let names = self.sink.list()?;
        // Continue numbering above everything present — including a
        // possibly-corrupt newer generation we fall back past, so the
        // next checkpoint never collides with its leftovers.
        self.generation = names
            .iter()
            .filter_map(|n| parse_manifest_name(n).or_else(|| parse_segment_generation(n)))
            .max()
            .or(self.generation);
        let mut generations: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_manifest_name(n))
            .collect();
        generations.sort_unstable();
        let mut segments_rejected = 0u64;
        let mut manifests_rejected = 0u64;
        for &generation in generations.iter().rev() {
            let Some(bytes) = self.sink.get(&manifest_name(generation))? else {
                continue;
            };
            let manifest = match decode_manifest(&bytes) {
                Ok(m) if m.generation == generation => m,
                _ => {
                    manifests_rejected += 1;
                    continue;
                }
            };
            let mut peers = Vec::new();
            for entry in &manifest.segments {
                let Ok(Some(seg_bytes)) = self.sink.get(&entry.name) else {
                    segments_rejected += 1;
                    continue;
                };
                match decode_segment(&seg_bytes) {
                    Ok(seg)
                        if seg.generation == generation
                            && seg.crc == entry.crc
                            && seg.records.len() as u64 == entry.records =>
                    {
                        let _ = seg.shard; // records re-route by current shard count
                        peers.extend(seg.records.iter().map(|&(process, d)| RestoredPeer {
                            process,
                            highest_seq: d.highest(),
                            seed: d.seed(),
                        }));
                    }
                    _ => segments_rejected += 1,
                }
            }
            return Ok(Restored {
                generation: Some(generation),
                peers,
                segments_rejected,
                manifests_rejected,
                elapsed: Duration::ZERO,
            });
        }
        Ok(Restored {
            generation: None,
            peers: Vec::new(),
            segments_rejected,
            manifests_rejected,
            elapsed: Duration::ZERO,
        })
    }
}

// ---------------------------------------------------------------------------
// CheckpointDaemon: periodic cadence for FreeRunning engines
// ---------------------------------------------------------------------------

/// A background thread checkpointing a [`SnapshotReader`] on a fixed
/// cadence — the FreeRunning-mode counterpart of calling
/// [`checkpoint`](crate::engine::ParallelShardEngine::checkpoint)
/// between Lockstep ticks. Reads go through the epoch snapshots only, so
/// the daemon never contends with intake or workers.
pub struct CheckpointDaemon<S> {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<Checkpointer<S>>,
}

impl<S> std::fmt::Debug for CheckpointDaemon<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointDaemon").finish_non_exhaustive()
    }
}

impl<S: SegmentSink + Send + 'static> CheckpointDaemon<S> {
    /// Spawns the daemon: every `every` of `clock` time it dumps a new
    /// generation through `ckpt`. Dump errors are absorbed (counted via
    /// `persist.errors` when metrics are bound) — a failing disk must
    /// not take the monitoring plane down with it.
    pub fn spawn<C: Clock + Send + 'static>(
        reader: SnapshotReader,
        mut ckpt: Checkpointer<S>,
        clock: C,
        every: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        // The first deadline is fixed before the thread exists, so a
        // caller that advances a virtual clock immediately after spawn
        // cannot race the daemon's notion of "now".
        let mut due = clock.now().saturating_add(every);
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::SeqCst) {
                let now = clock.now();
                if now >= due {
                    let _ = ckpt.checkpoint(&reader, &clock);
                    due = now.saturating_add(every);
                } else {
                    std::thread::yield_now();
                }
            }
            ckpt
        });
        CheckpointDaemon { stop, handle }
    }

    /// Stops the daemon and returns its checkpointer (`None` only if the
    /// daemon thread itself died, which the loop body cannot do).
    pub fn stop(self) -> Option<Checkpointer<S>> {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn durable(seq: u64, samples: u64, mean: f64, var: f64) -> PeerDurable {
        PeerDurable::from_state(
            Some(DetectorSeed {
                last_heartbeat: Some(Timestamp::from_secs(seq)),
                samples,
                mean,
                population_variance: var,
                heartbeats_seen: seq,
            }),
            Some(seq),
        )
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn segment_roundtrip_preserves_records() {
        let records = vec![
            (ProcessId::new(1), durable(5, 10, 1.0, 0.25)),
            (ProcessId::new(9), durable(7, 3, 2.5, 0.0)),
        ];
        let bytes = encode_segment(3, 42, Timestamp::from_secs(100), &records);
        let seg = decode_segment(&bytes).unwrap();
        assert_eq!(seg.shard, 3);
        assert_eq!(seg.generation, 42);
        assert_eq!(seg.epoch, Timestamp::from_secs(100));
        assert_eq!(seg.records, records);
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let records = vec![(ProcessId::new(1), durable(5, 10, 1.0, 0.25))];
        let good = encode_segment(0, 1, Timestamp::from_secs(1), &records);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_segment(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // Truncation at every length is also detected.
        for len in 0..good.len() {
            assert!(decode_segment(&good[..len]).is_err(), "truncate to {len}");
        }
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let entries = vec![
            ManifestEntry {
                name: segment_name(7, 0),
                records: 3,
                crc: 0xDEAD_BEEF,
            },
            ManifestEntry {
                name: segment_name(7, 1),
                records: 0,
                crc: 1,
            },
        ];
        let bytes = encode_manifest(7, Timestamp::from_secs(9), &entries);
        let m = decode_manifest(&bytes).unwrap();
        assert_eq!(m.generation, 7);
        assert_eq!(m.epoch, Timestamp::from_secs(9));
        assert_eq!(m.segments, entries);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_manifest(&bad).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn name_parsing_roundtrips() {
        assert_eq!(parse_manifest_name(&manifest_name(12)), Some(12));
        assert_eq!(parse_segment_generation(&segment_name(12, 4)), Some(12));
        assert_eq!(parse_manifest_name("seg-g1-s0.afds"), None);
        assert_eq!(parse_segment_generation("manifest-g1.afdm"), None);
        assert_eq!(parse_segment_generation("seg-gX-s0.afds"), None);
    }

    #[test]
    fn mem_sink_put_get_list_delete() {
        let mut sink = MemSink::new();
        assert!(sink.is_empty());
        sink.put("b", &[2]).unwrap();
        sink.put("a", &[1]).unwrap();
        assert_eq!(sink.get("a").unwrap(), Some(vec![1]));
        assert_eq!(sink.get("missing").unwrap(), None);
        assert_eq!(sink.list().unwrap(), vec!["a", "b"]);
        sink.delete("a").unwrap();
        sink.delete("a").unwrap(); // idempotent
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn dir_sink_installs_atomically_named_files() {
        let root = std::env::temp_dir().join(format!("afd-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut sink = DirSink::new(&root).unwrap();
        sink.put("seg-g1-s0.afds", b"hello").unwrap();
        sink.put("seg-g1-s0.afds", b"world").unwrap(); // replace
        assert_eq!(sink.get("seg-g1-s0.afds").unwrap(), Some(b"world".to_vec()));
        assert_eq!(sink.list().unwrap(), vec!["seg-g1-s0.afds"]);
        assert!(sink.put("../escape", b"x").is_err());
        assert!(sink.put("a/b", b"x").is_err());
        sink.delete("seg-g1-s0.afds").unwrap();
        assert_eq!(sink.get("seg-g1-s0.afds").unwrap(), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn faulty_sink_drop_install_leaves_nothing() {
        let plan = FaultySinkPlan::new().with_drop_install(1.0);
        let mut sink = FaultySink::new(MemSink::new(), plan, 1);
        sink.put("x", b"data").unwrap();
        assert_eq!(sink.get("x").unwrap(), None);
        assert_eq!(sink.stats().dropped_installs, 1);
    }

    #[test]
    fn faulty_sink_corruptions_are_deterministic_and_filtered() {
        let plan = FaultySinkPlan::new().with_bit_flip(1.0);
        let run = |seed: u64| {
            let mut sink = FaultySink::new(MemSink::new(), plan, seed).with_filter("target");
            sink.put("target-1", &[0u8; 16]).unwrap();
            sink.put("clean-1", &[0u8; 16]).unwrap();
            (
                sink.get("target-1").unwrap().unwrap(),
                sink.get("clean-1").unwrap().unwrap(),
                sink.stats(),
            )
        };
        let (a1, c1, s1) = run(7);
        let (a2, _, _) = run(7);
        assert_eq!(a1, a2, "same seed, same corruption");
        assert_ne!(a1, vec![0u8; 16], "targeted put was corrupted");
        assert_eq!(c1, vec![0u8; 16], "filtered-out put untouched");
        assert_eq!(s1.bit_flips, 1);
        assert_eq!(s1.puts, 2);
    }

    #[test]
    fn faulty_sink_short_and_torn_writes() {
        let mut short = FaultySink::new(
            MemSink::new(),
            FaultySinkPlan::new().with_short_write(1.0),
            3,
        );
        short.put("s", &[7u8; 64]).unwrap();
        let got = short.get("s").unwrap().unwrap();
        assert!(got.len() < 64, "short write must truncate");
        assert!(got.iter().all(|&b| b == 7), "prefix is intact");

        let mut torn = FaultySink::new(
            MemSink::new(),
            FaultySinkPlan::new().with_torn_write(1.0),
            3,
        );
        torn.put("t", &[7u8; 64]).unwrap();
        let got = torn.get("t").unwrap().unwrap();
        assert_eq!(got.len(), 64, "torn write keeps the length");
        assert_ne!(got, vec![7u8; 64], "tail is garbage");
    }

    #[test]
    fn restore_empty_sink_is_a_clean_cold_start() {
        let clock = VirtualClock::new();
        let mut ckpt = Checkpointer::new(MemSink::new(), CheckpointConfig::default());
        let restored = ckpt.restore(&clock).unwrap();
        assert_eq!(restored.generation, None);
        assert!(restored.peers.is_empty());
        assert_eq!(restored.segments_rejected, 0);
    }

    #[test]
    fn export_metrics_names_are_bound() {
        let registry = afd_obs::Registry::new();
        let mut ckpt = Checkpointer::new(MemSink::new(), CheckpointConfig::default());
        ckpt.bind_metrics(&registry);
        let clock = VirtualClock::new();
        let _ = ckpt.restore(&clock).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("persist.segments_rejected"), Some(0));
        assert!(snap.get("persist.restore_nanos").is_some());
    }
}
