//! A sharded many-peer monitor with lock-free suspicion reads.
//!
//! [`RuntimeMonitor`](crate::monitor::RuntimeMonitor) keeps every watched
//! process behind one `&mut self`, which is exactly right for tens of
//! peers and exactly wrong for ten thousand: every `level()` query
//! contends with intake, and a snapshot walks the whole detector map
//! while frames queue up. [`ShardedMonitor`] splits the watch set across
//! `N` shards (hash of the [`ProcessId`]), drains the transport **once**
//! per [`tick`](ShardedMonitor::tick), dispatches decoded heartbeats to
//! shards in per-shard batches, and then *publishes* each shard's
//! suspicion levels into a double-buffered epoch snapshot that
//! [`SnapshotReader`]s consume without taking any lock — readers never
//! block intake, and intake never blocks readers.
//!
//! # Epoch snapshots
//!
//! Each shard owns a [`ShardCell`]: two banks of atomics (peer ids and
//! suspicion levels as `f64` bits) plus a `front` selector. The tick
//! writer fills the *back* bank under a seqlock word (odd while writing),
//! then flips `front`. Readers load `front`, verify the seqlock word is
//! even and unchanged around their reads, and retry on a straddle. The
//! writer is wait-free (it never observes readers); readers are
//! obstruction-free (they retry only if a publish overlaps their read).
//! Everything is plain atomics — no locks, no unsafe code.
//!
//! Published levels are as of the last tick, so a reader's view lags real
//! time by at most one tick interval; callers that need exact-`now`
//! values use the `&mut` paths ([`ShardedMonitor::level`] /
//! [`ShardedMonitor::snapshot`]), which evaluate detectors directly.
//!
//! # Equivalence
//!
//! With `shards = 1` the intake pipeline is behaviourally identical to
//! `RuntimeMonitor`: frames are stamped per decode in drain order and the
//! accept path (serial-number freshness, then watch check, then detector
//! update) is the same code shape — property tests in `tests/sharded.rs`
//! assert equality against a `RuntimeMonitor` fed the same frames.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use afd_core::accrual::{AccrualFailureDetector, DetectorSeed};
use afd_core::process::ProcessId;
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::{Duration, Timestamp};
use afd_detectors::service::MonitoringService;

use crate::clock::Clock;
use crate::error::TransportError;
use crate::monitor::MonitorStats;
use crate::seq::{classify, SeqVerdict};
use crate::transport::{FrameBatch, Transport};
use crate::wire::{Heartbeat, WireDecoder};

/// Slots in the reusable intake arena drained per
/// [`recv_batch`](Transport::recv_batch) call.
pub(crate) const INTAKE_BATCH_SLOTS: usize = 512;

pub(crate) type DetectorFactory<D> = Box<dyn FnMut(ProcessId) -> D + Send>;

/// Fibonacci-hashes a process id onto a shard index. A multiplicative
/// hash (rather than `id % shards`) keeps sequentially assigned ids from
/// striding into the same shard when the shard count shares a factor
/// with the id allocation pattern.
#[inline]
pub(crate) fn shard_index(process: ProcessId, shards: usize) -> usize {
    let h = u64::from(process.as_u32()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % shards.max(1)
}

/// Sizing for a [`ShardedMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards the watch set is partitioned into (floored at 1).
    pub shards: usize,
    /// Maximum watched processes per shard. Snapshot banks are fixed-size
    /// atomic arrays (they are shared with lock-free readers and cannot
    /// grow), so capacity is declared up front; [`ShardedMonitor::watch`]
    /// fails with [`ShardCapacityError`] when a shard is full.
    pub slots_per_shard: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 8,
            slots_per_shard: 4096,
        }
    }
}

/// A shard refused a new watch because its snapshot bank is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCapacityError {
    /// The shard that is at capacity.
    pub shard: usize,
    /// Its configured slot count.
    pub capacity: usize,
}

impl fmt::Display for ShardCapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} is at capacity ({} watched processes); raise \
             ShardConfig::slots_per_shard or add shards",
            self.shard, self.capacity
        )
    }
}

impl std::error::Error for ShardCapacityError {}

/// What one [`tick`](ShardedMonitor::tick) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickReport {
    /// Frames drained from the transport (including corrupt ones).
    pub drained: usize,
    /// Heartbeats accepted into detectors.
    pub accepted: usize,
    /// Largest per-shard dispatch batch this tick.
    pub max_batch: usize,
    /// Clock time spent dispatching batches and publishing snapshots
    /// (zero under a virtual clock that nobody advances).
    pub dispatch: Duration,
}

/// Aggregated counters for a [`ShardedMonitor`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardedStats {
    /// Counters summed across shards; `corrupt` counts frames that failed
    /// decoding *before* any shard was chosen, so it appears only here.
    pub totals: MonitorStats,
    /// Per-shard intake counters (each shard's `corrupt` is always 0).
    pub per_shard: Vec<MonitorStats>,
    /// Watched processes per shard, for balance inspection.
    pub peers_per_shard: Vec<usize>,
    /// Ticks executed so far.
    pub ticks: u64,
}

/// Bit in [`PeerDurable::flags`]: the detector produced a seed.
pub(crate) const DURABLE_HAS_SEED: u64 = 1;
/// Bit in [`PeerDurable::flags`]: the seed carries a last-heartbeat time.
pub(crate) const DURABLE_HAS_LAST_HB: u64 = 1 << 1;
/// Bit in [`PeerDurable::flags`]: a highest sequence number was recorded.
pub(crate) const DURABLE_HAS_SEQ: u64 = 1 << 2;

/// The durable state of one published peer, flattened to seven `u64`
/// words so it can cross the epoch-snapshot banks as plain atomics (and
/// land byte-for-byte in a checkpoint segment record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PeerDurable {
    /// `DURABLE_*` presence bits.
    pub(crate) flags: u64,
    /// Highest heartbeat sequence accepted (replay-rejection state).
    pub(crate) highest_seq: u64,
    /// Last heartbeat arrival, in nanoseconds.
    pub(crate) last_hb_nanos: u64,
    /// Inter-arrival samples in the detector window.
    pub(crate) samples: u64,
    /// Window mean, as `f64` bits.
    pub(crate) mean_bits: u64,
    /// Window population variance, as `f64` bits.
    pub(crate) var_bits: u64,
    /// Auxiliary detector counter (see [`DetectorSeed::heartbeats_seen`]).
    pub(crate) heartbeats_seen: u64,
}

impl PeerDurable {
    /// Flattens a detector seed plus replay state into one record.
    pub(crate) fn from_state(seed: Option<DetectorSeed>, highest_seq: Option<u64>) -> Self {
        let mut flags = 0u64;
        if highest_seq.is_some() {
            flags |= DURABLE_HAS_SEQ;
        }
        let mut last_hb_nanos = 0;
        let mut samples = 0;
        let mut mean_bits = 0;
        let mut var_bits = 0;
        let mut heartbeats_seen = 0;
        if let Some(seed) = seed {
            flags |= DURABLE_HAS_SEED;
            if let Some(last) = seed.last_heartbeat {
                flags |= DURABLE_HAS_LAST_HB;
                last_hb_nanos = last.as_nanos();
            }
            samples = seed.samples;
            mean_bits = seed.mean.to_bits();
            var_bits = seed.population_variance.to_bits();
            heartbeats_seen = seed.heartbeats_seen;
        }
        PeerDurable {
            flags,
            highest_seq: highest_seq.unwrap_or(0),
            last_hb_nanos,
            samples,
            mean_bits,
            var_bits,
            heartbeats_seen,
        }
    }

    /// The detector seed carried by this record, if any.
    pub(crate) fn seed(&self) -> Option<DetectorSeed> {
        if self.flags & DURABLE_HAS_SEED == 0 {
            return None;
        }
        let last_heartbeat = if self.flags & DURABLE_HAS_LAST_HB != 0 {
            Some(Timestamp::from_nanos(self.last_hb_nanos))
        } else {
            None
        };
        Some(DetectorSeed {
            last_heartbeat,
            samples: self.samples,
            mean: f64::from_bits(self.mean_bits),
            population_variance: f64::from_bits(self.var_bits),
            heartbeats_seen: self.heartbeats_seen,
        })
    }

    /// The recorded highest sequence number, if any.
    pub(crate) fn highest(&self) -> Option<u64> {
        if self.flags & DURABLE_HAS_SEQ != 0 {
            Some(self.highest_seq)
        } else {
            None
        }
    }
}

/// The durable columns of a [`Bank`]: per-slot detector seeds and replay
/// state, guarded by the same seqlock as the (peer, level) table so a
/// checkpointer reads a view consistent with the published epoch — and
/// never touches worker-owned detector state.
struct DurableBank {
    flags: Vec<AtomicU64>,
    highest_seq: Vec<AtomicU64>,
    last_hb: Vec<AtomicU64>,
    samples: Vec<AtomicU64>,
    mean_bits: Vec<AtomicU64>,
    var_bits: Vec<AtomicU64>,
    heartbeats_seen: Vec<AtomicU64>,
}

impl DurableBank {
    fn new(slots: usize) -> Self {
        let col = || (0..slots).map(|_| AtomicU64::new(0)).collect();
        DurableBank {
            flags: col(),
            highest_seq: col(),
            last_hb: col(),
            samples: col(),
            mean_bits: col(),
            var_bits: col(),
            heartbeats_seen: col(),
        }
    }

    /// Plain store of one record; callers hold the bank's seqlock odd.
    fn store(&self, i: usize, d: &PeerDurable) {
        self.flags[i].store(d.flags, Ordering::Relaxed);
        self.highest_seq[i].store(d.highest_seq, Ordering::Relaxed);
        self.last_hb[i].store(d.last_hb_nanos, Ordering::Relaxed);
        self.samples[i].store(d.samples, Ordering::Relaxed);
        self.mean_bits[i].store(d.mean_bits, Ordering::Relaxed);
        self.var_bits[i].store(d.var_bits, Ordering::Relaxed);
        self.heartbeats_seen[i].store(d.heartbeats_seen, Ordering::Relaxed);
    }

    /// Plain load of one record; callers re-verify the seqlock afterwards.
    fn load(&self, i: usize) -> PeerDurable {
        PeerDurable {
            flags: self.flags[i].load(Ordering::Relaxed),
            highest_seq: self.highest_seq[i].load(Ordering::Relaxed),
            last_hb_nanos: self.last_hb[i].load(Ordering::Relaxed),
            samples: self.samples[i].load(Ordering::Relaxed),
            mean_bits: self.mean_bits[i].load(Ordering::Relaxed),
            var_bits: self.var_bits[i].load(Ordering::Relaxed),
            heartbeats_seen: self.heartbeats_seen[i].load(Ordering::Relaxed),
        }
    }
}

/// One bank of a [`ShardCell`]: a published (peer, level) table plus the
/// seqlock word guarding it.
struct Bank {
    /// Seqlock: odd while the writer fills this bank.
    wseq: AtomicU64,
    /// Number of live slots.
    len: AtomicUsize,
    /// Publish timestamp, in nanoseconds.
    published_at: AtomicU64,
    /// Peer ids, ascending (service snapshots iterate a `BTreeMap`), so
    /// readers can binary-search.
    peers: Vec<AtomicU64>,
    /// Suspicion levels as `f64` bit patterns, parallel to `peers`.
    levels: Vec<AtomicU64>,
    /// Durable per-peer columns, parallel to `peers`.
    durable: DurableBank,
}

impl Bank {
    fn new(slots: usize) -> Self {
        Bank {
            wseq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            published_at: AtomicU64::new(0),
            peers: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            levels: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            durable: DurableBank::new(slots),
        }
    }
}

/// A double-buffered epoch snapshot: the tick writer publishes into the
/// back bank and flips `front`; readers verify the seqlock around their
/// reads and retry on a straddle.
pub(crate) struct ShardCell {
    front: AtomicUsize,
    banks: [Bank; 2],
}

impl ShardCell {
    pub(crate) fn new(slots: usize) -> Self {
        ShardCell {
            front: AtomicUsize::new(0),
            banks: [Bank::new(slots), Bank::new(slots)],
        }
    }

    /// Publishes `entries` (ascending by id, at most `slots` long) as the
    /// new front bank, together with the parallel `durable` records.
    /// Single writer: callers hold `&mut ShardedMonitor`.
    fn publish(
        &self,
        entries: &[(ProcessId, SuspicionLevel)],
        durable: &[PeerDurable],
        at: Timestamp,
    ) {
        let back = (self.front.load(Ordering::Relaxed) & 1) ^ 1;
        let bank = &self.banks[back];
        // Seqlock enter: mark odd, then fence so slot writes cannot be
        // observed before the mark. Plain stores suffice — the tick
        // writer is the only writer.
        let s = bank.wseq.load(Ordering::Relaxed);
        bank.wseq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let n = entries.len().min(bank.peers.len());
        let blank = PeerDurable::default();
        for (i, ((slot_p, slot_l), (p, lvl))) in
            bank.peers.iter().zip(&bank.levels).zip(entries).enumerate()
        {
            slot_p.store(u64::from(p.as_u32()), Ordering::Relaxed);
            slot_l.store(lvl.value().to_bits(), Ordering::Relaxed);
            bank.durable.store(i, durable.get(i).unwrap_or(&blank));
        }
        bank.len.store(n, Ordering::Relaxed);
        bank.published_at.store(at.as_nanos(), Ordering::Relaxed);
        // Seqlock exit (even again): release-orders every slot write
        // before the mark readers synchronize with.
        bank.wseq.store(s.wrapping_add(2), Ordering::Release);
        self.front.store(back, Ordering::Release);
    }

    /// Runs `read` against a consistent front bank, retrying while a
    /// publish straddles the attempt.
    fn with_consistent<R>(&self, mut read: impl FnMut(&Bank, usize) -> R) -> R {
        loop {
            let f = self.front.load(Ordering::Acquire) & 1;
            let bank = &self.banks[f];
            let s1 = bank.wseq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let len = bank.len.load(Ordering::Relaxed).min(bank.peers.len());
            let out = read(bank, len);
            // Acquire fence keeps the slot loads above the re-check.
            fence(Ordering::Acquire);
            if bank.wseq.load(Ordering::Relaxed) == s1 {
                return out;
            }
            std::hint::spin_loop();
        }
    }

    /// Binary-searches the published table for `process`.
    fn lookup(&self, process: ProcessId) -> Option<SuspicionLevel> {
        let target = u64::from(process.as_u32());
        self.with_consistent(|bank, len| {
            let mut lo = 0usize;
            let mut hi = len;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if bank.peers[mid].load(Ordering::Relaxed) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo < len && bank.peers[lo].load(Ordering::Relaxed) == target {
                let bits = bank.levels[lo].load(Ordering::Relaxed);
                Some(SuspicionLevel::clamped(f64::from_bits(bits)))
            } else {
                None
            }
        })
    }

    /// Copies the whole published table (ascending by id).
    fn read_all(&self, out: &mut Vec<(ProcessId, SuspicionLevel)>) -> Timestamp {
        self.with_consistent(|bank, len| {
            out.clear();
            for (slot_p, slot_l) in bank.peers.iter().zip(&bank.levels).take(len) {
                let p = ProcessId::new(slot_p.load(Ordering::Relaxed) as u32);
                let lvl = SuspicionLevel::clamped(f64::from_bits(slot_l.load(Ordering::Relaxed)));
                out.push((p, lvl));
            }
            Timestamp::from_nanos(bank.published_at.load(Ordering::Relaxed))
        })
    }

    /// Copies the whole published durable table (ascending by id),
    /// returning the epoch it was published at. Consistency comes from
    /// the same seqlock as [`read_all`](Self::read_all): the records are
    /// exactly those of one publish, never a mix of two epochs.
    pub(crate) fn read_durable(&self, out: &mut Vec<(ProcessId, PeerDurable)>) -> Timestamp {
        self.with_consistent(|bank, len| {
            out.clear();
            for (i, slot_p) in bank.peers.iter().take(len).enumerate() {
                let p = ProcessId::new(slot_p.load(Ordering::Relaxed) as u32);
                out.push((p, bank.durable.load(i)));
            }
            Timestamp::from_nanos(bank.published_at.load(Ordering::Relaxed))
        })
    }
}

/// A cloneable, lock-free view of the last published epoch snapshots.
///
/// Readers never block the tick writer and never take a lock; each read
/// retries only if it overlaps a publish of the same shard (two flips in
/// one read — the writer alternates banks, so a single publish never
/// invalidates the bank a reader is on).
#[derive(Clone)]
pub struct SnapshotReader {
    cells: Arc<Vec<Arc<ShardCell>>>,
}

impl fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("shards", &self.cells.len())
            .finish()
    }
}

impl SnapshotReader {
    /// Builds a reader over `cells` — shared with
    /// [`ParallelShardEngine`](crate::engine::ParallelShardEngine), whose
    /// workers publish into the same double-buffered cells.
    pub(crate) fn from_cells(cells: Arc<Vec<Arc<ShardCell>>>) -> Self {
        SnapshotReader { cells }
    }

    /// The published suspicion level of `process`, as of that shard's
    /// last tick (`None` if unwatched at publish time).
    pub fn level(&self, process: ProcessId) -> Option<SuspicionLevel> {
        let idx = shard_index(process, self.cells.len());
        self.cells.get(idx)?.lookup(process)
    }

    /// The union of every shard's published table, ascending by id.
    pub fn snapshot(&self) -> Vec<(ProcessId, SuspicionLevel)> {
        // lint:allow(no-alloc-in-hot-path, owned-snapshot API; callers on the query path, not the intake path)
        let mut out = Vec::new();
        // lint:allow(no-alloc-in-hot-path, owned-snapshot API; callers on the query path, not the intake path)
        let mut scratch = Vec::new();
        for cell in self.cells.iter() {
            cell.read_all(&mut scratch);
            out.append(&mut scratch);
        }
        out.sort_unstable_by_key(|&(p, _)| p);
        out
    }

    /// The oldest publish timestamp across shards: every published level
    /// is at least this fresh. `Timestamp::ZERO` before the first tick.
    pub fn published_at(&self) -> Timestamp {
        // lint:allow(no-alloc-in-hot-path, query-path scratch; not on the frame intake path)
        let mut scratch = Vec::new();
        self.cells
            .iter()
            .map(|cell| cell.read_all(&mut scratch))
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Number of shards behind this reader.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// Copies shard `shard`'s published durable table into `out`,
    /// returning its publish epoch (`None` for an out-of-range shard).
    ///
    /// This is the accessor the checkpointer dumps through: it reads only
    /// the double-buffered epoch banks, so the dump never touches
    /// worker-owned detector state and runs entirely off the hot path.
    pub(crate) fn durable_shard(
        &self,
        shard: usize,
        out: &mut Vec<(ProcessId, PeerDurable)>,
    ) -> Option<Timestamp> {
        self.cells.get(shard).map(|cell| cell.read_durable(out))
    }
}

/// One shard: a detector service plus its freshness state and counters.
/// Crate-visible so [`ParallelShardEngine`](crate::engine::ParallelShardEngine)
/// workers can own shards and run the *same* accept/publish code the
/// single-threaded monitor runs — equivalence by construction.
pub(crate) struct Shard<D> {
    pub(crate) service: MonitoringService<D, DetectorFactory<D>>,
    pub(crate) highest_seq: BTreeMap<ProcessId, u64>,
    pub(crate) stats: MonitorStats,
    pub(crate) cell: Arc<ShardCell>,
    /// Reusable publish buffer: (peer, level) rows for the epoch banks.
    snap_scratch: Vec<(ProcessId, SuspicionLevel)>,
    /// Reusable publish buffer: parallel durable rows.
    durable_scratch: Vec<PeerDurable>,
}

impl<D: AccrualFailureDetector> Shard<D> {
    /// Builds an empty shard publishing into `cell`.
    pub(crate) fn new(factory: DetectorFactory<D>, cell: Arc<ShardCell>) -> Self {
        Shard {
            service: MonitoringService::new(factory),
            highest_seq: BTreeMap::new(),
            stats: MonitorStats::default(),
            cell,
            // lint:allow(no-alloc-in-hot-path, one-time construction; both scratch buffers are reused across every publish)
            snap_scratch: Vec::new(),
            // lint:allow(no-alloc-in-hot-path, one-time construction; both scratch buffers are reused across every publish)
            durable_scratch: Vec::new(),
        }
    }

    /// Algorithm 4, lines 8–10 — the same accept path as
    /// [`RuntimeMonitor`](crate::monitor::RuntimeMonitor), against this
    /// shard's own freshness map.
    pub(crate) fn accept(&mut self, hb: Heartbeat, now: Timestamp) -> bool {
        if let Some(&highest) = self.highest_seq.get(&hb.sender) {
            match classify(hb.seq, highest) {
                SeqVerdict::Fresh => {}
                SeqVerdict::Duplicate => {
                    self.stats.duplicate += 1;
                    return false;
                }
                SeqVerdict::Stale => {
                    self.stats.stale += 1;
                    return false;
                }
            }
        }
        if !self.service.heartbeat(hb.sender, now) {
            self.stats.unwatched += 1;
            return false;
        }
        self.highest_seq.insert(hb.sender, hb.seq);
        self.stats.accepted += 1;
        true
    }

    /// Publishes the shard's levels *and* durable rows into its epoch
    /// cell. The durable rows ride the same seqlocked publish, so a
    /// checkpointer reading the cell gets detector seeds and replay state
    /// consistent with the published levels — without ever borrowing the
    /// (worker-owned) detectors themselves.
    pub(crate) fn publish(&mut self, now: Timestamp) {
        self.snap_scratch.clear();
        self.durable_scratch.clear();
        let snap = &mut self.snap_scratch;
        let durable = &mut self.durable_scratch;
        let highest = &self.highest_seq;
        self.service.for_each_mut(|p, d| {
            snap.push((p, d.suspicion_level(now)));
            durable.push(PeerDurable::from_state(
                d.save_seed(),
                highest.get(&p).copied(),
            ));
        });
        self.cell.publish(snap, durable, now);
    }
}

/// A monitor for many peers: sharded intake, epoch-published reads.
///
/// Drive it by calling [`tick`](ShardedMonitor::tick) on whatever cadence
/// the deployment wants (the chaos harness calls it on virtual time).
/// Hand [`reader`](ShardedMonitor::reader) clones to every thread that
/// queries suspicion levels.
pub struct ShardedMonitor<T, C, D> {
    transport: T,
    clock: C,
    config: ShardConfig,
    shards: Vec<Shard<D>>,
    reader: SnapshotReader,
    /// Reusable zero-allocation intake arena.
    intake: FrameBatch,
    /// Per-shard dispatch batches, reused across ticks.
    batches: Vec<Vec<(Heartbeat, Timestamp)>>,
    /// Wire decoder holding the v2 intern table across ticks.
    decoder: WireDecoder,
    corrupt: u64,
    ticks: u64,
    liveness: Arc<AtomicU64>,
    batch_hist: Option<afd_obs::Histogram>,
    dispatch_hist: Option<afd_obs::Histogram>,
}

impl<T, C, D> fmt::Debug for ShardedMonitor<T, C, D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedMonitor")
            .field("config", &self.config)
            .field("ticks", &self.ticks)
            .finish_non_exhaustive()
    }
}

impl<T, C, D> ShardedMonitor<T, C, D>
where
    T: Transport,
    C: Clock,
    D: AccrualFailureDetector,
{
    /// Creates a sharded monitor; `factory` is cloned once per shard and
    /// builds one detector per watched process (as in
    /// [`RuntimeMonitor::new`](crate::monitor::RuntimeMonitor::new)).
    pub fn new(
        transport: T,
        clock: C,
        config: ShardConfig,
        factory: impl FnMut(ProcessId) -> D + Send + Clone + 'static,
    ) -> Self {
        let config = ShardConfig {
            shards: config.shards.max(1),
            slots_per_shard: config.slots_per_shard.max(1),
        };
        let cells: Vec<Arc<ShardCell>> = (0..config.shards)
            .map(|_| Arc::new(ShardCell::new(config.slots_per_shard)))
            .collect();
        let shards = cells
            .iter()
            .map(|cell| {
                Shard::new(
                    Box::new(factory.clone()) as DetectorFactory<D>,
                    Arc::clone(cell),
                )
            })
            .collect();
        // lint:allow(no-alloc-in-hot-path, one-time construction; the batches are reused across every tick)
        let batches = (0..config.shards).map(|_| Vec::new()).collect();
        ShardedMonitor {
            transport,
            clock,
            config,
            shards,
            reader: SnapshotReader::from_cells(Arc::new(cells)),
            intake: FrameBatch::with_capacity(INTAKE_BATCH_SLOTS),
            batches,
            decoder: WireDecoder::new(),
            corrupt: 0,
            ticks: 0,
            liveness: Arc::new(AtomicU64::new(0)),
            batch_hist: None,
            dispatch_hist: None,
        }
    }

    /// The shard `process` routes to.
    pub fn shard_of(&self, process: ProcessId) -> usize {
        shard_index(process, self.shards.len())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Starts monitoring `process` (routed to its shard).
    ///
    /// Returns `Ok(true)` if newly watched, `Ok(false)` if already
    /// watched.
    ///
    /// # Errors
    ///
    /// Returns [`ShardCapacityError`] if the target shard's snapshot bank
    /// is full — published banks are fixed-size atomic arrays shared with
    /// readers and cannot grow.
    pub fn watch(&mut self, process: ProcessId) -> Result<bool, ShardCapacityError> {
        let idx = self.shard_of(process);
        let shard = &mut self.shards[idx];
        if !shard.service.is_watching(process) && shard.service.len() >= self.config.slots_per_shard
        {
            return Err(ShardCapacityError {
                shard: idx,
                capacity: self.config.slots_per_shard,
            });
        }
        Ok(shard.service.watch(process))
    }

    /// Stops monitoring `process`. As with
    /// [`RuntimeMonitor::unwatch`](crate::monitor::RuntimeMonitor::unwatch),
    /// the highest sequence number seen from it is retained so replays
    /// after a re-watch stay rejected. The published entry disappears at
    /// the next tick.
    pub fn unwatch(&mut self, process: ProcessId) -> Option<D> {
        let idx = self.shard_of(process);
        self.shards[idx].service.unwatch(process)
    }

    /// Drains the transport once, dispatches decoded heartbeats to their
    /// shards in batches, and publishes every shard's epoch snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the transport itself failed; decode
    /// failures, duplicates, and stale frames are absorbed into
    /// [`ShardedStats`].
    pub fn tick(&mut self) -> Result<TickReport, TransportError> {
        // lint:allow(relaxed-atomics-audit, monotone liveness tick; the watchdog only needs eventual progress, no cross-thread ordering)
        self.liveness.fetch_add(1, Ordering::Relaxed);
        for batch in &mut self.batches {
            batch.clear();
        }
        let mut drained = 0usize;
        loop {
            self.intake.clear();
            let got = self.transport.recv_batch(&mut self.intake)?;
            drained += got;
            for frame in self.intake.iter() {
                match self.decoder.decode(frame) {
                    Ok(hb) => {
                        // Stamp per decoded frame (not per tick): one "now"
                        // for a whole drained backlog would collapse its
                        // inter-arrival samples to zero.
                        let now = self.clock.now();
                        let idx = shard_index(hb.sender, self.shards.len());
                        self.batches[idx].push((hb, now));
                    }
                    Err(_) => self.corrupt += 1,
                }
            }
            // A short batch means the transport is drained.
            if got < self.intake.capacity() {
                break;
            }
        }
        let mut accepted = 0usize;
        let mut max_batch = 0usize;
        let dispatch_start = self.clock.now();
        for (idx, batch) in self.batches.iter_mut().enumerate() {
            max_batch = max_batch.max(batch.len());
            if let Some(h) = &self.batch_hist {
                h.observe(batch.len() as f64);
            }
            let shard = &mut self.shards[idx];
            for (hb, at) in batch.drain(..) {
                if shard.accept(hb, at) {
                    accepted += 1;
                }
            }
        }
        let now = self.clock.now();
        for shard in &mut self.shards {
            shard.publish(now);
        }
        let dispatch = now.saturating_duration_since(dispatch_start);
        if let Some(h) = &self.dispatch_hist {
            h.observe(dispatch.as_nanos() as f64);
        }
        self.ticks += 1;
        Ok(TickReport {
            drained,
            accepted,
            max_batch,
            dispatch,
        })
    }

    /// The exact-`now` suspicion level of `process`, evaluated against
    /// its detector (not the published epoch). Requires `&mut self`; use
    /// a [`SnapshotReader`] for the lock-free path.
    pub fn level(&mut self, process: ProcessId) -> Option<SuspicionLevel> {
        let now = self.clock.now();
        let idx = self.shard_of(process);
        self.shards[idx].service.suspicion_level(process, now)
    }

    /// The exact-`now` accrual snapshot of every watched process across
    /// all shards, ascending by id.
    pub fn snapshot(&mut self) -> Vec<(ProcessId, SuspicionLevel)> {
        let now = self.clock.now();
        // lint:allow(no-alloc-in-hot-path, owned-snapshot API; callers on the query path, not the intake path)
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.extend(shard.service.snapshot(now));
        }
        out.sort_unstable_by_key(|&(p, _)| p);
        out
    }

    /// The exact-`now` snapshot of one shard, for balance inspection and
    /// the union property tests.
    pub fn shard_snapshot(&mut self, shard: usize) -> Vec<(ProcessId, SuspicionLevel)> {
        let now = self.clock.now();
        match self.shards.get_mut(shard) {
            Some(s) => s.service.snapshot(now),
            // lint:allow(no-alloc-in-hot-path, empty vec on the out-of-range query path)
            None => Vec::new(),
        }
    }

    /// A cloneable lock-free reader over the published epoch snapshots.
    pub fn reader(&self) -> SnapshotReader {
        self.reader.clone()
    }

    /// Publishes a fresh epoch snapshot of every shard and dumps it as a
    /// new checkpoint generation through `ckpt`.
    ///
    /// This is the explicit Lockstep-style cadence; FreeRunning
    /// deployments hand [`reader`](ShardedMonitor::reader) to a
    /// [`CheckpointDaemon`](crate::persist::CheckpointDaemon) instead.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`](crate::persist::PersistError) if the sink
    /// fails.
    pub fn checkpoint<S: crate::persist::SegmentSink>(
        &mut self,
        ckpt: &mut crate::persist::Checkpointer<S>,
    ) -> Result<crate::persist::CheckpointReport, crate::persist::PersistError> {
        let now = self.clock.now();
        for shard in &mut self.shards {
            shard.publish(now);
        }
        ckpt.checkpoint(&self.reader, &self.clock)
    }

    /// Bulk-imports peers recovered by
    /// [`Checkpointer::restore`](crate::persist::Checkpointer::restore):
    /// re-watches each (routing by the *current* shard count, so the
    /// checkpoint survives a shard-count change across restarts), seeds
    /// its detector with the saved window moments, and re-arms replay
    /// rejection with the saved highest sequence number. Finishes by
    /// publishing every shard, so the first post-restore reader query
    /// already serves the restored levels at pre-crash quality.
    ///
    /// Peers whose target shard is full are dropped and counted in
    /// [`RestoreImport::capacity_rejected`](crate::persist::RestoreImport).
    pub fn restore(
        &mut self,
        peers: &[crate::persist::RestoredPeer],
    ) -> crate::persist::RestoreImport {
        let mut import = crate::persist::RestoreImport::default();
        for peer in peers {
            if self.watch(peer.process).is_err() {
                import.capacity_rejected += 1;
                continue;
            }
            import.watched += 1;
            let idx = self.shard_of(peer.process);
            if let Some(seq) = peer.highest_seq {
                self.shards[idx].highest_seq.insert(peer.process, seq);
            }
            if let Some(seed) = &peer.seed {
                if let Some(d) = self.shards[idx].service.detector_mut(peer.process) {
                    d.restore_seed(seed);
                    import.seeded += 1;
                }
            }
        }
        let now = self.clock.now();
        for shard in &mut self.shards {
            shard.publish(now);
        }
        import
    }

    /// Direct access to the detector for `process`.
    pub fn detector_mut(&mut self, process: ProcessId) -> Option<&mut D> {
        let idx = self.shard_of(process);
        self.shards[idx].service.detector_mut(process)
    }

    /// The transport the monitor drains.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The transport, mutably.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Aggregated and per-shard counters.
    pub fn stats(&self) -> ShardedStats {
        let mut totals = MonitorStats {
            corrupt: self.corrupt,
            ..MonitorStats::default()
        };
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut peers_per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            totals.accepted += shard.stats.accepted;
            totals.stale += shard.stats.stale;
            totals.duplicate += shard.stats.duplicate;
            totals.unwatched += shard.stats.unwatched;
            per_shard.push(shard.stats);
            peers_per_shard.push(shard.service.len());
        }
        ShardedStats {
            totals,
            per_shard,
            peers_per_shard,
            ticks: self.ticks,
        }
    }

    /// Binds per-tick histograms (`shard.batch_size`,
    /// `shard.dispatch_nanos`) so every subsequent
    /// [`tick`](ShardedMonitor::tick) records its intake batch sizes and
    /// dispatch latency into `registry`.
    pub fn bind_metrics(&mut self, registry: &afd_obs::Registry) {
        self.batch_hist = Some(registry.histogram(
            "shard.batch_size",
            &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0],
        ));
        self.dispatch_hist =
            Some(registry.histogram("shard.dispatch_nanos", &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9]));
    }

    /// Publishes the aggregate counters into `registry` under
    /// `sharded.*`, plus per-shard peer-count gauges
    /// (`shard.<i>.peers`).
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        let stats = self.stats();
        registry
            .counter("sharded.accepted")
            .set(stats.totals.accepted);
        registry
            .counter("sharded.corrupt")
            .set(stats.totals.corrupt);
        registry.counter("sharded.stale").set(stats.totals.stale);
        registry
            .counter("sharded.duplicate")
            .set(stats.totals.duplicate);
        registry
            .counter("sharded.unwatched")
            .set(stats.totals.unwatched);
        registry.counter("sharded.ticks").set(stats.ticks);
        registry
            .gauge("sharded.shards")
            .set(self.shards.len() as f64);
        let total_peers: usize = stats.peers_per_shard.iter().sum();
        registry.gauge("sharded.peers").set(total_peers as f64);
        for (i, peers) in stats.peers_per_shard.iter().enumerate() {
            registry
                .gauge(&format!("shard.{i}.peers"))
                .set(*peers as f64);
        }
    }

    /// A handle to the liveness counter, bumped on every
    /// [`tick`](ShardedMonitor::tick); hand it to a
    /// [`Watchdog`](crate::supervisor::Watchdog).
    pub fn liveness(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.liveness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::transport::ChannelTransport;
    use afd_detectors::simple::SimpleAccrual;

    fn rig(
        config: ShardConfig,
    ) -> (
        ChannelTransport,
        ShardedMonitor<ChannelTransport, VirtualClock, SimpleAccrual>,
        VirtualClock,
    ) {
        let (tx, rx) = ChannelTransport::pair();
        let clock = VirtualClock::new();
        let mon = ShardedMonitor::new(rx, clock.clone(), config, |_| {
            SimpleAccrual::new(Timestamp::ZERO)
        });
        (tx, mon, clock)
    }

    fn frame(sender: u32, seq: u64) -> Vec<u8> {
        Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            sent_at: Timestamp::from_secs(seq),
        }
        .encode()
        .to_vec()
    }

    #[test]
    fn heartbeats_reach_shard_detectors() {
        let (mut tx, mut mon, clock) = rig(ShardConfig::default());
        let p = ProcessId::new(1);
        mon.watch(p).unwrap();
        clock.set(Timestamp::from_secs(5));
        tx.send(&frame(1, 1)).unwrap();
        let report = mon.tick().unwrap();
        assert_eq!(report.drained, 1);
        assert_eq!(report.accepted, 1);
        clock.set(Timestamp::from_secs(8));
        assert_eq!(mon.level(p).unwrap().value(), 3.0);
    }

    #[test]
    fn peers_spread_across_shards() {
        let (_tx, mut mon, _clock) = rig(ShardConfig {
            shards: 8,
            slots_per_shard: 64,
        });
        for id in 0..256 {
            mon.watch(ProcessId::new(id)).unwrap();
        }
        let stats = mon.stats();
        assert_eq!(stats.peers_per_shard.iter().sum::<usize>(), 256);
        let max = stats.peers_per_shard.iter().max().copied().unwrap_or(0);
        let min = stats.peers_per_shard.iter().min().copied().unwrap_or(0);
        assert!(min > 0, "every shard should get some of 256 peers");
        assert!(max <= 64, "no shard should be wildly overloaded: {stats:?}");
    }

    #[test]
    fn capacity_overflow_is_a_typed_error() {
        let (_tx, mut mon, _clock) = rig(ShardConfig {
            shards: 1,
            slots_per_shard: 2,
        });
        mon.watch(ProcessId::new(1)).unwrap();
        mon.watch(ProcessId::new(2)).unwrap();
        // Re-watching an existing peer is fine even at capacity.
        assert_eq!(mon.watch(ProcessId::new(1)), Ok(false));
        let err = mon.watch(ProcessId::new(3)).unwrap_err();
        assert_eq!(
            err,
            ShardCapacityError {
                shard: 0,
                capacity: 2
            }
        );
        // Unwatching frees the slot.
        mon.unwatch(ProcessId::new(2));
        assert_eq!(mon.watch(ProcessId::new(3)), Ok(true));
    }

    #[test]
    fn reader_serves_published_levels_without_mut() {
        let (mut tx, mut mon, clock) = rig(ShardConfig {
            shards: 4,
            slots_per_shard: 16,
        });
        for id in 1..=8 {
            mon.watch(ProcessId::new(id)).unwrap();
        }
        clock.set(Timestamp::from_secs(10));
        for id in 1..=8 {
            tx.send(&frame(id, 1)).unwrap();
        }
        mon.tick().unwrap();
        clock.set(Timestamp::from_secs(14));
        mon.tick().unwrap(); // republish at t = 14

        let reader = mon.reader();
        assert_eq!(reader.published_at(), Timestamp::from_secs(14));
        // SimpleAccrual: level = elapsed since last heartbeat = 4 s.
        for id in 1..=8 {
            let lvl = reader.level(ProcessId::new(id)).unwrap();
            assert_eq!(lvl.value(), 4.0);
        }
        assert_eq!(reader.level(ProcessId::new(99)), None);
        let snap = reader.snapshot();
        assert_eq!(snap.len(), 8);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "ascending ids");
    }

    #[test]
    fn reader_lags_by_at_most_one_tick() {
        let (mut tx, mut mon, clock) = rig(ShardConfig {
            shards: 2,
            slots_per_shard: 4,
        });
        let p = ProcessId::new(7);
        mon.watch(p).unwrap();
        clock.set(Timestamp::from_secs(1));
        tx.send(&frame(7, 1)).unwrap();
        mon.tick().unwrap();
        let reader = mon.reader();
        let before = reader.level(p).unwrap();

        // A fresher heartbeat arrives but no tick has run: the reader
        // still serves the old epoch.
        clock.set(Timestamp::from_secs(2));
        tx.send(&frame(7, 2)).unwrap();
        assert_eq!(reader.level(p).unwrap(), before);

        mon.tick().unwrap();
        assert_eq!(reader.level(p).unwrap().value(), 0.0);
    }

    #[test]
    fn duplicate_and_stale_are_counted_per_shard_and_in_totals() {
        let (mut tx, mut mon, clock) = rig(ShardConfig {
            shards: 4,
            slots_per_shard: 8,
        });
        let p = ProcessId::new(3);
        mon.watch(p).unwrap();
        clock.set(Timestamp::from_secs(1));
        tx.send(&frame(3, 5)).unwrap();
        tx.send(&frame(3, 5)).unwrap(); // duplicate
        tx.send(&frame(3, 4)).unwrap(); // stale
        tx.send(&frame(3, 6)).unwrap(); // fresh
        tx.send(b"garbage").unwrap(); // corrupt
        let report = mon.tick().unwrap();
        assert_eq!(report.drained, 5);
        assert_eq!(report.accepted, 2);
        let stats = mon.stats();
        assert_eq!(stats.totals.accepted, 2);
        assert_eq!(stats.totals.duplicate, 1);
        assert_eq!(stats.totals.stale, 1);
        assert_eq!(stats.totals.corrupt, 1);
        let idx = mon.shard_of(p);
        assert_eq!(stats.per_shard[idx].accepted, 2);
        assert_eq!(stats.per_shard[idx].corrupt, 0, "corrupt is pre-shard");
    }

    #[test]
    fn concurrent_readers_never_observe_torn_snapshots() {
        let (mut tx, mut mon, clock) = rig(ShardConfig {
            shards: 2,
            slots_per_shard: 32,
        });
        let peers: Vec<u32> = (1..=16).collect();
        for &id in &peers {
            mon.watch(ProcessId::new(id)).unwrap();
        }
        let reader = mon.reader();
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reader = reader.clone();
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for _ in 0..300 {
                        let snap = reader.snapshot();
                        // Published tables are always a full, id-sorted
                        // epoch: never a partial write.
                        assert!(snap.len() <= 16);
                        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
                        for (_, lvl) in &snap {
                            assert!(lvl.value().is_finite());
                        }
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();

        // Keep publishing until every reader has finished its reads, so
        // the readers genuinely race ongoing publishes.
        let mut round = 0u64;
        while done.load(Ordering::SeqCst) < 4 {
            round += 1;
            clock.set(Timestamp::from_secs(round));
            for &id in &peers {
                tx.send(&frame(id, round)).unwrap();
            }
            mon.tick().unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mon.stats().totals.accepted, 16 * round);
    }

    #[test]
    fn export_metrics_covers_totals_and_shards() {
        let (mut tx, mut mon, clock) = rig(ShardConfig {
            shards: 2,
            slots_per_shard: 8,
        });
        let registry = afd_obs::Registry::new();
        mon.bind_metrics(&registry);
        mon.watch(ProcessId::new(1)).unwrap();
        clock.set(Timestamp::from_secs(1));
        tx.send(&frame(1, 1)).unwrap();
        mon.tick().unwrap();
        mon.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sharded.accepted"), Some(1));
        assert_eq!(snap.counter("sharded.ticks"), Some(1));
        assert_eq!(snap.gauge("sharded.peers"), Some(1.0));
        assert_eq!(snap.gauge("sharded.shards"), Some(2.0));
        let per_shard: f64 = (0..2)
            .map(|i| snap.gauge(&format!("shard.{i}.peers")).unwrap_or(0.0))
            .sum();
        assert_eq!(per_shard, 1.0);
    }

    #[test]
    fn tick_bumps_liveness_for_the_watchdog() {
        let (_tx, mut mon, _clock) = rig(ShardConfig::default());
        let liveness = mon.liveness();
        assert_eq!(liveness.load(Ordering::Relaxed), 0);
        mon.tick().unwrap();
        mon.tick().unwrap();
        assert_eq!(liveness.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn disconnected_transport_surfaces_typed_error() {
        let (tx, mut mon, _clock) = rig(ShardConfig::default());
        drop(tx);
        assert_eq!(mon.tick(), Err(TransportError::Disconnected));
    }

    #[test]
    fn zero_shard_config_is_floored_to_one() {
        let (_tx, mut mon, _clock) = rig(ShardConfig {
            shards: 0,
            slots_per_shard: 0,
        });
        assert_eq!(mon.shard_count(), 1);
        mon.watch(ProcessId::new(1)).unwrap();
        assert!(mon.watch(ProcessId::new(2)).is_err(), "slots floored to 1");
    }
}
