//! Watchdog supervision for monitor threads.
//!
//! A monitoring loop that silently wedges is worse than one that dies: the
//! detectors' levels freeze and every application above trusts a corpse.
//! [`Watchdog`] is the pure stall-detection logic — it observes a liveness
//! counter (bumped by [`RuntimeMonitor::poll`](crate::monitor::RuntimeMonitor::poll))
//! and flags a loop whose counter stops moving. [`Supervisor`] owns a
//! respawnable thread and uses a watchdog plus thread-exit detection to
//! restart it, counting restarts so operators can see the churn.
//!
//! # Restarting with durable state
//!
//! A restarted monitor does not have to re-learn every peer's arrival
//! statistics from scratch. When checkpoints are enabled
//! ([`persist`](crate::persist)), the supervisor's spawn closure should
//! **restore before re-watching**: call
//! [`Checkpointer::restore`](crate::persist::Checkpointer::restore)
//! against the shared sink, bulk-import the recovered peers via
//! [`ShardedMonitor::restore`](crate::shard::ShardedMonitor::restore)
//! (which seeds detectors with their saved window moments and re-arms
//! replay rejection), and only then watch any peers that were not in the
//! checkpoint. The kill-during-checkpoint chaos test in
//! `tests/persist.rs` exercises exactly this restart path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use afd_core::time::{Duration, Timestamp};

use crate::clock::Clock;

/// Pure stall detection over a monotone liveness counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    stall_after: Duration,
    last_tick: u64,
    last_progress: Timestamp,
}

impl Watchdog {
    /// Creates a watchdog that calls a loop stalled once its counter has
    /// not moved for `stall_after`.
    pub fn new(stall_after: Duration, now: Timestamp) -> Self {
        Watchdog {
            stall_after,
            last_tick: 0,
            last_progress: now,
        }
    }

    /// Feeds one observation; returns `true` while the loop counts as
    /// alive.
    pub fn observe(&mut self, tick: u64, now: Timestamp) -> bool {
        if tick != self.last_tick {
            self.last_tick = tick;
            self.last_progress = now;
            return true;
        }
        now.saturating_duration_since(self.last_progress) < self.stall_after
    }
}

/// Stall detection across a set of labeled liveness counters — the
/// multi-thread face of [`Watchdog`], used by the
/// [`ParallelShardEngine`](crate::engine::ParallelShardEngine) to watch
/// its intake thread and every shard worker at once.
///
/// Register each thread's counter with [`track`](HealthBoard::track);
/// call [`observe`](HealthBoard::observe) periodically and act on the
/// labels it returns (a stalled worker is either wedged or dead — the
/// engine distinguishes the two via its panic flags).
#[derive(Debug, Default)]
pub struct HealthBoard {
    entries: Vec<(String, Arc<AtomicU64>, Watchdog)>,
    stall_after: Duration,
}

impl HealthBoard {
    /// Creates a board that calls a counter stalled once it has not moved
    /// for `stall_after`, measured from `now`.
    pub fn new(stall_after: Duration) -> Self {
        HealthBoard {
            entries: Vec::new(),
            stall_after,
        }
    }

    /// Starts watching `counter` under `label`, with the grace period
    /// restarting at `now`.
    pub fn track(&mut self, label: impl Into<String>, counter: Arc<AtomicU64>, now: Timestamp) {
        let watchdog = Watchdog::new(self.stall_after, now);
        self.entries.push((label.into(), counter, watchdog));
    }

    /// Number of tracked counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Feeds every counter one observation; returns the labels that are
    /// stalled (empty when all threads are making progress).
    pub fn observe(&mut self, now: Timestamp) -> Vec<&str> {
        let mut stalled = Vec::new();
        for (label, counter, watchdog) in &mut self.entries {
            let tick = counter.load(Ordering::Relaxed);
            if !watchdog.observe(tick, now) {
                stalled.push(label.as_str());
            }
        }
        stalled
    }

    /// Publishes each counter under `health.<label>.ticks` into
    /// `registry`.
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        for (label, counter, _) in &self.entries {
            registry
                .counter(&format!("health.{label}.ticks"))
                .set(counter.load(Ordering::Relaxed));
        }
    }
}

/// What a supervised spawn hands back to its [`Supervisor`].
#[derive(Debug)]
pub struct SupervisedThread {
    /// Counter the thread bumps every loop iteration.
    pub liveness: Arc<AtomicU64>,
    /// Cooperative stop switch the thread honors.
    pub stop: Arc<AtomicBool>,
    /// The thread itself.
    pub handle: JoinHandle<()>,
}

/// Restarts a worker thread when it dies or stalls.
///
/// Time comes from an injected [`Clock`]: production wiring hands it a
/// [`SystemClock`](crate::clock::SystemClock), while tests drive stall
/// detection deterministically with a
/// [`VirtualClock`](crate::clock::VirtualClock).
pub struct Supervisor<C> {
    spawn: Box<dyn FnMut() -> SupervisedThread + Send>,
    current: SupervisedThread,
    watchdog: Watchdog,
    clock: C,
    stall_after: Duration,
    restarts: u64,
}

impl<C> std::fmt::Debug for Supervisor<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("restarts", &self.restarts)
            .finish_non_exhaustive()
    }
}

impl<C: Clock> Supervisor<C> {
    /// Spawns the first worker via `spawn` and supervises it on `clock`'s
    /// timeline.
    pub fn new(
        mut spawn: impl FnMut() -> SupervisedThread + Send + 'static,
        stall_after: Duration,
        clock: C,
    ) -> Self {
        let current = spawn();
        let watchdog = Watchdog::new(stall_after, clock.now());
        Supervisor {
            spawn: Box::new(spawn),
            current,
            watchdog,
            clock,
            stall_after,
            restarts: 0,
        }
    }

    fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Checks the worker once; call this periodically. Returns `true` if a
    /// restart happened.
    pub fn tick(&mut self) -> bool {
        let now = self.now();
        let tick = self.current.liveness.load(Ordering::Relaxed);
        let dead = self.current.handle.is_finished();
        let stalled = !self.watchdog.observe(tick, now);
        if !(dead || stalled) {
            return false;
        }
        // Ask the old thread to stop (a stalled-but-running loop may yet
        // honor it), then replace it. The old handle is dropped, detaching
        // the thread; a truly wedged one cannot be force-killed, only
        // superseded.
        self.current.stop.store(true, Ordering::SeqCst);
        self.current = (self.spawn)();
        self.watchdog = Watchdog::new(self.stall_after, self.now());
        self.restarts += 1;
        true
    }

    /// How many times the worker was restarted.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Publishes the restart counter into `registry` under `supervisor.*`.
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        registry.counter("supervisor.restarts").set(self.restarts);
    }

    /// Stops the current worker and joins it.
    pub fn shutdown(self) {
        self.current.stop.store(true, Ordering::SeqCst);
        let _ = self.current.handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SystemClock, VirtualClock};

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn watchdog_tracks_progress() {
        let mut w = Watchdog::new(Duration::from_secs(5), ts(0));
        assert!(w.observe(1, ts(1)));
        assert!(w.observe(2, ts(4)));
        // No progress, but within the stall budget.
        assert!(w.observe(2, ts(8)));
        // 5 s with no movement: stalled.
        assert!(!w.observe(2, ts(9)));
        // Movement resurrects it.
        assert!(w.observe(3, ts(10)));
    }

    #[test]
    fn health_board_flags_only_the_stalled_labels() {
        let mut board = HealthBoard::new(Duration::from_secs(5));
        let alive = Arc::new(AtomicU64::new(0));
        let wedged = Arc::new(AtomicU64::new(0));
        board.track("intake", Arc::clone(&alive), ts(0));
        board.track("worker.0", Arc::clone(&wedged), ts(0));
        assert_eq!(board.len(), 2);

        alive.store(1, Ordering::Relaxed);
        wedged.store(1, Ordering::Relaxed);
        assert!(board.observe(ts(1)).is_empty());

        // Only `alive` keeps moving.
        alive.store(2, Ordering::Relaxed);
        assert!(board.observe(ts(4)).is_empty());
        alive.store(3, Ordering::Relaxed);
        assert_eq!(board.observe(ts(7)), vec!["worker.0"]);

        // Movement resurrects the wedged label.
        wedged.store(2, Ordering::Relaxed);
        alive.store(4, Ordering::Relaxed);
        assert!(board.observe(ts(8)).is_empty());
    }

    #[test]
    fn health_board_exports_per_label_counters() {
        let mut board = HealthBoard::new(Duration::from_secs(1));
        let c = Arc::new(AtomicU64::new(9));
        board.track("intake", Arc::clone(&c), ts(0));
        let registry = afd_obs::Registry::new();
        board.export_metrics(&registry);
        assert_eq!(registry.snapshot().counter("health.intake.ticks"), Some(9));
    }

    fn looping_thread(iterations: Option<u64>) -> SupervisedThread {
        let liveness = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let t_liveness = Arc::clone(&liveness);
        let t_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut n = 0u64;
            loop {
                if t_stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(limit) = iterations {
                    if n >= limit {
                        return; // simulated death
                    }
                }
                n += 1;
                // lint:allow(relaxed-atomics-audit, monotone liveness tick; the watchdog only needs eventual progress, no cross-thread ordering)
                t_liveness.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        SupervisedThread {
            liveness,
            stop,
            handle,
        }
    }

    #[test]
    fn healthy_worker_is_left_alone() {
        let mut sup = Supervisor::new(
            || looping_thread(None),
            Duration::from_secs(5),
            SystemClock::new(),
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!sup.tick());
        assert_eq!(sup.restarts(), 0);
        sup.shutdown();
    }

    #[test]
    fn dead_worker_is_restarted() {
        let mut sup = Supervisor::new(
            || looping_thread(Some(3)),
            Duration::from_secs(60),
            SystemClock::new(),
        );
        // Wait for the worker to run off the end of its 3 iterations.
        let mut restarted = false;
        for _ in 0..200 {
            if sup.tick() {
                restarted = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(restarted, "supervisor never noticed the dead worker");
        assert_eq!(sup.restarts(), 1);
        sup.shutdown();
    }

    /// The reason the epoch goes through [`Clock`]: a stall is provable in
    /// virtual time, with no real waiting and no flakiness.
    #[test]
    fn stalled_worker_is_restarted_under_virtual_time() {
        let clock = VirtualClock::new();
        // A worker that parks forever without bumping its counter — but
        // still honors stop, so shutdown stays clean.
        let spawn = || {
            let liveness = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let t_stop = Arc::clone(&stop);
            let handle = std::thread::spawn(move || {
                while !t_stop.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
            SupervisedThread {
                liveness,
                stop,
                handle,
            }
        };
        let mut sup = Supervisor::new(spawn, Duration::from_secs(5), clock.clone());
        // Within the stall budget: nothing happens.
        clock.advance(Duration::from_secs(4));
        assert!(!sup.tick());
        // Budget exceeded with no liveness movement: restart, immediately,
        // deterministically.
        clock.advance(Duration::from_secs(2));
        assert!(sup.tick());
        assert_eq!(sup.restarts(), 1);
        sup.shutdown();
    }
}
