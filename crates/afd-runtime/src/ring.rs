//! Bounded single-producer/single-consumer heartbeat rings.
//!
//! The [`ParallelShardEngine`](crate::engine::ParallelShardEngine) routes
//! decoded heartbeats from one intake thread to one worker thread per
//! shard. Each route is a [`heartbeat_ring`]: a fixed-capacity ring of
//! atomic slots with the same plain-store-plus-fence discipline as the
//! epoch snapshots in [`shard`](crate::shard) — each slot is guarded by a
//! per-slot seqlock word, the producer publishes by a release store of
//! `tail`, and the consumer validates its reads against the slot seqlock
//! before claiming the entry. No unsafe code, no locks.
//!
//! # Backpressure: drop-oldest
//!
//! When the ring is full the producer *evicts the oldest unread entry*
//! and counts it, rather than blocking or rejecting the new frame.
//! Heartbeats are lossy by design — the paper's detectors are built for
//! message loss, and a frame dropped at a full ring is indistinguishable
//! from one dropped by UDP. Dropping the *oldest* frame keeps the
//! freshest evidence, which is what an accrual detector wants: a newer
//! heartbeat from the same peer supersedes an older one outright.
//!
//! Eviction makes `head` a two-writer word (consumer pop, producer
//! evict), so both advance it with a compare-exchange; the per-slot
//! seqlock protects a consumer that is mid-read of a slot being
//! overwritten — its validation fails, its head CAS fails, and it
//! retries at the new head. `tail` stays single-writer (plain stores).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use afd_core::process::ProcessId;
use afd_core::time::Timestamp;

use crate::wire::Heartbeat;

/// One ring entry: the decoded heartbeat plus its arrival stamp, spread
/// over atomic words guarded by a per-slot seqlock.
struct RingSlot {
    /// Seqlock word: odd while the producer is writing this slot.
    wseq: AtomicU64,
    sender: AtomicU64,
    seq: AtomicU64,
    sent_at: AtomicU64,
    arrival: AtomicU64,
}

impl RingSlot {
    fn new() -> Self {
        RingSlot {
            wseq: AtomicU64::new(0),
            sender: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            sent_at: AtomicU64::new(0),
            arrival: AtomicU64::new(0),
        }
    }
}

struct RingInner {
    mask: u64,
    slots: Box<[RingSlot]>,
    /// Next unread index; advanced by the consumer (pop) or the producer
    /// (drop-oldest eviction), always via compare-exchange.
    head: AtomicU64,
    /// Next write index; the producer is the only writer.
    tail: AtomicU64,
    /// Entries evicted by drop-oldest; the producer is the only writer.
    dropped: AtomicU64,
}

/// Creates a bounded SPSC heartbeat ring. `capacity` is rounded up to
/// the next power of two (minimum 2).
pub fn heartbeat_ring(capacity: usize) -> (RingProducer, RingConsumer) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[RingSlot]> = (0..cap).map(|_| RingSlot::new()).collect();
    let inner = Arc::new(RingInner {
        mask: (cap - 1) as u64,
        slots,
        head: AtomicU64::new(0),
        tail: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    });
    (
        RingProducer {
            inner: Arc::clone(&inner),
        },
        RingConsumer { inner },
    )
}

/// The write side of a [`heartbeat_ring`]. Exactly one thread may hold
/// it (it is `Send` but not `Clone`).
pub struct RingProducer {
    inner: Arc<RingInner>,
}

/// The read side of a [`heartbeat_ring`]. Exactly one thread may hold
/// it (it is `Send` but not `Clone`).
pub struct RingConsumer {
    inner: Arc<RingInner>,
}

/// A read-only, cloneable observer of a ring's depth and drop counter,
/// for metrics export from any thread.
#[derive(Clone)]
pub struct RingWatch {
    inner: Arc<RingInner>,
}

impl std::fmt::Debug for RingProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingProducer")
            .field("capacity", &self.inner.slots.len())
            .finish()
    }
}

impl std::fmt::Debug for RingConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingConsumer")
            .field("capacity", &self.inner.slots.len())
            .finish()
    }
}

impl std::fmt::Debug for RingWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingWatch")
            .field("len", &self.inner.len())
            .finish()
    }
}

impl RingInner {
    fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.slots.len() as u64) as usize
    }
}

impl RingProducer {
    /// Pushes one heartbeat, evicting the oldest unread entry (and
    /// counting it) if the ring is full. Never blocks, never fails.
    pub fn push(&mut self, hb: Heartbeat, arrival: Timestamp) {
        let inner = &*self.inner;
        let cap = inner.slots.len() as u64;
        let tail = inner.tail.load(Ordering::Relaxed);
        loop {
            let head = inner.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < cap {
                break;
            }
            // Full: drop-oldest. The CAS races only the consumer's pop;
            // whichever side advances `head`, space exists afterwards.
            if inner
                .head
                .compare_exchange(
                    head,
                    head.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // Single-writer counter: a plain load+store is exact.
                inner.dropped.store(
                    inner.dropped.load(Ordering::Relaxed).wrapping_add(1),
                    Ordering::Relaxed,
                );
            }
        }
        let slot = &inner.slots[(tail & inner.mask) as usize];
        // Per-slot seqlock enter: odd marks the slot as mid-write, and
        // the release fence keeps the payload stores after the mark.
        let s = slot.wseq.load(Ordering::Relaxed);
        slot.wseq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        slot.sender
            .store(u64::from(hb.sender.as_u32()), Ordering::Relaxed);
        slot.seq.store(hb.seq, Ordering::Relaxed);
        slot.sent_at.store(hb.sent_at.as_nanos(), Ordering::Relaxed);
        slot.arrival.store(arrival.as_nanos(), Ordering::Relaxed);
        // Seqlock exit (even): release-orders the payload before the mark.
        slot.wseq.store(s.wrapping_add(2), Ordering::Release);
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Pushes a batch of heartbeats that share one arrival stamp, with
    /// **one** tail advance for the whole batch instead of one per
    /// frame — the publish half of the batched intake fast path.
    ///
    /// Semantics match a `push` loop exactly: never blocks, never
    /// fails, evicts the oldest unread entries (counted as dropped)
    /// when space runs short. A batch longer than the ring keeps only
    /// its newest `capacity` heartbeats — the older ones would be
    /// evicted by their own batchmates before any consumer could see
    /// them, so they are counted as dropped without being written.
    ///
    /// The seqlock protocol runs in three passes over the claimed
    /// slots: mark every slot mid-write (odd), release-fence, store
    /// every payload, release-fence, mark every slot done (even), then
    /// publish with a single release store of `tail`. A consumer that
    /// catches any slot of the batch mid-write sees an odd or changed
    /// seqlock word and retries, exactly as with per-frame pushes.
    pub fn push_batch(&mut self, hbs: &[Heartbeat], arrival: Timestamp) {
        let inner = &*self.inner;
        let cap = inner.slots.len() as u64;
        // Older-than-the-ring entries can never be observed: drop them
        // up front instead of writing and immediately evicting them.
        let skip = hbs.len().saturating_sub(cap as usize);
        if skip > 0 {
            inner.dropped.store(
                inner
                    .dropped
                    .load(Ordering::Relaxed)
                    .wrapping_add(skip as u64),
                Ordering::Relaxed,
            );
        }
        let hbs = &hbs[skip..];
        if hbs.is_empty() {
            return;
        }
        let n = hbs.len() as u64;
        let tail = inner.tail.load(Ordering::Relaxed);
        loop {
            let head = inner.head.load(Ordering::Acquire);
            let free = cap - tail.wrapping_sub(head);
            if free >= n {
                break;
            }
            // Evict the whole deficit with one CAS. The CAS races only
            // the consumer's pop; on failure the consumer advanced head
            // for us, so the deficit is recomputed smaller.
            let deficit = n - free;
            if inner
                .head
                .compare_exchange(
                    head,
                    head.wrapping_add(deficit),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // Single-writer counter: a plain load+store is exact.
                inner.dropped.store(
                    inner.dropped.load(Ordering::Relaxed).wrapping_add(deficit),
                    Ordering::Relaxed,
                );
                break;
            }
        }
        // Pass 1: every claimed slot goes odd (mid-write) before any
        // payload store, so a late consumer of an evicted slot can
        // never validate a half-written batch entry.
        for i in 0..n {
            let slot = &inner.slots[(tail.wrapping_add(i) & inner.mask) as usize];
            let s = slot.wseq.load(Ordering::Relaxed);
            slot.wseq.store(s.wrapping_add(1), Ordering::Relaxed);
        }
        fence(Ordering::Release);
        // Pass 2: the payloads, all sharing the batch arrival stamp.
        for (i, hb) in hbs.iter().enumerate() {
            let slot = &inner.slots[(tail.wrapping_add(i as u64) & inner.mask) as usize];
            slot.sender
                .store(u64::from(hb.sender.as_u32()), Ordering::Relaxed);
            slot.seq.store(hb.seq, Ordering::Relaxed);
            slot.sent_at.store(hb.sent_at.as_nanos(), Ordering::Relaxed);
            slot.arrival.store(arrival.as_nanos(), Ordering::Relaxed);
        }
        fence(Ordering::Release);
        // Pass 3: seqlock exit (even) for every slot; the fence above
        // release-orders all payloads before these marks.
        for i in 0..n {
            let slot = &inner.slots[(tail.wrapping_add(i) & inner.mask) as usize];
            let s = slot.wseq.load(Ordering::Relaxed);
            slot.wseq.store(s.wrapping_add(1), Ordering::Relaxed);
        }
        // One publish for the whole batch.
        inner.tail.store(tail.wrapping_add(n), Ordering::Release);
    }

    /// A metrics observer for this ring.
    pub fn watch(&self) -> RingWatch {
        RingWatch {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl RingConsumer {
    /// Pops the oldest unread heartbeat, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<(Heartbeat, Timestamp)> {
        let inner = &*self.inner;
        loop {
            let head = inner.head.load(Ordering::Acquire);
            let tail = inner.tail.load(Ordering::Acquire);
            if head == tail {
                return None;
            }
            let slot = &inner.slots[(head & inner.mask) as usize];
            let s1 = slot.wseq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                // Producer is lapping this very slot (it must have
                // evicted first, so head has moved); retry from the top.
                std::hint::spin_loop();
                continue;
            }
            let sender = slot.sender.load(Ordering::Relaxed);
            let seq = slot.seq.load(Ordering::Relaxed);
            let sent_at = slot.sent_at.load(Ordering::Relaxed);
            let arrival = slot.arrival.load(Ordering::Relaxed);
            // Validate before claiming: if the seqlock moved, the
            // producer overwrote this slot mid-read (after evicting it),
            // and the head CAS below would fail anyway.
            fence(Ordering::Acquire);
            if slot.wseq.load(Ordering::Relaxed) != s1 {
                continue;
            }
            if inner
                .head
                .compare_exchange(
                    head,
                    head.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                let hb = Heartbeat {
                    sender: ProcessId::new(sender as u32),
                    seq,
                    sent_at: Timestamp::from_nanos(sent_at),
                };
                return Some((hb, Timestamp::from_nanos(arrival)));
            }
            // Lost the claim to a producer eviction; retry at new head.
        }
    }

    /// A metrics observer for this ring.
    pub fn watch(&self) -> RingWatch {
        RingWatch {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl RingWatch {
    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Entries evicted by drop-oldest backpressure so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(sender: u32, seq: u64) -> Heartbeat {
        Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            sent_at: Timestamp::from_nanos(seq),
        }
    }

    #[test]
    fn fifo_roundtrip_and_empty() {
        let (mut tx, mut rx) = heartbeat_ring(8);
        assert!(rx.pop().is_none());
        for i in 0..5u64 {
            tx.push(hb(1, i), Timestamp::from_secs(i));
        }
        for i in 0..5u64 {
            let (h, at) = rx.pop().expect("queued");
            assert_eq!(h.seq, i);
            assert_eq!(at, Timestamp::from_secs(i));
        }
        assert!(rx.pop().is_none());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = heartbeat_ring(5);
        assert_eq!(tx.watch().capacity(), 8);
        let (tx, _rx) = heartbeat_ring(0);
        assert_eq!(tx.watch().capacity(), 2);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let (mut tx, mut rx) = heartbeat_ring(8);
        for i in 0..20u64 {
            tx.push(hb(1, i), Timestamp::from_nanos(i));
        }
        let watch = rx.watch();
        assert_eq!(watch.dropped(), 12, "20 pushed into 8 slots");
        // The survivors are exactly the newest 8, in order.
        let got: Vec<u64> = std::iter::from_fn(|| rx.pop().map(|(h, _)| h.seq)).collect();
        assert_eq!(got, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn interleaved_eviction_keeps_order() {
        let (mut tx, mut rx) = heartbeat_ring(4);
        for i in 0..4u64 {
            tx.push(hb(1, i), Timestamp::ZERO);
        }
        assert_eq!(rx.pop().map(|(h, _)| h.seq), Some(0));
        for i in 4..8u64 {
            tx.push(hb(1, i), Timestamp::ZERO); // evicts 1, 2, 3
        }
        let got: Vec<u64> = std::iter::from_fn(|| rx.pop().map(|(h, _)| h.seq)).collect();
        assert_eq!(got, vec![4, 5, 6, 7]);
        assert_eq!(tx.watch().dropped(), 3);
    }

    #[test]
    fn push_batch_fifo_and_shared_stamp() {
        let (mut tx, mut rx) = heartbeat_ring(8);
        tx.push_batch(&[], Timestamp::from_secs(9)); // no-op
        assert!(rx.pop().is_none());
        let batch: Vec<Heartbeat> = (0..5u64).map(|i| hb(1, i)).collect();
        tx.push_batch(&batch, Timestamp::from_secs(42));
        for i in 0..5u64 {
            let (h, at) = rx.pop().expect("queued");
            assert_eq!(h.seq, i);
            assert_eq!(at, Timestamp::from_secs(42), "batch stamp shared");
        }
        assert!(rx.pop().is_none());
        assert_eq!(tx.watch().dropped(), 0);
    }

    #[test]
    fn push_batch_matches_a_push_loop_on_overflow() {
        // The exact scenario of `overflow_drops_oldest_and_counts`, in
        // three batches: the observable outcome must be identical to
        // 20 single pushes into 8 slots.
        let (mut tx, mut rx) = heartbeat_ring(8);
        for chunk in (0..20u64).collect::<Vec<_>>().chunks(7) {
            let batch: Vec<Heartbeat> = chunk.iter().map(|&i| hb(1, i)).collect();
            tx.push_batch(&batch, Timestamp::from_nanos(chunk[0]));
        }
        assert_eq!(tx.watch().dropped(), 12, "20 pushed into 8 slots");
        let got: Vec<u64> = std::iter::from_fn(|| rx.pop().map(|(h, _)| h.seq)).collect();
        assert_eq!(got, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn push_batch_longer_than_ring_keeps_newest() {
        let (mut tx, mut rx) = heartbeat_ring(4);
        let batch: Vec<Heartbeat> = (0..11u64).map(|i| hb(2, i)).collect();
        tx.push_batch(&batch, Timestamp::ZERO);
        assert_eq!(tx.watch().dropped(), 7, "11 into 4 slots");
        let got: Vec<u64> = std::iter::from_fn(|| rx.pop().map(|(h, _)| h.seq)).collect();
        assert_eq!(got, vec![7, 8, 9, 10]);
    }

    #[test]
    fn push_batch_interleaved_with_pop_evicts_oldest() {
        let (mut tx, mut rx) = heartbeat_ring(4);
        tx.push_batch(&[hb(1, 0), hb(1, 1), hb(1, 2)], Timestamp::ZERO);
        assert_eq!(rx.pop().map(|(h, _)| h.seq), Some(0));
        // 2 unread + batch of 4 into 4 slots → evict the 2 unread.
        tx.push_batch(&[hb(1, 3), hb(1, 4), hb(1, 5), hb(1, 6)], Timestamp::ZERO);
        let got: Vec<u64> = std::iter::from_fn(|| rx.pop().map(|(h, _)| h.seq)).collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
        assert_eq!(tx.watch().dropped(), 2);
    }

    #[test]
    fn cross_thread_push_batch_with_eviction_stays_consistent() {
        // Batched writes under sustained pressure on a tiny ring: every
        // popped frame must be internally consistent and seqs strictly
        // increasing — one seqlock advance per batch must never let a
        // consumer observe a torn or reordered entry.
        use std::sync::atomic::AtomicBool;
        let (mut tx, mut rx) = heartbeat_ring(8);
        const N: u64 = 96_000;
        let done = Arc::new(AtomicBool::new(false));
        let p_done = Arc::clone(&done);
        let producer = std::thread::spawn(move || {
            let mut batch = Vec::with_capacity(12);
            let mut i = 0u64;
            while i < N {
                batch.clear();
                // Vary batch sizes through the ring capacity, including
                // batches larger than the ring itself.
                let len = 1 + (i % 12);
                for _ in 0..len {
                    if i >= N {
                        break;
                    }
                    batch.push(hb(3, i));
                    i += 1;
                }
                tx.push_batch(&batch, Timestamp::from_nanos(batch[0].seq));
            }
            p_done.store(true, Ordering::Release);
            tx
        });
        let mut last: Option<u64> = None;
        let mut got = 0u64;
        loop {
            match rx.pop() {
                Some((h, at)) => {
                    assert_eq!(h.sent_at.as_nanos(), h.seq, "torn slot read");
                    assert!(at.as_nanos() <= h.seq, "stamp from a later batch");
                    if let Some(prev) = last {
                        assert!(h.seq > prev, "reordered: {} after {prev}", h.seq);
                    }
                    last = Some(h.seq);
                    got += 1;
                }
                None => {
                    if done.load(Ordering::Acquire) && rx.watch().is_empty() {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        let tx = producer.join().expect("producer");
        assert_eq!(got + tx.watch().dropped(), N);
    }

    #[test]
    fn cross_thread_no_overflow_delivers_everything() {
        let (mut tx, mut rx) = heartbeat_ring(1 << 14);
        const N: u64 = 50_000;
        let producer = std::thread::spawn(move || {
            let watch = tx.watch();
            let capacity = watch.capacity();
            for i in 0..N {
                // Throttle below capacity so eviction never fires — on a
                // single-core host the producer can otherwise lap the
                // consumer by a full ring between preemptions.
                while watch.len() >= capacity - 1 {
                    std::thread::yield_now();
                }
                tx.push(hb(7, i), Timestamp::from_nanos(i));
            }
            tx
        });
        let mut next = 0u64;
        while next < N {
            if let Some((h, _)) = rx.pop() {
                assert_eq!(h.seq, next, "SPSC order violated");
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        let tx = producer.join().expect("producer");
        assert_eq!(tx.watch().dropped(), 0);
        assert!(rx.pop().is_none());
    }

    #[test]
    fn cross_thread_with_eviction_stays_consistent() {
        // A tiny ring under sustained pressure: every popped frame must
        // be internally consistent (seq == sent_at nanos == arrival
        // nanos) and seqs must be strictly increasing (drop-oldest never
        // reorders or duplicates).
        use std::sync::atomic::AtomicBool;
        let (mut tx, mut rx) = heartbeat_ring(8);
        const N: u64 = 100_000;
        let done = Arc::new(AtomicBool::new(false));
        let p_done = Arc::clone(&done);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push(hb(3, i), Timestamp::from_nanos(i));
            }
            p_done.store(true, Ordering::Release);
            tx
        });
        let mut last: Option<u64> = None;
        let mut got = 0u64;
        loop {
            match rx.pop() {
                Some((h, at)) => {
                    assert_eq!(h.sent_at.as_nanos(), h.seq, "torn slot read");
                    assert_eq!(at.as_nanos(), h.seq, "torn arrival read");
                    if let Some(prev) = last {
                        assert!(h.seq > prev, "reordered: {} after {prev}", h.seq);
                    }
                    last = Some(h.seq);
                    got += 1;
                }
                None => {
                    // Only quit once the producer is done AND the ring
                    // is still empty on a fresh look (the flag read and
                    // the empty pop race the final pushes otherwise).
                    if done.load(Ordering::Acquire) && rx.watch().is_empty() {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        let tx = producer.join().expect("producer");
        // Everything was either delivered or counted as dropped.
        assert_eq!(got + tx.watch().dropped(), N);
    }
}
