//! Bounded single-producer/single-consumer heartbeat rings.
//!
//! The [`ParallelShardEngine`](crate::engine::ParallelShardEngine) routes
//! decoded heartbeats from one intake thread to one worker thread per
//! shard. Each route is a [`heartbeat_ring`]: a fixed-capacity ring of
//! atomic slots with the same plain-store-plus-fence discipline as the
//! epoch snapshots in [`shard`](crate::shard) — each slot is guarded by a
//! per-slot seqlock word, the producer publishes by a release store of
//! `tail`, and the consumer validates its reads against the slot seqlock
//! before claiming the entry. No unsafe code, no locks.
//!
//! # Backpressure: drop-oldest
//!
//! When the ring is full the producer *evicts the oldest unread entry*
//! and counts it, rather than blocking or rejecting the new frame.
//! Heartbeats are lossy by design — the paper's detectors are built for
//! message loss, and a frame dropped at a full ring is indistinguishable
//! from one dropped by UDP. Dropping the *oldest* frame keeps the
//! freshest evidence, which is what an accrual detector wants: a newer
//! heartbeat from the same peer supersedes an older one outright.
//!
//! Eviction makes `head` a two-writer word (consumer pop, producer
//! evict), so both advance it with a compare-exchange; the per-slot
//! seqlock protects a consumer that is mid-read of a slot being
//! overwritten — its validation fails, its head CAS fails, and it
//! retries at the new head. `tail` stays single-writer (plain stores).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use afd_core::process::ProcessId;
use afd_core::time::Timestamp;

use crate::wire::Heartbeat;

/// One ring entry: the decoded heartbeat plus its arrival stamp, spread
/// over atomic words guarded by a per-slot seqlock.
struct RingSlot {
    /// Seqlock word: odd while the producer is writing this slot.
    wseq: AtomicU64,
    sender: AtomicU64,
    seq: AtomicU64,
    sent_at: AtomicU64,
    arrival: AtomicU64,
}

impl RingSlot {
    fn new() -> Self {
        RingSlot {
            wseq: AtomicU64::new(0),
            sender: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            sent_at: AtomicU64::new(0),
            arrival: AtomicU64::new(0),
        }
    }
}

struct RingInner {
    mask: u64,
    slots: Box<[RingSlot]>,
    /// Next unread index; advanced by the consumer (pop) or the producer
    /// (drop-oldest eviction), always via compare-exchange.
    head: AtomicU64,
    /// Next write index; the producer is the only writer.
    tail: AtomicU64,
    /// Entries evicted by drop-oldest; the producer is the only writer.
    dropped: AtomicU64,
}

/// Creates a bounded SPSC heartbeat ring. `capacity` is rounded up to
/// the next power of two (minimum 2).
pub fn heartbeat_ring(capacity: usize) -> (RingProducer, RingConsumer) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[RingSlot]> = (0..cap).map(|_| RingSlot::new()).collect();
    let inner = Arc::new(RingInner {
        mask: (cap - 1) as u64,
        slots,
        head: AtomicU64::new(0),
        tail: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    });
    (
        RingProducer {
            inner: Arc::clone(&inner),
        },
        RingConsumer { inner },
    )
}

/// The write side of a [`heartbeat_ring`]. Exactly one thread may hold
/// it (it is `Send` but not `Clone`).
pub struct RingProducer {
    inner: Arc<RingInner>,
}

/// The read side of a [`heartbeat_ring`]. Exactly one thread may hold
/// it (it is `Send` but not `Clone`).
pub struct RingConsumer {
    inner: Arc<RingInner>,
}

/// A read-only, cloneable observer of a ring's depth and drop counter,
/// for metrics export from any thread.
#[derive(Clone)]
pub struct RingWatch {
    inner: Arc<RingInner>,
}

impl std::fmt::Debug for RingProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingProducer")
            .field("capacity", &self.inner.slots.len())
            .finish()
    }
}

impl std::fmt::Debug for RingConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingConsumer")
            .field("capacity", &self.inner.slots.len())
            .finish()
    }
}

impl std::fmt::Debug for RingWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingWatch")
            .field("len", &self.inner.len())
            .finish()
    }
}

impl RingInner {
    fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.slots.len() as u64) as usize
    }
}

impl RingProducer {
    /// Pushes one heartbeat, evicting the oldest unread entry (and
    /// counting it) if the ring is full. Never blocks, never fails.
    pub fn push(&mut self, hb: Heartbeat, arrival: Timestamp) {
        let inner = &*self.inner;
        let cap = inner.slots.len() as u64;
        let tail = inner.tail.load(Ordering::Relaxed);
        loop {
            let head = inner.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < cap {
                break;
            }
            // Full: drop-oldest. The CAS races only the consumer's pop;
            // whichever side advances `head`, space exists afterwards.
            if inner
                .head
                .compare_exchange(
                    head,
                    head.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // Single-writer counter: a plain load+store is exact.
                inner.dropped.store(
                    inner.dropped.load(Ordering::Relaxed).wrapping_add(1),
                    Ordering::Relaxed,
                );
            }
        }
        let slot = &inner.slots[(tail & inner.mask) as usize];
        // Per-slot seqlock enter: odd marks the slot as mid-write, and
        // the release fence keeps the payload stores after the mark.
        let s = slot.wseq.load(Ordering::Relaxed);
        slot.wseq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        slot.sender
            .store(u64::from(hb.sender.as_u32()), Ordering::Relaxed);
        slot.seq.store(hb.seq, Ordering::Relaxed);
        slot.sent_at.store(hb.sent_at.as_nanos(), Ordering::Relaxed);
        slot.arrival.store(arrival.as_nanos(), Ordering::Relaxed);
        // Seqlock exit (even): release-orders the payload before the mark.
        slot.wseq.store(s.wrapping_add(2), Ordering::Release);
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// A metrics observer for this ring.
    pub fn watch(&self) -> RingWatch {
        RingWatch {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl RingConsumer {
    /// Pops the oldest unread heartbeat, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<(Heartbeat, Timestamp)> {
        let inner = &*self.inner;
        loop {
            let head = inner.head.load(Ordering::Acquire);
            let tail = inner.tail.load(Ordering::Acquire);
            if head == tail {
                return None;
            }
            let slot = &inner.slots[(head & inner.mask) as usize];
            let s1 = slot.wseq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                // Producer is lapping this very slot (it must have
                // evicted first, so head has moved); retry from the top.
                std::hint::spin_loop();
                continue;
            }
            let sender = slot.sender.load(Ordering::Relaxed);
            let seq = slot.seq.load(Ordering::Relaxed);
            let sent_at = slot.sent_at.load(Ordering::Relaxed);
            let arrival = slot.arrival.load(Ordering::Relaxed);
            // Validate before claiming: if the seqlock moved, the
            // producer overwrote this slot mid-read (after evicting it),
            // and the head CAS below would fail anyway.
            fence(Ordering::Acquire);
            if slot.wseq.load(Ordering::Relaxed) != s1 {
                continue;
            }
            if inner
                .head
                .compare_exchange(
                    head,
                    head.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                let hb = Heartbeat {
                    sender: ProcessId::new(sender as u32),
                    seq,
                    sent_at: Timestamp::from_nanos(sent_at),
                };
                return Some((hb, Timestamp::from_nanos(arrival)));
            }
            // Lost the claim to a producer eviction; retry at new head.
        }
    }

    /// A metrics observer for this ring.
    pub fn watch(&self) -> RingWatch {
        RingWatch {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl RingWatch {
    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Entries evicted by drop-oldest backpressure so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(sender: u32, seq: u64) -> Heartbeat {
        Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            sent_at: Timestamp::from_nanos(seq),
        }
    }

    #[test]
    fn fifo_roundtrip_and_empty() {
        let (mut tx, mut rx) = heartbeat_ring(8);
        assert!(rx.pop().is_none());
        for i in 0..5u64 {
            tx.push(hb(1, i), Timestamp::from_secs(i));
        }
        for i in 0..5u64 {
            let (h, at) = rx.pop().expect("queued");
            assert_eq!(h.seq, i);
            assert_eq!(at, Timestamp::from_secs(i));
        }
        assert!(rx.pop().is_none());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = heartbeat_ring(5);
        assert_eq!(tx.watch().capacity(), 8);
        let (tx, _rx) = heartbeat_ring(0);
        assert_eq!(tx.watch().capacity(), 2);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let (mut tx, mut rx) = heartbeat_ring(8);
        for i in 0..20u64 {
            tx.push(hb(1, i), Timestamp::from_nanos(i));
        }
        let watch = rx.watch();
        assert_eq!(watch.dropped(), 12, "20 pushed into 8 slots");
        // The survivors are exactly the newest 8, in order.
        let got: Vec<u64> = std::iter::from_fn(|| rx.pop().map(|(h, _)| h.seq)).collect();
        assert_eq!(got, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn interleaved_eviction_keeps_order() {
        let (mut tx, mut rx) = heartbeat_ring(4);
        for i in 0..4u64 {
            tx.push(hb(1, i), Timestamp::ZERO);
        }
        assert_eq!(rx.pop().map(|(h, _)| h.seq), Some(0));
        for i in 4..8u64 {
            tx.push(hb(1, i), Timestamp::ZERO); // evicts 1, 2, 3
        }
        let got: Vec<u64> = std::iter::from_fn(|| rx.pop().map(|(h, _)| h.seq)).collect();
        assert_eq!(got, vec![4, 5, 6, 7]);
        assert_eq!(tx.watch().dropped(), 3);
    }

    #[test]
    fn cross_thread_no_overflow_delivers_everything() {
        let (mut tx, mut rx) = heartbeat_ring(1 << 14);
        const N: u64 = 50_000;
        let producer = std::thread::spawn(move || {
            let watch = tx.watch();
            let capacity = watch.capacity();
            for i in 0..N {
                // Throttle below capacity so eviction never fires — on a
                // single-core host the producer can otherwise lap the
                // consumer by a full ring between preemptions.
                while watch.len() >= capacity - 1 {
                    std::thread::yield_now();
                }
                tx.push(hb(7, i), Timestamp::from_nanos(i));
            }
            tx
        });
        let mut next = 0u64;
        while next < N {
            if let Some((h, _)) = rx.pop() {
                assert_eq!(h.seq, next, "SPSC order violated");
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        let tx = producer.join().expect("producer");
        assert_eq!(tx.watch().dropped(), 0);
        assert!(rx.pop().is_none());
    }

    #[test]
    fn cross_thread_with_eviction_stays_consistent() {
        // A tiny ring under sustained pressure: every popped frame must
        // be internally consistent (seq == sent_at nanos == arrival
        // nanos) and seqs must be strictly increasing (drop-oldest never
        // reorders or duplicates).
        use std::sync::atomic::AtomicBool;
        let (mut tx, mut rx) = heartbeat_ring(8);
        const N: u64 = 100_000;
        let done = Arc::new(AtomicBool::new(false));
        let p_done = Arc::clone(&done);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push(hb(3, i), Timestamp::from_nanos(i));
            }
            p_done.store(true, Ordering::Release);
            tx
        });
        let mut last: Option<u64> = None;
        let mut got = 0u64;
        loop {
            match rx.pop() {
                Some((h, at)) => {
                    assert_eq!(h.sent_at.as_nanos(), h.seq, "torn slot read");
                    assert_eq!(at.as_nanos(), h.seq, "torn arrival read");
                    if let Some(prev) = last {
                        assert!(h.seq > prev, "reordered: {} after {prev}", h.seq);
                    }
                    last = Some(h.seq);
                    got += 1;
                }
                None => {
                    // Only quit once the producer is done AND the ring
                    // is still empty on a fresh look (the flag read and
                    // the empty pop race the final pushes otherwise).
                    if done.load(Ordering::Acquire) && rx.watch().is_empty() {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        let tx = producer.join().expect("producer");
        // Everything was either delivered or counted as dropped.
        assert_eq!(got + tx.watch().dropped(), N);
    }
}
