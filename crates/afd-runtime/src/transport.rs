//! Pluggable heartbeat transports.
//!
//! A [`Transport`] moves opaque frames between a heartbeat sender and a
//! monitor. Two implementations ship: [`ChannelTransport`] (in-process
//! bounded lossy queue, used by the deterministic chaos harness and by
//! same-process deployments) and [`UdpTransport`] (a non-blocking
//! `std::net::UdpSocket`, the paper's actual deployment medium —
//! heartbeats tolerate loss, so UDP is the right fit).
//!
//! Both are polling transports: `try_recv` never blocks, which lets one
//! loop service the transport, the detectors, and the watchdog tick
//! without extra threads.
//!
//! # The zero-allocation batched path
//!
//! The per-frame `try_recv` returns an owned `Vec<u8>` — one heap
//! allocation per 28-byte heartbeat, which is pure garbage at intake
//! rates of millions of frames per second. The hot path is
//! [`Transport::recv_batch`]: the caller keeps a reusable [`FrameBatch`]
//! arena of inline `[u8; MAX_DATAGRAM]` slots and the transport copies
//! pending frames straight into it ([`UdpTransport`] receives datagrams
//! directly into the slots; [`ChannelTransport`] copies out of its
//! inline queue entries). After the arena is built, steady-state intake
//! performs **zero heap allocations per frame** — enforced by the
//! `no-alloc-in-hot-path` afd-lint rule over this file. Batches are
//! also the clock-amortization unit: intake paths take one arrival
//! stamp per `recv_batch` call and apply it to every frame in the
//! batch (skew bounded by one batch's handling time — DESIGN.md §7j).
//!
//! # Bounded, lossy channels
//!
//! [`ChannelTransport`] used to sit on an unbounded `mpsc` channel: a
//! stalled monitor grew the queue without bound. It is now a bounded
//! deque with **drop-oldest** overflow — the same policy as a full UDP
//! socket buffer, and the right one for heartbeats (the newest frame is
//! the evidence a detector wants; the oldest is the most superseded).
//! Drops are counted and exportable via [`ChannelTransport::export_metrics`].

use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::error::TransportError;

/// Maximum frame size accepted by the transports.
pub const MAX_DATAGRAM: usize = 1024;

/// Receive-buffer size: one byte more than [`MAX_DATAGRAM`], so that a
/// `recv` filling the whole buffer *proves* the datagram exceeded the
/// limit (portable truncation detection without platform `MSG_TRUNC`
/// flags). A slot is only ever committed with ≤ [`MAX_DATAGRAM`] bytes.
pub const PROBE_LEN: usize = MAX_DATAGRAM + 1;

/// Frames an in-process channel holds before dropping the oldest
/// (default for [`ChannelTransport::pair`]).
pub const DEFAULT_CHANNEL_CAPACITY: usize = 16 * 1024;

/// One reusable intake slot: an inline buffer plus the received length.
/// The buffer is probe-sized ([`PROBE_LEN`]) so receives can detect
/// oversize datagrams, but committed lengths never exceed
/// [`MAX_DATAGRAM`].
struct FrameSlot {
    len: u16,
    buf: [u8; PROBE_LEN],
}

/// A reusable arena of inline frame slots for [`Transport::recv_batch`].
///
/// Allocated once (construction is the only allocation) and recycled
/// with [`clear`](FrameBatch::clear) every drain round; filling and
/// iterating it never touches the heap.
pub struct FrameBatch {
    slots: Box<[FrameSlot]>,
    len: usize,
}

impl std::fmt::Debug for FrameBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameBatch")
            .field("len", &self.len)
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl FrameBatch {
    /// Creates an arena of `slots` inline buffers (floored at 1).
    pub fn with_capacity(slots: usize) -> Self {
        let slots: Box<[FrameSlot]> = (0..slots.max(1))
            .map(|_| FrameSlot {
                len: 0,
                buf: [0u8; PROBE_LEN],
            })
            .collect();
        FrameBatch { slots, len: 0 }
    }

    /// Number of frames currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no frames are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if every slot is filled.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Forgets all held frames (slots are reused in place).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Copies `frame` into the next slot. Returns `false` (frame not
    /// stored) if the batch is full or the frame exceeds
    /// [`MAX_DATAGRAM`].
    pub fn push(&mut self, frame: &[u8]) -> bool {
        if self.is_full() || frame.len() > MAX_DATAGRAM {
            return false;
        }
        let slot = &mut self.slots[self.len];
        slot.buf[..frame.len()].copy_from_slice(frame);
        slot.len = frame.len() as u16;
        self.len += 1;
        true
    }

    /// Hands the next free slot's probe-sized buffer to `fill`; if it
    /// returns `Some(n)` with `n ≤ MAX_DATAGRAM`, the slot is committed
    /// as an `n`-byte frame. Returns `false` without calling `fill` if
    /// the batch is full, and refuses to commit an `n` beyond
    /// [`MAX_DATAGRAM`] — a fill of all [`PROBE_LEN`] bytes means the
    /// datagram was oversize and must be dropped, not truncated. This is
    /// the receive-directly-into-the-arena path used by
    /// [`UdpTransport`].
    pub fn push_with(&mut self, fill: impl FnOnce(&mut [u8; PROBE_LEN]) -> Option<usize>) -> bool {
        if self.is_full() {
            return false;
        }
        let slot = &mut self.slots[self.len];
        match fill(&mut slot.buf) {
            Some(n) if n <= MAX_DATAGRAM => {
                slot.len = n as u16;
                self.len += 1;
                true
            }
            _ => false,
        }
    }

    /// Iterates the held frames in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.slots[..self.len]
            .iter()
            .map(|s| &s.buf[..usize::from(s.len)])
    }
}

/// A bidirectional, unreliable, frame-oriented transport.
pub trait Transport: Send {
    /// Sends one frame toward the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the frame could not be handed to the
    /// medium. An `Ok` is *not* a delivery guarantee — the medium may still
    /// lose the frame, which is exactly what failure detectors exist for.
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError>;

    /// Receives one pending frame, if any, without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the medium itself failed (as opposed
    /// to simply having nothing to deliver).
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError>;

    /// Drains pending frames into `batch` (up to its free capacity)
    /// without blocking, returning how many were stored.
    ///
    /// The default implementation loops over [`try_recv`](Transport::try_recv)
    /// — correct for any transport (wrappers like
    /// [`FaultInjector`](crate::fault::FaultInjector) get per-frame fault
    /// semantics for free) but it allocates per frame. Transports on the
    /// hot path override it with a zero-allocation drain. Frames longer
    /// than [`MAX_DATAGRAM`] are discarded, matching UDP's MTU.
    ///
    /// A return of `batch.capacity()` means the medium may hold more;
    /// anything less means it was drained.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the medium itself failed.
    fn recv_batch(&mut self, batch: &mut FrameBatch) -> Result<usize, TransportError> {
        let mut got = 0usize;
        while !batch.is_full() {
            match self.try_recv()? {
                Some(frame) => {
                    if batch.push(&frame) {
                        got += 1;
                    }
                }
                None => break,
            }
        }
        Ok(got)
    }
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        (**self).send(frame)
    }
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        (**self).try_recv()
    }
    fn recv_batch(&mut self, batch: &mut FrameBatch) -> Result<usize, TransportError> {
        (**self).recv_batch(batch)
    }
}

/// One queued in-process frame: heartbeat-sized payloads live inline;
/// anything larger (rare, and never on the hot path) spills to the heap.
struct QueuedFrame {
    len: u16,
    inline: [u8; INLINE_FRAME],
    spill: Option<Vec<u8>>,
}

/// Inline capacity of a queued channel frame; covers every wire frame
/// ([`FRAME_LEN`](crate::wire::FRAME_LEN) is 28) with room to spare.
const INLINE_FRAME: usize = 64;

impl QueuedFrame {
    fn new(frame: &[u8]) -> Self {
        if frame.len() <= INLINE_FRAME {
            let mut inline = [0u8; INLINE_FRAME];
            inline[..frame.len()].copy_from_slice(frame);
            QueuedFrame {
                len: frame.len() as u16,
                inline,
                spill: None,
            }
        } else {
            QueuedFrame {
                len: frame.len() as u16,
                inline: [0u8; INLINE_FRAME],
                // lint:allow(no-alloc-in-hot-path, oversize-frame spill; heartbeat frames are 28 bytes and stay inline)
                spill: Some(frame.to_vec()),
            }
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.spill {
            Some(v) => v,
            None => &self.inline[..usize::from(self.len)],
        }
    }
}

/// The mutexed state of one channel direction.
struct ChannelQueue {
    frames: VecDeque<QueuedFrame>,
    /// Frames evicted by drop-oldest overflow.
    dropped: u64,
}

/// One direction of an in-process channel, shared by exactly two
/// endpoints (the sender holds it as `tx`, the receiver as `rx`).
struct ChannelCore {
    queue: Mutex<ChannelQueue>,
    capacity: usize,
}

impl ChannelCore {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(ChannelCore {
            queue: Mutex::new(ChannelQueue {
                frames: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
            capacity,
        })
    }

    /// Locks the queue, recovering from a poisoned mutex (the state is a
    /// plain deque plus a counter — always valid).
    fn lock(&self) -> MutexGuard<'_, ChannelQueue> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// An in-process transport over a pair of crossed bounded lossy queues.
///
/// What one endpoint sends, the other receives, FIFO, until the queue is
/// full — then the **oldest** queued frame is dropped (and counted) to
/// make room, exactly like a full UDP socket buffer. Memory is bounded
/// by construction: a stalled monitor can no longer grow the queue
/// without limit.
pub struct ChannelTransport {
    tx: Arc<ChannelCore>,
    rx: Arc<ChannelCore>,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("capacity", &self.tx.capacity)
            .finish()
    }
}

impl ChannelTransport {
    /// Creates two connected endpoints with the default per-direction
    /// capacity ([`DEFAULT_CHANNEL_CAPACITY`] frames).
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        ChannelTransport::pair_bounded(DEFAULT_CHANNEL_CAPACITY)
    }

    /// Creates two connected endpoints holding at most `capacity` frames
    /// per direction (floored at 1); overflow drops the oldest frame.
    pub fn pair_bounded(capacity: usize) -> (ChannelTransport, ChannelTransport) {
        let capacity = capacity.max(1);
        let a_to_b = ChannelCore::new(capacity);
        let b_to_a = ChannelCore::new(capacity);
        (
            ChannelTransport {
                tx: Arc::clone(&a_to_b),
                rx: Arc::clone(&b_to_a),
            },
            ChannelTransport {
                tx: b_to_a,
                rx: a_to_b,
            },
        )
    }

    /// Frames dropped (oldest-first overflow) from the queue this
    /// endpoint *receives* from.
    pub fn rx_dropped(&self) -> u64 {
        self.rx.lock().dropped
    }

    /// Frames dropped (oldest-first overflow) from the queue this
    /// endpoint *sends* into.
    pub fn tx_dropped(&self) -> u64 {
        self.tx.lock().dropped
    }

    /// Frames currently queued for this endpoint to receive.
    pub fn rx_depth(&self) -> usize {
        self.rx.lock().frames.len()
    }

    /// Publishes the drop counters into `registry` under
    /// `transport.channel.*`.
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        registry
            .counter("transport.channel.rx_dropped")
            .set(self.rx_dropped());
        registry
            .counter("transport.channel.tx_dropped")
            .set(self.tx_dropped());
        registry
            .gauge("transport.channel.rx_depth")
            .set(self.rx_depth() as f64);
    }

    /// `true` while the other endpoint of `core` is still alive. Each
    /// direction is referenced by exactly two endpoints, so a strong
    /// count below 2 means the peer was dropped.
    fn peer_alive(core: &Arc<ChannelCore>) -> bool {
        Arc::strong_count(core) >= 2
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        if !ChannelTransport::peer_alive(&self.tx) {
            return Err(TransportError::Disconnected);
        }
        if frame.len() > MAX_DATAGRAM {
            return Err(TransportError::Io(format!(
                "frame of {} bytes exceeds MAX_DATAGRAM ({MAX_DATAGRAM})",
                frame.len()
            )));
        }
        let mut q = self.tx.lock();
        if q.frames.len() >= self.tx.capacity {
            q.frames.pop_front();
            q.dropped += 1;
        }
        q.frames.push_back(QueuedFrame::new(frame));
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut q = self.rx.lock();
        match q.frames.pop_front() {
            // lint:allow(no-alloc-in-hot-path, legacy per-frame path; batched intake uses recv_batch)
            Some(frame) => Ok(Some(frame.as_slice().to_vec())),
            None => {
                drop(q);
                if ChannelTransport::peer_alive(&self.rx) {
                    Ok(None)
                } else {
                    Err(TransportError::Disconnected)
                }
            }
        }
    }

    fn recv_batch(&mut self, batch: &mut FrameBatch) -> Result<usize, TransportError> {
        let mut got = 0usize;
        let mut q = self.rx.lock();
        while !batch.is_full() {
            match q.frames.pop_front() {
                Some(frame) => {
                    if batch.push(frame.as_slice()) {
                        got += 1;
                    }
                }
                None => break,
            }
        }
        let empty = q.frames.is_empty();
        drop(q);
        if got == 0 && empty && !ChannelTransport::peer_alive(&self.rx) {
            return Err(TransportError::Disconnected);
        }
        Ok(got)
    }
}

/// A non-blocking UDP transport between two socket addresses.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    peer: SocketAddr,
    /// Datagrams dropped because they exceeded [`MAX_DATAGRAM`]. Before
    /// this counter existed the receive path read into a
    /// `MAX_DATAGRAM`-sized buffer, so the kernel silently truncated
    /// oversize datagrams and the tail-less frame could still decode —
    /// now the probe-sized receive detects and drops them.
    oversize: u64,
}

impl UdpTransport {
    /// Binds `local` and directs sends at `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the socket cannot be bound or put into
    /// non-blocking mode.
    pub fn bind(local: SocketAddr, peer: SocketAddr) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(local)?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport {
            socket,
            peer,
            oversize: 0,
        })
    }

    /// Creates two connected endpoints on loopback with OS-chosen ports.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if loopback sockets cannot be created.
    pub fn loopback_pair() -> Result<(UdpTransport, UdpTransport), TransportError> {
        let any = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0));
        let a = UdpSocket::bind(any)?;
        let b = UdpSocket::bind(any)?;
        a.set_nonblocking(true)?;
        b.set_nonblocking(true)?;
        let a_addr = a.local_addr()?;
        let b_addr = b.local_addr()?;
        Ok((
            UdpTransport {
                socket: a,
                peer: b_addr,
                oversize: 0,
            },
            UdpTransport {
                socket: b,
                peer: a_addr,
                oversize: 0,
            },
        ))
    }

    /// The local socket address.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the OS cannot report the address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.socket.local_addr()?)
    }

    /// Datagrams dropped because they exceeded [`MAX_DATAGRAM`] —
    /// detected, not silently truncated.
    pub fn oversize_dropped(&self) -> u64 {
        self.oversize
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        // Reject oversize frames at the sender: the receive side would
        // drop them anyway, and surfacing the error here names the bug.
        if frame.len() > MAX_DATAGRAM {
            return Err(TransportError::Io(format!(
                "frame of {} bytes exceeds MAX_DATAGRAM ({MAX_DATAGRAM})",
                frame.len()
            )));
        }
        match self.socket.send_to(frame, self.peer) {
            Ok(_) => Ok(()),
            // A full send buffer is a transient fault: report it as an I/O
            // error and let the retry layer back off.
            Err(e) => Err(e.into()),
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        // Probe-sized buffer: n == PROBE_LEN proves the datagram was
        // bigger than MAX_DATAGRAM (the kernel truncated it to fit), and
        // n == MAX_DATAGRAM is now unambiguously a full-size valid frame.
        let mut buf = [0u8; PROBE_LEN];
        loop {
            return match self.socket.recv_from(&mut buf) {
                Ok((n, from)) => {
                    // Datagrams from strangers are noise, not heartbeats.
                    if from != self.peer {
                        continue;
                    }
                    if n > MAX_DATAGRAM {
                        self.oversize += 1;
                        continue;
                    }
                    // lint:allow(no-alloc-in-hot-path, legacy per-frame path; batched intake uses recv_batch)
                    Ok(Some(buf[..n].to_vec()))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                // A prior send to an unbound peer can surface here as
                // ECONNREFUSED; the peer being down is the detector's
                // business, not a transport failure.
                Err(e) if e.kind() == ErrorKind::ConnectionRefused => Ok(None),
                Err(e) => Err(e.into()),
            };
        }
    }

    /// Drains queued datagrams directly into the arena slots — one
    /// `recv_from` per datagram, zero copies beyond the kernel's, zero
    /// heap allocations. A datagram filling the whole probe-sized slot
    /// exceeded [`MAX_DATAGRAM`]: it is counted
    /// ([`oversize_dropped`](UdpTransport::oversize_dropped)) and
    /// dropped rather than silently accepted as a truncated frame.
    fn recv_batch(&mut self, batch: &mut FrameBatch) -> Result<usize, TransportError> {
        let mut got = 0usize;
        let mut oversize = 0u64;
        let mut failure: Option<TransportError> = None;
        let mut drained = false;
        let peer = self.peer;
        let socket = &self.socket;
        while !batch.is_full() && !drained && failure.is_none() {
            batch.push_with(|buf| match socket.recv_from(buf) {
                Ok((n, from)) if from == peer => {
                    if n > MAX_DATAGRAM {
                        oversize += 1;
                        return None;
                    }
                    got += 1;
                    Some(n)
                }
                // Stranger datagram: consume and discard, keep draining.
                Ok(_) => None,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    drained = true;
                    None
                }
                Err(e) if e.kind() == ErrorKind::ConnectionRefused => None,
                Err(e) => {
                    failure = Some(e.into());
                    None
                }
            });
        }
        self.oversize += oversize;
        match failure {
            Some(e) => Err(e),
            None => Ok(got),
        }
    }
}

/// A transport connected to nothing: sends are accepted and discarded,
/// receives never yield a frame.
///
/// Exists for engine configurations whose real intake happens on
/// [`lane`](crate::lane) sockets — the engine's type-level transport
/// slot is filled with a `NullTransport` that the intake loop would
/// drain forever-empty if it ran at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTransport;

impl Transport for NullTransport {
    fn send(&mut self, _frame: &[u8]) -> Result<(), TransportError> {
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        Ok(None)
    }

    fn recv_batch(&mut self, _batch: &mut FrameBatch) -> Result<usize, TransportError> {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_delivers_both_ways() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"ping").unwrap();
        b.send(b"pong").unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(b"ping".to_vec()));
        assert_eq!(a.try_recv().unwrap(), Some(b"pong".to_vec()));
        assert_eq!(a.try_recv().unwrap(), None);
    }

    #[test]
    fn channel_disconnect_is_typed() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert_eq!(a.send(b"x"), Err(TransportError::Disconnected));
        assert_eq!(a.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn channel_buffered_frames_arrive_before_disconnect() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"last words").unwrap();
        drop(a);
        assert_eq!(b.try_recv().unwrap(), Some(b"last words".to_vec()));
        assert_eq!(b.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn channel_overflow_drops_oldest_and_counts() {
        let (mut a, mut b) = ChannelTransport::pair_bounded(3);
        for i in 0..5u8 {
            a.send(&[i]).unwrap();
        }
        assert_eq!(a.tx_dropped(), 2);
        assert_eq!(b.rx_dropped(), 2);
        // Survivors are the newest three, in order.
        assert_eq!(b.try_recv().unwrap(), Some(vec![2]));
        assert_eq!(b.try_recv().unwrap(), Some(vec![3]));
        assert_eq!(b.try_recv().unwrap(), Some(vec![4]));
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn channel_rejects_oversize_frames() {
        let (mut a, _b) = ChannelTransport::pair();
        let big = [0u8; MAX_DATAGRAM + 1];
        assert!(matches!(a.send(&big), Err(TransportError::Io(_))));
    }

    #[test]
    fn channel_recv_batch_is_fifo_and_reports_depth() {
        let (mut a, mut b) = ChannelTransport::pair();
        for i in 0..10u8 {
            a.send(&[i, i]).unwrap();
        }
        assert_eq!(b.rx_depth(), 10);
        let mut batch = FrameBatch::with_capacity(4);
        assert_eq!(b.recv_batch(&mut batch).unwrap(), 4);
        let got: Vec<Vec<u8>> = batch.iter().map(<[u8]>::to_vec).collect();
        assert_eq!(got, vec![vec![0, 0], vec![1, 1], vec![2, 2], vec![3, 3]]);
        batch.clear();
        assert_eq!(b.recv_batch(&mut batch).unwrap(), 4);
        batch.clear();
        assert_eq!(b.recv_batch(&mut batch).unwrap(), 2);
        batch.clear();
        assert_eq!(b.recv_batch(&mut batch).unwrap(), 0);
    }

    #[test]
    fn channel_recv_batch_signals_disconnect_only_when_drained() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"x").unwrap();
        drop(a);
        let mut batch = FrameBatch::with_capacity(4);
        assert_eq!(b.recv_batch(&mut batch).unwrap(), 1);
        batch.clear();
        assert_eq!(b.recv_batch(&mut batch), Err(TransportError::Disconnected));
    }

    #[test]
    fn channel_spills_large_frames_intact() {
        let (mut a, mut b) = ChannelTransport::pair();
        let frame: Vec<u8> = (0..200u8).collect();
        a.send(&frame).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(frame));
    }

    #[test]
    fn frame_batch_push_rules() {
        let mut batch = FrameBatch::with_capacity(2);
        assert!(batch.is_empty());
        assert!(batch.push(b"a"));
        assert!(batch.push(b"bb"));
        assert!(batch.is_full());
        assert!(!batch.push(b"c"), "full batch rejects");
        batch.clear();
        assert!(!batch.push(&[0u8; MAX_DATAGRAM + 1]), "oversize rejects");
        assert!(batch.push(&[0u8; MAX_DATAGRAM]), "exactly MTU fits");
    }

    #[test]
    fn default_recv_batch_falls_back_to_try_recv() {
        // A minimal transport that only implements the scalar methods.
        struct Scalar(VecDeque<Vec<u8>>);
        impl Transport for Scalar {
            fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
                self.0.push_back(frame.to_vec());
                Ok(())
            }
            fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
                Ok(self.0.pop_front())
            }
        }
        let mut t = Scalar(VecDeque::new());
        t.send(b"one").unwrap();
        t.send(b"two").unwrap();
        let mut batch = FrameBatch::with_capacity(8);
        assert_eq!(t.recv_batch(&mut batch).unwrap(), 2);
        let got: Vec<Vec<u8>> = batch.iter().map(<[u8]>::to_vec).collect();
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn udp_loopback_roundtrip() {
        let (mut a, mut b) = UdpTransport::loopback_pair().expect("loopback sockets");
        a.send(b"heartbeat").unwrap();
        // Loopback delivery is fast but asynchronous; poll briefly.
        let mut got = None;
        for _ in 0..200 {
            if let Some(frame) = b.try_recv().unwrap() {
                got = Some(frame);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, Some(b"heartbeat".to_vec()));
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn udp_ignores_frames_from_strangers() {
        let (_a, mut b) = UdpTransport::loopback_pair().expect("loopback sockets");
        let stranger = UdpSocket::bind("127.0.0.1:0").unwrap();
        stranger
            .send_to(b"mallory", b.local_addr().unwrap())
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn push_with_refuses_probe_sized_commit() {
        let mut batch = FrameBatch::with_capacity(2);
        assert!(
            !batch.push_with(|_| Some(PROBE_LEN)),
            "a fill of the whole probe buffer is an oversize datagram"
        );
        assert!(batch.push_with(|_| Some(MAX_DATAGRAM)), "exactly MTU fits");
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn udp_oversize_datagram_is_dropped_and_counted_not_truncated() {
        // Regression: before the probe-sized receive buffer, a datagram
        // of MAX_DATAGRAM+1 bytes was silently truncated to MAX_DATAGRAM
        // and accepted as a frame. Send one from the peer's own socket
        // (bypassing the send-side size guard) and a valid one after it.
        let (a, mut b) = UdpTransport::loopback_pair().expect("loopback sockets");
        let big = [0u8; MAX_DATAGRAM + 1];
        a.socket.send_to(&big, a.peer).unwrap();
        a.socket.send_to(b"ok", a.peer).unwrap();
        let mut batch = FrameBatch::with_capacity(8);
        let mut got = 0usize;
        for _ in 0..200 {
            got += b.recv_batch(&mut batch).unwrap();
            if got >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, 1, "only the valid datagram is a frame");
        assert_eq!(b.oversize_dropped(), 1, "the oversize one was counted");
        let frames: Vec<Vec<u8>> = batch.iter().map(<[u8]>::to_vec).collect();
        assert_eq!(frames, vec![b"ok".to_vec()]);
        // The scalar path detects it too.
        a.socket.send_to(&big, a.peer).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(b.oversize_dropped(), 2);
    }

    #[test]
    fn udp_send_rejects_oversize_frames() {
        let (mut a, _b) = UdpTransport::loopback_pair().expect("loopback sockets");
        let big = [0u8; MAX_DATAGRAM + 1];
        assert!(matches!(a.send(&big), Err(TransportError::Io(_))));
    }

    #[test]
    fn null_transport_is_a_black_hole() {
        let mut t = NullTransport;
        t.send(b"into the void").unwrap();
        assert_eq!(t.try_recv().unwrap(), None);
        let mut batch = FrameBatch::with_capacity(2);
        assert_eq!(t.recv_batch(&mut batch).unwrap(), 0);
        assert!(batch.is_empty());
    }

    #[test]
    fn udp_recv_batch_drains_many_datagrams() {
        let (mut a, mut b) = UdpTransport::loopback_pair().expect("loopback sockets");
        for i in 0..8u8 {
            a.send(&[i]).unwrap();
        }
        let mut batch = FrameBatch::with_capacity(16);
        let mut got = 0usize;
        for _ in 0..200 {
            got += b.recv_batch(&mut batch).unwrap();
            if got >= 8 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, 8);
        let frames: Vec<Vec<u8>> = batch.iter().map(<[u8]>::to_vec).collect();
        assert_eq!(frames, (0..8u8).map(|i| vec![i]).collect::<Vec<_>>());
    }
}
