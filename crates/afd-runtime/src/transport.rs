//! Pluggable heartbeat transports.
//!
//! A [`Transport`] moves opaque frames between a heartbeat sender and a
//! monitor. Two implementations ship: [`ChannelTransport`] (in-process
//! `mpsc`, used by the deterministic chaos harness and by same-process
//! deployments) and [`UdpTransport`] (a non-blocking `std::net::UdpSocket`,
//! the paper's actual deployment medium — heartbeats tolerate loss, so UDP
//! is the right fit).
//!
//! Both are polling transports: `try_recv` never blocks, which lets one
//! loop service the transport, the detectors, and the watchdog tick
//! without extra threads.

use std::io::ErrorKind;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};

use crate::error::TransportError;

/// A bidirectional, unreliable, frame-oriented transport.
pub trait Transport: Send {
    /// Sends one frame toward the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the frame could not be handed to the
    /// medium. An `Ok` is *not* a delivery guarantee — the medium may still
    /// lose the frame, which is exactly what failure detectors exist for.
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError>;

    /// Receives one pending frame, if any, without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the medium itself failed (as opposed
    /// to simply having nothing to deliver).
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError>;
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        (**self).send(frame)
    }
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        (**self).try_recv()
    }
}

/// An in-process transport over a pair of crossed `mpsc` channels.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Creates two connected endpoints: what one sends, the other receives.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

/// Maximum datagram size accepted by [`UdpTransport`].
pub const MAX_DATAGRAM: usize = 1024;

/// A non-blocking UDP transport between two socket addresses.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    peer: SocketAddr,
}

impl UdpTransport {
    /// Binds `local` and directs sends at `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the socket cannot be bound or put into
    /// non-blocking mode.
    pub fn bind(local: SocketAddr, peer: SocketAddr) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(local)?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport { socket, peer })
    }

    /// Creates two connected endpoints on loopback with OS-chosen ports.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if loopback sockets cannot be created.
    pub fn loopback_pair() -> Result<(UdpTransport, UdpTransport), TransportError> {
        let any = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0));
        let a = UdpSocket::bind(any)?;
        let b = UdpSocket::bind(any)?;
        a.set_nonblocking(true)?;
        b.set_nonblocking(true)?;
        let a_addr = a.local_addr()?;
        let b_addr = b.local_addr()?;
        Ok((
            UdpTransport {
                socket: a,
                peer: b_addr,
            },
            UdpTransport {
                socket: b,
                peer: a_addr,
            },
        ))
    }

    /// The local socket address.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the OS cannot report the address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.socket.local_addr()?)
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        match self.socket.send_to(frame, self.peer) {
            Ok(_) => Ok(()),
            // A full send buffer is a transient fault: report it as an I/O
            // error and let the retry layer back off.
            Err(e) => Err(e.into()),
        }
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut buf = [0u8; MAX_DATAGRAM];
        loop {
            return match self.socket.recv_from(&mut buf) {
                Ok((n, from)) => {
                    // Datagrams from strangers are noise, not heartbeats.
                    if from != self.peer {
                        continue;
                    }
                    Ok(Some(buf[..n].to_vec()))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                // A prior send to an unbound peer can surface here as
                // ECONNREFUSED; the peer being down is the detector's
                // business, not a transport failure.
                Err(e) if e.kind() == ErrorKind::ConnectionRefused => Ok(None),
                Err(e) => Err(e.into()),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_delivers_both_ways() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(b"ping").unwrap();
        b.send(b"pong").unwrap();
        assert_eq!(b.try_recv().unwrap(), Some(b"ping".to_vec()));
        assert_eq!(a.try_recv().unwrap(), Some(b"pong".to_vec()));
        assert_eq!(a.try_recv().unwrap(), None);
    }

    #[test]
    fn channel_disconnect_is_typed() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert_eq!(a.send(b"x"), Err(TransportError::Disconnected));
        assert_eq!(a.try_recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn udp_loopback_roundtrip() {
        let (mut a, mut b) = UdpTransport::loopback_pair().expect("loopback sockets");
        a.send(b"heartbeat").unwrap();
        // Loopback delivery is fast but asynchronous; poll briefly.
        let mut got = None;
        for _ in 0..200 {
            if let Some(frame) = b.try_recv().unwrap() {
                got = Some(frame);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, Some(b"heartbeat".to_vec()));
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn udp_ignores_frames_from_strangers() {
        let (_a, mut b) = UdpTransport::loopback_pair().expect("loopback sockets");
        let stranger = UdpSocket::bind("127.0.0.1:0").unwrap();
        stranger
            .send_to(b"mallory", b.local_addr().unwrap())
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(b.try_recv().unwrap(), None);
    }
}
