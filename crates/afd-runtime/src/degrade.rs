//! Graceful degradation for adaptive detectors under sample starvation.
//!
//! Adaptive detectors (Chen, φ, κ) extrapolate from a window of recent
//! inter-arrival samples. When the network starves that window — a long
//! partition, a burst of loss, a crashed sender — the window's contents go
//! stale and the estimate is no longer trustworthy. This wrapper detects
//! the starvation and falls back to the one detector that needs no window
//! at all: the simple elapsed-time detector of §5.1 (Algorithm 4).
//!
//! The fallback is *offset-continuous*: at the moment of the switch the
//! degraded output starts from the inner detector's current level and adds
//! elapsed time since the last heartbeat. The emitted level therefore never
//! decreases during continued silence, so Accruement (Property 1) is
//! preserved across the switch; and the moment heartbeats refill the
//! window, the wrapper hands back to the inner detector.

use std::collections::VecDeque;

use afd_core::accrual::AccrualFailureDetector;
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::{Duration, Timestamp};

/// When to consider the sampling window starved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Minimum number of heartbeats inside `horizon` for the inner
    /// detector's estimate to be trusted.
    pub min_samples: usize,
    /// How far back a heartbeat still counts as "recent".
    pub horizon: Duration,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            min_samples: 3,
            horizon: Duration::from_secs(10),
        }
    }
}

impl DegradeConfig {
    /// A config sized for a known heartbeat cadence: the window counts as
    /// healthy while at least `min_samples` heartbeats arrived within
    /// `min_samples + 2` expected intervals.
    pub fn for_interval(interval: Duration, min_samples: usize) -> Self {
        DegradeConfig {
            min_samples,
            horizon: interval * (min_samples as u32 + 2),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Nominal,
    Degraded {
        /// Inner level at the moment of the switch — the floor of all
        /// degraded output.
        offset: f64,
        /// When the switch happened (reference point if no heartbeat was
        /// ever seen).
        since: Timestamp,
    },
}

/// An [`AccrualFailureDetector`] wrapper with a starved-window fallback.
#[derive(Debug, Clone)]
pub struct GracefulDegradation<D> {
    inner: D,
    config: DegradeConfig,
    recent: VecDeque<Timestamp>,
    last_heartbeat: Option<Timestamp>,
    mode: Mode,
    degrade_events: u64,
}

impl<D: AccrualFailureDetector> GracefulDegradation<D> {
    /// Wraps `inner` with the given starvation policy.
    pub fn new(inner: D, config: DegradeConfig) -> Self {
        GracefulDegradation {
            inner,
            config,
            recent: VecDeque::new(),
            last_heartbeat: None,
            mode: Mode::Nominal,
            degrade_events: 0,
        }
    }

    /// `true` while the fallback is active.
    pub fn is_degraded(&self) -> bool {
        matches!(self.mode, Mode::Degraded { .. })
    }

    /// How many times the wrapper has entered degraded mode.
    pub fn degrade_events(&self) -> u64 {
        self.degrade_events
    }

    /// Publishes degradation counters into `registry` as
    /// `degrade.<name>.events` and `degrade.<name>.active`.
    pub fn export_metrics(&self, registry: &afd_obs::Registry, name: &str) {
        registry
            .counter(&format!("degrade.{name}.events"))
            .set(self.degrade_events);
        registry
            .gauge(&format!("degrade.{name}.active"))
            .set(if self.is_degraded() { 1.0 } else { 0.0 });
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped detector, mutably.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    fn prune(&mut self, now: Timestamp) {
        while let Some(&front) = self.recent.front() {
            if now.saturating_duration_since(front) > self.config.horizon {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    fn starved(&self) -> bool {
        self.recent.len() < self.config.min_samples
    }
}

impl<D: AccrualFailureDetector> AccrualFailureDetector for GracefulDegradation<D> {
    fn record_heartbeat(&mut self, arrival: Timestamp) {
        self.inner.record_heartbeat(arrival);
        self.last_heartbeat = Some(self.last_heartbeat.map_or(arrival, |l| l.max(arrival)));
        self.recent.push_back(arrival);
        self.prune(arrival);
    }

    fn suspicion_level(&mut self, now: Timestamp) -> SuspicionLevel {
        self.prune(now);
        let starved = self.starved();
        match self.mode {
            Mode::Nominal if starved => {
                // Capture the inner level as the continuity offset before
                // abandoning its estimate.
                let offset = self.inner.suspicion_level(now).value();
                self.mode = Mode::Degraded { offset, since: now };
                self.degrade_events += 1;
            }
            Mode::Degraded { .. } if !starved => {
                // Window refilled: the inner estimate is trustworthy again.
                self.mode = Mode::Nominal;
            }
            _ => {}
        }
        match self.mode {
            Mode::Nominal => self.inner.suspicion_level(now),
            Mode::Degraded { offset, since } => {
                // Simple elapsed-time accrual from the switch point. The
                // output is clamped below by `offset`, so it never dips
                // under what was already reported.
                let anchor = self.last_heartbeat.unwrap_or(since);
                let elapsed = now.saturating_duration_since(anchor).as_secs_f64();
                SuspicionLevel::clamped(offset + elapsed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_detectors::phi::{PhiAccrual, PhiConfig};
    use afd_detectors::simple::SimpleAccrual;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs_f64(s)
    }

    fn wrapped_phi() -> GracefulDegradation<PhiAccrual> {
        GracefulDegradation::new(
            PhiAccrual::new(PhiConfig::default()).unwrap(),
            DegradeConfig {
                min_samples: 3,
                horizon: Duration::from_secs(5),
            },
        )
    }

    #[test]
    fn nominal_while_window_is_healthy() {
        let mut d = wrapped_phi();
        for k in 1..=20 {
            d.record_heartbeat(ts(k as f64));
        }
        let level = d.suspicion_level(ts(20.5));
        assert!(!d.is_degraded());
        assert!(level.value() < 1.0);
    }

    #[test]
    fn starvation_triggers_fallback_and_recovery_exits_it() {
        let mut d = wrapped_phi();
        for k in 1..=20 {
            d.record_heartbeat(ts(k as f64));
        }
        // Silence for longer than the 5 s horizon: the window starves.
        let l1 = d.suspicion_level(ts(27.0));
        assert!(d.is_degraded());
        assert_eq!(d.degrade_events(), 1);
        assert!(l1.value() > 0.0);

        // Heartbeats resume; once 3 land inside the horizon, nominal again.
        for k in [28.0, 29.0, 30.0] {
            d.record_heartbeat(ts(k));
        }
        let l2 = d.suspicion_level(ts(30.5));
        assert!(!d.is_degraded());
        assert!(l2.value() < l1.value(), "recovered level should drop");
    }

    #[test]
    fn degraded_output_is_monotone_during_silence() {
        let mut d = wrapped_phi();
        for k in 1..=10 {
            d.record_heartbeat(ts(k as f64));
        }
        let mut prev = -1.0;
        for q in 0..200 {
            let t = 10.0 + q as f64 * 0.5;
            let level = d.suspicion_level(ts(t)).value();
            assert!(
                level >= prev,
                "level decreased during silence at t={t}: {prev} → {level}"
            );
            assert!(level.is_finite());
            prev = level;
        }
        assert!(d.is_degraded());
    }

    #[test]
    fn switch_is_offset_continuous() {
        let mut d = wrapped_phi();
        for k in 1..=10 {
            d.record_heartbeat(ts(k as f64));
        }
        // Query while the window is still healthy ({8, 9, 10} in horizon).
        let before = d.suspicion_level(ts(12.0)).value();
        assert!(!d.is_degraded());
        // First starved query: must not be below the last nominal answer.
        let after = d.suspicion_level(ts(16.1)).value();
        assert!(d.is_degraded());
        assert!(
            after >= before,
            "degraded output {after} fell below nominal {before}"
        );
    }

    #[test]
    fn never_heartbeated_process_still_accrues() {
        let mut d = GracefulDegradation::new(
            SimpleAccrual::new(Timestamp::ZERO),
            DegradeConfig::default(),
        );
        let a = d.suspicion_level(ts(1.0)).value();
        let b = d.suspicion_level(ts(5.0)).value();
        assert!(d.is_degraded(), "empty window is starved by definition");
        assert!(b > a);
    }

    #[test]
    fn for_interval_sizes_horizon() {
        let c = DegradeConfig::for_interval(Duration::from_millis(100), 3);
        assert_eq!(c.horizon, Duration::from_millis(500));
        assert_eq!(c.min_samples, 3);
    }
}
