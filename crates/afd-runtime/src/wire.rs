//! The heartbeat wire format.
//!
//! A fixed 28-byte frame with an FNV-1a checksum, so that a corrupted
//! datagram is *detected and dropped* instead of poisoning a detector's
//! inter-arrival window. The format carries everything Algorithm 4 needs:
//! who sent the heartbeat, its sequence number (for the stale-heartbeat
//! filter of lines 8–10), and the sender-side send time.

use std::error::Error;
use std::fmt;

use afd_core::process::ProcessId;
use afd_core::time::Timestamp;

/// Frame length in bytes: magic(2) + version(1) + kind(1) + sender(4) +
/// seq(8) + sent_at(8) + checksum(4).
pub const FRAME_LEN: usize = 28;

const MAGIC: [u8; 2] = *b"AF";
const VERSION: u8 = 1;
const KIND_HEARTBEAT: u8 = 0;

/// One heartbeat message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// The sending (monitored) process.
    pub sender: ProcessId,
    /// Monotone per-sender sequence number.
    pub seq: u64,
    /// Send time on the sender's clock.
    pub sent_at: Timestamp,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame is not exactly [`FRAME_LEN`] bytes.
    BadLength(usize),
    /// The magic bytes are wrong (not a heartbeat frame at all).
    BadMagic,
    /// The version byte is unknown.
    BadVersion(u8),
    /// The message-kind byte is unknown.
    BadKind(u8),
    /// The checksum does not match the payload (bit corruption).
    ChecksumMismatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadLength(n) => write!(f, "frame is {n} bytes, expected {FRAME_LEN}"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unknown frame version {v}"),
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl Error for WireError {}

/// FNV-1a over `bytes`, truncated to 32 bits.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash ^ (hash >> 32)) as u32
}

impl Heartbeat {
    /// Encodes the heartbeat into its fixed-size frame.
    pub fn encode(&self) -> [u8; FRAME_LEN] {
        let mut buf = [0u8; FRAME_LEN];
        buf[0..2].copy_from_slice(&MAGIC);
        buf[2] = VERSION;
        buf[3] = KIND_HEARTBEAT;
        buf[4..8].copy_from_slice(&self.sender.as_u32().to_le_bytes());
        buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
        buf[16..24].copy_from_slice(&self.sent_at.as_nanos().to_le_bytes());
        let sum = fnv1a(&buf[..24]);
        buf[24..28].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes a frame, verifying structure and checksum.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the frame is malformed or corrupted.
    pub fn decode(frame: &[u8]) -> Result<Heartbeat, WireError> {
        // Pinning the length in the type up front makes every later read a
        // compile-time-bounded array index — no fallible slice-to-array
        // conversions left in the body.
        let frame: &[u8; FRAME_LEN] = frame
            .try_into()
            .map_err(|_| WireError::BadLength(frame.len()))?;
        Heartbeat::decode_exact(frame)
    }

    /// Decodes an exactly-sized frame — the batched intake path, where
    /// the caller has already length-checked the slot and the borrow is
    /// an array reference, skipping the fallible slice conversion.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the frame is malformed or corrupted.
    pub fn decode_exact(frame: &[u8; FRAME_LEN]) -> Result<Heartbeat, WireError> {
        if frame[0..2] != MAGIC {
            return Err(WireError::BadMagic);
        }
        if frame[2] != VERSION {
            return Err(WireError::BadVersion(frame[2]));
        }
        if frame[3] != KIND_HEARTBEAT {
            return Err(WireError::BadKind(frame[3]));
        }
        let expected = u32::from_le_bytes([frame[24], frame[25], frame[26], frame[27]]);
        if fnv1a(&frame[..24]) != expected {
            return Err(WireError::ChecksumMismatch);
        }
        let sender = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let seq = u64::from_le_bytes([
            frame[8], frame[9], frame[10], frame[11], frame[12], frame[13], frame[14], frame[15],
        ]);
        let nanos = u64::from_le_bytes([
            frame[16], frame[17], frame[18], frame[19], frame[20], frame[21], frame[22], frame[23],
        ]);
        Ok(Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            sent_at: Timestamp::from_nanos(nanos),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb() -> Heartbeat {
        Heartbeat {
            sender: ProcessId::new(7),
            seq: 42,
            sent_at: Timestamp::from_millis(1234),
        }
    }

    #[test]
    fn roundtrip() {
        let frame = hb().encode();
        assert_eq!(Heartbeat::decode(&frame), Ok(hb()));
        assert_eq!(Heartbeat::decode_exact(&frame), Ok(hb()));
    }

    #[test]
    fn decode_exact_agrees_with_decode_on_bad_frames() {
        let mut f = hb().encode();
        f[5] ^= 0x40;
        assert_eq!(Heartbeat::decode(&f), Heartbeat::decode_exact(&f));
        assert!(Heartbeat::decode_exact(&f).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let frame = hb().encode();
        for i in 0..FRAME_LEN {
            for bit in 0..8 {
                let mut bad = frame;
                bad[i] ^= 1 << bit;
                assert!(
                    Heartbeat::decode(&bad).is_err(),
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn structural_errors_are_distinguished() {
        assert_eq!(Heartbeat::decode(&[0u8; 5]), Err(WireError::BadLength(5)));
        let mut f = hb().encode();
        f[0] = b'X';
        assert_eq!(Heartbeat::decode(&f), Err(WireError::BadMagic));
        let mut f = hb().encode();
        f[2] = 9;
        assert_eq!(Heartbeat::decode(&f), Err(WireError::BadVersion(9)));
    }
}
