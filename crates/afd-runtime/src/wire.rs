//! The heartbeat wire formats.
//!
//! **v1** is a fixed 28-byte frame with an FNV-1a checksum, so that a
//! corrupted datagram is *detected and dropped* instead of poisoning a
//! detector's inter-arrival window. The format carries everything
//! Algorithm 4 needs: who sent the heartbeat, its sequence number (for
//! the stale-heartbeat filter of lines 8–10), and the sender-side send
//! time.
//!
//! **v2** is the compact delta format for million-peer intake. A sender
//! periodically emits a 40-byte [`INTERN`](INTERN_LEN) checkpoint frame
//! (which both registers `intern index → (sender id, checkpoint seq,
//! checkpoint send time, nominal interval)` at the receiver and counts
//! as a heartbeat itself) and encodes every other heartbeat as a
//! [`DELTA`](DELTA_MAGIC) frame: a one-byte magic, the varint intern
//! index, the varint seq delta from the checkpoint, and the zigzag
//! varint *residual* of the send time against the checkpoint's
//! arithmetic prediction `ckpt_sent_at + seq_delta × interval` — near
//! zero for a periodic sender, so the typical frame is 6 bytes against
//! v1's 28 (≥ 3× smaller; see the `wire_v2` integration tests).
//!
//! Deltas are relative to the last *checkpoint*, never the previous
//! frame, so any subset of frames may be lost, duplicated, or reordered
//! and each survivor still decodes on its own. A 16-bit folded FNV
//! checksum covers the frame bytes **concatenated with the sender id
//! from the receiver's intern table entry**, which binds the frame to
//! the identity it was encoded against: if a table slot is clobbered by
//! a different sender re-interning the same index, the old sender's
//! in-flight deltas fail the checksum and are dropped rather than
//! misattributed. Receivers that don't know an index (restart, table
//! overflow, pre-handshake) reject the delta with
//! [`WireError::UnknownIntern`]; the sender's periodic re-intern
//! ([`DeltaEncoder`]'s `resync_every`) heals the gap. Unknown peers can
//! keep sending plain v1 frames — [`WireDecoder`] accepts both formats
//! on the same socket, dispatching on the leading bytes.
//!
//! Decoding is strict about lengths in both formats: a frame whose
//! declared structure needs more bytes than were actually received is
//! rejected ([`WireError::ShortFrame`]), and one with bytes left over
//! after the checksum is rejected ([`WireError::TrailingBytes`]) — a
//! reused intake slot can never leak a previous datagram's tail into a
//! decoded heartbeat.

use std::error::Error;
use std::fmt;

use afd_core::process::ProcessId;
use afd_core::time::Timestamp;

use crate::intern::{InternEntry, InternSlab};
use crate::varint;

/// Frame length in bytes: magic(2) + version(1) + kind(1) + sender(4) +
/// seq(8) + sent_at(8) + checksum(4).
pub const FRAME_LEN: usize = 28;

/// Length in bytes of a v2 intern/checkpoint frame: magic(2) +
/// version(1) + kind(1) + intern_idx(4) + sender(4) + seq(8) +
/// sent_at(8) + interval(8) + checksum(4).
pub const INTERN_LEN: usize = 40;

/// Worst-case v2 frame length (the fixed intern frame; a delta frame
/// with all varints at maximum width is 33 bytes). Size send buffers to
/// `MAX_V2_FRAME.max(FRAME_LEN)` to hold any frame either version emits.
pub const MAX_V2_FRAME: usize = INTERN_LEN;

/// First byte of a v2 delta frame. Distinct from `b'A'` (0x41, the v1 /
/// intern magic) so a one-byte peek dispatches the format.
pub const DELTA_MAGIC: u8 = 0xAD;

/// Shortest frame any wire version can produce: a delta with one-byte
/// varints (magic + 3 varints + 2 checksum bytes). Anything shorter is
/// droppable without decoding.
pub const MIN_FRAME: usize = 6;

const MAGIC: [u8; 2] = *b"AF";
const VERSION: u8 = 1;
const VERSION_DELTA: u8 = 2;
const KIND_HEARTBEAT: u8 = 0;
const KIND_INTERN: u8 = 1;

/// One heartbeat message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// The sending (monitored) process.
    pub sender: ProcessId,
    /// Monotone per-sender sequence number.
    pub seq: u64,
    /// Send time on the sender's clock.
    pub sent_at: Timestamp,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame is not exactly [`FRAME_LEN`] bytes.
    BadLength(usize),
    /// The magic bytes are wrong (not a heartbeat frame at all).
    BadMagic,
    /// The version byte is unknown.
    BadVersion(u8),
    /// The message-kind byte is unknown.
    BadKind(u8),
    /// The checksum does not match the payload (bit corruption).
    ChecksumMismatch,
    /// The frame's declared structure needs more bytes than were
    /// received — a truncated datagram or a stale-tail read attempt.
    ShortFrame,
    /// Bytes remain after the frame's checksum: the declared payload is
    /// shorter than the received datagram, so the tail is untrusted.
    TrailingBytes,
    /// A delta frame referenced an intern index this receiver has not
    /// seen; the sender's periodic re-intern will heal it.
    UnknownIntern(u32),
    /// A delta frame's intern index does not even fit in `u32` (the
    /// raw varint value is carried) — no intern table can contain it,
    /// so this is encoder corruption or garbage, not a healable miss.
    InternOutOfRange(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadLength(n) => write!(f, "frame is {n} bytes, expected {FRAME_LEN}"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unknown frame version {v}"),
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::ShortFrame => write!(f, "frame declares more bytes than received"),
            WireError::TrailingBytes => write!(f, "frame has trailing bytes past its payload"),
            WireError::UnknownIntern(idx) => write!(f, "delta references unknown intern {idx}"),
            WireError::InternOutOfRange(raw) => {
                write!(f, "delta intern index {raw} exceeds u32 space")
            }
        }
    }
}

impl Error for WireError {}

/// FNV-1a over `bytes`, truncated to 32 bits.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash ^ (hash >> 32)) as u32
}

/// 16-bit delta-frame checksum: FNV-1a over the frame payload followed
/// by the sender id (little-endian), folded to 16 bits. Including the
/// sender id — which travels in the intern table, *not* in the delta
/// frame — binds each delta to the identity it was encoded against.
fn fnv16_bound(payload: &[u8], sender: u32) -> u16 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload.iter().chain(sender.to_le_bytes().iter()) {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let folded = (hash ^ (hash >> 32)) as u32;
    (folded ^ (folded >> 16)) as u16
}

impl Heartbeat {
    /// Encodes the heartbeat into its fixed-size frame.
    pub fn encode(&self) -> [u8; FRAME_LEN] {
        let mut buf = [0u8; FRAME_LEN];
        buf[0..2].copy_from_slice(&MAGIC);
        buf[2] = VERSION;
        buf[3] = KIND_HEARTBEAT;
        buf[4..8].copy_from_slice(&self.sender.as_u32().to_le_bytes());
        buf[8..16].copy_from_slice(&self.seq.to_le_bytes());
        buf[16..24].copy_from_slice(&self.sent_at.as_nanos().to_le_bytes());
        let sum = fnv1a(&buf[..24]);
        buf[24..28].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes a frame, verifying structure and checksum.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the frame is malformed or corrupted.
    pub fn decode(frame: &[u8]) -> Result<Heartbeat, WireError> {
        // Pinning the length in the type up front makes every later read a
        // compile-time-bounded array index — no fallible slice-to-array
        // conversions left in the body.
        let frame: &[u8; FRAME_LEN] = frame
            .try_into()
            .map_err(|_| WireError::BadLength(frame.len()))?;
        Heartbeat::decode_exact(frame)
    }

    /// Decodes an exactly-sized frame — the batched intake path, where
    /// the caller has already length-checked the slot and the borrow is
    /// an array reference, skipping the fallible slice conversion.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the frame is malformed or corrupted.
    pub fn decode_exact(frame: &[u8; FRAME_LEN]) -> Result<Heartbeat, WireError> {
        if frame[0..2] != MAGIC {
            return Err(WireError::BadMagic);
        }
        if frame[2] != VERSION {
            return Err(WireError::BadVersion(frame[2]));
        }
        if frame[3] != KIND_HEARTBEAT {
            return Err(WireError::BadKind(frame[3]));
        }
        let expected = u32::from_le_bytes([frame[24], frame[25], frame[26], frame[27]]);
        if fnv1a(&frame[..24]) != expected {
            return Err(WireError::ChecksumMismatch);
        }
        let sender = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let seq = u64::from_le_bytes([
            frame[8], frame[9], frame[10], frame[11], frame[12], frame[13], frame[14], frame[15],
        ]);
        let nanos = u64::from_le_bytes([
            frame[16], frame[17], frame[18], frame[19], frame[20], frame[21], frame[22], frame[23],
        ]);
        Ok(Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            sent_at: Timestamp::from_nanos(nanos),
        })
    }
}

/// The checkpoint a [`DeltaEncoder`] is currently encoding against.
#[derive(Debug, Clone, Copy)]
struct Checkpoint {
    seq: u64,
    sent_at_nanos: u64,
}

/// Sender-side v2 encoder: emits an intern/checkpoint frame every
/// `resync_every` heartbeats (and whenever the delta would not be
/// expressible) and compact delta frames in between.
///
/// Stateful but allocation-free: `encode` writes into a caller buffer
/// of at least [`MAX_V2_FRAME`] bytes.
#[derive(Debug)]
pub struct DeltaEncoder {
    sender: ProcessId,
    intern_idx: u32,
    interval_nanos: u64,
    resync_every: u32,
    ckpt: Option<Checkpoint>,
    since_ckpt: u32,
}

impl DeltaEncoder {
    /// Creates an encoder for `sender` claiming intern index
    /// `intern_idx` (by convention the sender's own id, which keeps the
    /// index space collision-free), predicting send times with
    /// `nominal_interval` and re-interning every `resync_every` frames
    /// (floored at 1; 1 means every frame is a checkpoint).
    pub fn new(
        sender: ProcessId,
        intern_idx: u32,
        nominal_interval: std::time::Duration,
        resync_every: u32,
    ) -> Self {
        DeltaEncoder {
            sender,
            intern_idx,
            interval_nanos: u64::try_from(nominal_interval.as_nanos()).unwrap_or(u64::MAX),
            resync_every: resync_every.max(1),
            ckpt: None,
            since_ckpt: 0,
        }
    }

    /// Encodes `hb` into `buf`, returning the frame length. Chooses an
    /// intern frame when due (first frame, every `resync_every`-th, or
    /// a sequence regression) and a delta otherwise.
    ///
    /// Returns 0 — and encodes nothing — if `buf` is shorter than
    /// [`MAX_V2_FRAME`] or `hb.sender` is not this encoder's sender;
    /// both are caller bugs surfaced as a value.
    pub fn encode(&mut self, hb: &Heartbeat, buf: &mut [u8]) -> usize {
        if buf.len() < MAX_V2_FRAME || hb.sender != self.sender {
            return 0;
        }
        let delta_ok = match self.ckpt {
            Some(ckpt) if self.since_ckpt < self.resync_every => hb.seq >= ckpt.seq,
            _ => false,
        };
        if !delta_ok {
            return self.encode_intern(hb, buf);
        }
        // `delta_ok` guarantees ckpt is Some; re-match to keep the
        // borrow local instead of unwrapping.
        let Some(ckpt) = self.ckpt else {
            return self.encode_intern(hb, buf);
        };
        let seq_delta = hb.seq - ckpt.seq;
        let expected = ckpt
            .sent_at_nanos
            .wrapping_add(seq_delta.wrapping_mul(self.interval_nanos));
        let residual = hb.sent_at.as_nanos().wrapping_sub(expected) as i64;
        buf[0] = DELTA_MAGIC;
        let mut at = 1usize;
        // Buffer is MAX_V2_FRAME (40) ≥ 1 + 3×10 + 2 worst case, so the
        // encodes cannot fail; treat None defensively as a resync.
        at += match varint::encode_u64(u64::from(self.intern_idx), &mut buf[at..]) {
            Some(n) => n,
            None => return self.encode_intern(hb, buf),
        };
        at += match varint::encode_u64(seq_delta, &mut buf[at..]) {
            Some(n) => n,
            None => return self.encode_intern(hb, buf),
        };
        at += match varint::encode_i64(residual, &mut buf[at..]) {
            Some(n) => n,
            None => return self.encode_intern(hb, buf),
        };
        let sum = fnv16_bound(&buf[..at], self.sender.as_u32());
        buf[at..at + 2].copy_from_slice(&sum.to_le_bytes());
        self.since_ckpt += 1;
        at + 2
    }

    /// Emits the 40-byte intern/checkpoint frame for `hb` and rebases
    /// future deltas on it.
    fn encode_intern(&mut self, hb: &Heartbeat, buf: &mut [u8]) -> usize {
        buf[0..2].copy_from_slice(&MAGIC);
        buf[2] = VERSION_DELTA;
        buf[3] = KIND_INTERN;
        buf[4..8].copy_from_slice(&self.intern_idx.to_le_bytes());
        buf[8..12].copy_from_slice(&self.sender.as_u32().to_le_bytes());
        buf[12..20].copy_from_slice(&hb.seq.to_le_bytes());
        buf[20..28].copy_from_slice(&hb.sent_at.as_nanos().to_le_bytes());
        buf[28..36].copy_from_slice(&self.interval_nanos.to_le_bytes());
        let sum = fnv1a(&buf[..36]);
        buf[36..40].copy_from_slice(&sum.to_le_bytes());
        self.ckpt = Some(Checkpoint {
            seq: hb.seq,
            sent_at_nanos: hb.sent_at.as_nanos(),
        });
        self.since_ckpt = 1;
        INTERN_LEN
    }
}

/// Receiver-side decoder for any mix of v1 and v2 frames on one socket.
///
/// Dispatches on the leading bytes: [`DELTA_MAGIC`] → delta, `"AF"` +
/// version byte → v1 heartbeat or v2 intern frame. The intern table is
/// a flat [`InternSlab`] indexed directly by the intern index — one
/// bounds check and one load per delta, no hashing — and it is bounded:
/// intern frames whose index falls outside `0..capacity` still decode
/// as heartbeats but are not remembered (counted by
/// [`interns_rejected`](WireDecoder::interns_rejected)), so their
/// deltas bounce with [`WireError::UnknownIntern`] until the peer falls
/// back to v1. Under the dense identity-index convention (senders
/// intern their own id, ids below the capacity) this is the same bound
/// the PR 9 `HashMap` table enforced by fullness — see the `intern`
/// module docs and the `intern_equiv` proptest.
#[derive(Debug)]
pub struct WireDecoder {
    table: InternSlab,
    interns_rejected: u64,
}

/// Default intern-table capacity — sized for the million-peer target.
pub const DEFAULT_INTERN_CAPACITY: usize = 1 << 20;

impl Default for WireDecoder {
    fn default() -> Self {
        WireDecoder::new()
    }
}

impl WireDecoder {
    /// Creates a decoder with the default intern capacity
    /// ([`DEFAULT_INTERN_CAPACITY`]).
    pub fn new() -> Self {
        WireDecoder::with_capacity(DEFAULT_INTERN_CAPACITY)
    }

    /// Creates a decoder remembering intern indices `0..capacity`
    /// (floored at 1). The whole table is allocated here — decoding
    /// never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        WireDecoder {
            table: InternSlab::new(capacity),
            interns_rejected: 0,
        }
    }

    /// Live intern-table entries.
    pub fn interned(&self) -> usize {
        self.table.len()
    }

    /// Intern frames accepted as heartbeats but not remembered because
    /// their index fell outside the table's bound.
    pub fn interns_rejected(&self) -> u64 {
        self.interns_rejected
    }

    /// Forgets every intern entry in O(1) — the restart path for a
    /// decoder being reused across runs (a generation bump in the slab,
    /// not a million-slot sweep). Deltas bounce with
    /// [`WireError::UnknownIntern`] until their senders re-intern, just
    /// as after a real receiver restart. The
    /// [`interns_rejected`](Self::interns_rejected) counter is
    /// cumulative and survives the reset.
    pub fn reset(&mut self) {
        self.table.reset();
    }

    /// Decodes one received frame of either wire version.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the frame is malformed, corrupted,
    /// truncated relative to its declared structure, carries trailing
    /// bytes, or references an unknown intern index.
    pub fn decode(&mut self, frame: &[u8]) -> Result<Heartbeat, WireError> {
        match frame.first() {
            None => Err(WireError::ShortFrame),
            Some(&DELTA_MAGIC) => self.decode_delta(frame),
            Some(_) => {
                if frame.len() < 4 {
                    return Err(WireError::ShortFrame);
                }
                if frame[0..2] != MAGIC {
                    return Err(WireError::BadMagic);
                }
                match frame[2] {
                    VERSION => Heartbeat::decode(frame),
                    VERSION_DELTA => self.decode_intern(frame),
                    v => Err(WireError::BadVersion(v)),
                }
            }
        }
    }

    fn decode_intern(&mut self, frame: &[u8]) -> Result<Heartbeat, WireError> {
        let frame: &[u8; INTERN_LEN] = frame.try_into().map_err(|_| {
            if frame.len() < INTERN_LEN {
                WireError::ShortFrame
            } else {
                WireError::TrailingBytes
            }
        })?;
        if frame[3] != KIND_INTERN {
            return Err(WireError::BadKind(frame[3]));
        }
        let expected = u32::from_le_bytes([frame[36], frame[37], frame[38], frame[39]]);
        if fnv1a(&frame[..36]) != expected {
            return Err(WireError::ChecksumMismatch);
        }
        let intern_idx = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let sender = u32::from_le_bytes([frame[8], frame[9], frame[10], frame[11]]);
        let seq = u64::from_le_bytes([
            frame[12], frame[13], frame[14], frame[15], frame[16], frame[17], frame[18], frame[19],
        ]);
        let nanos = u64::from_le_bytes([
            frame[20], frame[21], frame[22], frame[23], frame[24], frame[25], frame[26], frame[27],
        ]);
        let interval = u64::from_le_bytes([
            frame[28], frame[29], frame[30], frame[31], frame[32], frame[33], frame[34], frame[35],
        ]);
        let entry = InternEntry {
            sender,
            ckpt_seq: seq,
            ckpt_sent_at_nanos: nanos,
            interval_nanos: interval,
        };
        // Single probe: the slab's insert is the bounds check. In-range
        // indices always store (fill or overwrite); out-of-bound ones
        // are the rejection the old full-table check expressed.
        if !self.table.insert(intern_idx, entry) {
            self.interns_rejected += 1;
        }
        Ok(Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            sent_at: Timestamp::from_nanos(nanos),
        })
    }

    fn decode_delta(&mut self, frame: &[u8]) -> Result<Heartbeat, WireError> {
        let mut at = 1usize; // past DELTA_MAGIC
        let (idx, n) = varint::decode_u64(&frame[at..]).map_err(|_| WireError::ShortFrame)?;
        at += n;
        // An index beyond u32 space can never have been interned: that
        // is corruption, not a healable miss, and the error carries the
        // raw value rather than masquerading as index `u32::MAX`.
        let intern_idx = u32::try_from(idx).map_err(|_| WireError::InternOutOfRange(idx))?;
        let (seq_delta, n) = varint::decode_u64(&frame[at..]).map_err(|_| WireError::ShortFrame)?;
        at += n;
        let (residual, n) = varint::decode_i64(&frame[at..]).map_err(|_| WireError::ShortFrame)?;
        at += n;
        // The declared structure must end in exactly the two checksum
        // bytes — no more (stale tail), no fewer (truncation).
        match frame.len() {
            l if l < at + 2 => return Err(WireError::ShortFrame),
            l if l > at + 2 => return Err(WireError::TrailingBytes),
            _ => {}
        }
        let entry = self
            .table
            .get(intern_idx)
            .ok_or(WireError::UnknownIntern(intern_idx))?;
        let expected = u16::from_le_bytes([frame[at], frame[at + 1]]);
        if fnv16_bound(&frame[..at], entry.sender) != expected {
            return Err(WireError::ChecksumMismatch);
        }
        let predicted = entry
            .ckpt_sent_at_nanos
            .wrapping_add(seq_delta.wrapping_mul(entry.interval_nanos));
        Ok(Heartbeat {
            sender: ProcessId::new(entry.sender),
            seq: entry.ckpt_seq.wrapping_add(seq_delta),
            sent_at: Timestamp::from_nanos(predicted.wrapping_add(residual as u64)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb() -> Heartbeat {
        Heartbeat {
            sender: ProcessId::new(7),
            seq: 42,
            sent_at: Timestamp::from_millis(1234),
        }
    }

    #[test]
    fn roundtrip() {
        let frame = hb().encode();
        assert_eq!(Heartbeat::decode(&frame), Ok(hb()));
        assert_eq!(Heartbeat::decode_exact(&frame), Ok(hb()));
    }

    #[test]
    fn decode_exact_agrees_with_decode_on_bad_frames() {
        let mut f = hb().encode();
        f[5] ^= 0x40;
        assert_eq!(Heartbeat::decode(&f), Heartbeat::decode_exact(&f));
        assert!(Heartbeat::decode_exact(&f).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let frame = hb().encode();
        for i in 0..FRAME_LEN {
            for bit in 0..8 {
                let mut bad = frame;
                bad[i] ^= 1 << bit;
                assert!(
                    Heartbeat::decode(&bad).is_err(),
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn structural_errors_are_distinguished() {
        assert_eq!(Heartbeat::decode(&[0u8; 5]), Err(WireError::BadLength(5)));
        let mut f = hb().encode();
        f[0] = b'X';
        assert_eq!(Heartbeat::decode(&f), Err(WireError::BadMagic));
        let mut f = hb().encode();
        f[2] = 9;
        assert_eq!(Heartbeat::decode(&f), Err(WireError::BadVersion(9)));
    }

    // ---- v2 delta format ----

    use std::time::Duration;

    const INTERVAL: Duration = Duration::from_millis(100);

    fn v2_pair(resync_every: u32) -> (DeltaEncoder, WireDecoder) {
        let enc = DeltaEncoder::new(ProcessId::new(7), 7, INTERVAL, resync_every);
        (enc, WireDecoder::new())
    }

    fn hb_at(seq: u64, nanos: u64) -> Heartbeat {
        Heartbeat {
            sender: ProcessId::new(7),
            seq,
            sent_at: Timestamp::from_nanos(nanos),
        }
    }

    #[test]
    fn v2_first_frame_is_intern_then_deltas() {
        let (mut enc, mut dec) = v2_pair(64);
        let mut buf = [0u8; MAX_V2_FRAME];
        let step = INTERVAL.as_nanos() as u64;
        for seq in 0..10u64 {
            let hb = hb_at(seq, 1_000 + seq * step);
            let n = enc.encode(&hb, &mut buf);
            if seq == 0 {
                assert_eq!(n, INTERN_LEN);
            } else {
                assert!(n <= 8, "perfectly periodic delta should be tiny, got {n}");
                assert_eq!(buf[0], DELTA_MAGIC);
            }
            assert_eq!(dec.decode(&buf[..n]), Ok(hb), "seq {seq}");
        }
        assert_eq!(dec.interned(), 1);
    }

    #[test]
    fn v2_roundtrips_jittered_and_irregular_timestamps() {
        let (mut enc, mut dec) = v2_pair(8);
        let mut buf = [0u8; MAX_V2_FRAME];
        let step = INTERVAL.as_nanos() as u64;
        // Deterministic jitter, including a long pause and an early send.
        let jitters: [i64; 6] = [0, 999_983, -731_029, 45_000_000, -90_000_000, 1];
        let mut nanos = 5_000_000u64;
        for (i, j) in jitters.iter().enumerate() {
            nanos = nanos.wrapping_add(step).wrapping_add_signed(*j);
            let hb = hb_at(i as u64, nanos);
            let n = enc.encode(&hb, &mut buf);
            assert_eq!(dec.decode(&buf[..n]), Ok(hb), "frame {i}");
        }
    }

    #[test]
    fn v2_resync_reinterns_on_schedule() {
        let (mut enc, mut dec) = v2_pair(4);
        let mut buf = [0u8; MAX_V2_FRAME];
        let mut interns = 0usize;
        for seq in 0..12u64 {
            let hb = hb_at(seq, seq * 1_000_000);
            let n = enc.encode(&hb, &mut buf);
            if n == INTERN_LEN {
                interns += 1;
            }
            assert_eq!(dec.decode(&buf[..n]), Ok(hb));
        }
        assert_eq!(interns, 3, "resync_every=4 over 12 frames");
    }

    #[test]
    fn v2_delta_before_intern_is_rejected_not_misread() {
        let (mut enc, mut dec) = v2_pair(64);
        let mut buf = [0u8; MAX_V2_FRAME];
        enc.encode(&hb_at(0, 1_000), &mut buf); // intern, never delivered
        let n = enc.encode(&hb_at(1, 2_000), &mut buf);
        assert_eq!(dec.decode(&buf[..n]), Err(WireError::UnknownIntern(7)));
    }

    #[test]
    fn v2_every_delta_byte_flip_is_detected() {
        let (mut enc, mut dec) = v2_pair(64);
        let mut buf = [0u8; MAX_V2_FRAME];
        let n = enc.encode(&hb_at(0, 1_000), &mut buf);
        assert!(dec.decode(&buf[..n]).is_ok());
        let n = enc.encode(&hb_at(5, 501_000_123), &mut buf);
        let good = dec.decode(&buf[..n]).unwrap();
        for i in 0..n {
            for bit in 0..8 {
                let mut bad = buf;
                bad[i] ^= 1 << bit;
                // A flip must never be silently accepted as the original.
                assert_ne!(
                    dec.decode(&bad[..n]),
                    Ok(good),
                    "flip of byte {i} bit {bit} decoded as the original"
                );
            }
        }
    }

    #[test]
    fn v2_intern_clobber_invalidates_old_senders_deltas() {
        // Two senders claim the same intern index; after B re-interns it,
        // A's in-flight delta must fail the bound checksum, not decode as B.
        let mut a = DeltaEncoder::new(ProcessId::new(1), 9, INTERVAL, 64);
        let mut b = DeltaEncoder::new(ProcessId::new(2), 9, INTERVAL, 64);
        let mut dec = WireDecoder::new();
        let mut buf = [0u8; MAX_V2_FRAME];
        let n = a.encode(
            &Heartbeat {
                sender: ProcessId::new(1),
                seq: 0,
                sent_at: Timestamp::from_nanos(1_000),
            },
            &mut buf,
        );
        dec.decode(&buf[..n]).unwrap();
        let mut a_delta = [0u8; MAX_V2_FRAME];
        let a_n = a.encode(
            &Heartbeat {
                sender: ProcessId::new(1),
                seq: 3,
                sent_at: Timestamp::from_nanos(300_001_000),
            },
            &mut a_delta,
        );
        let n = b.encode(
            &Heartbeat {
                sender: ProcessId::new(2),
                seq: 100,
                sent_at: Timestamp::from_nanos(7_000),
            },
            &mut buf,
        );
        dec.decode(&buf[..n]).unwrap(); // clobbers index 9
        assert_eq!(
            dec.decode(&a_delta[..a_n]),
            Err(WireError::ChecksumMismatch)
        );
    }

    #[test]
    fn v2_trailing_and_missing_bytes_are_rejected() {
        let (mut enc, mut dec) = v2_pair(64);
        let mut buf = [0u8; MAX_V2_FRAME + 4];
        let n = enc.encode(&hb_at(0, 1_000), &mut buf);
        assert_eq!(dec.decode(&buf[..n - 1]), Err(WireError::ShortFrame));
        assert_eq!(dec.decode(&buf[..n + 1]), Err(WireError::TrailingBytes));
        assert!(dec.decode(&buf[..n]).is_ok(), "exact intern decodes");
        let n2 = enc.encode(&hb_at(3, 300_001_000), &mut buf);
        for cut in 1..n2 {
            assert_eq!(
                dec.decode(&buf[..cut]),
                Err(WireError::ShortFrame),
                "cut at {cut}"
            );
        }
        assert_eq!(dec.decode(&buf[..n2 + 3]), Err(WireError::TrailingBytes));
        assert_eq!(dec.decode(&[]), Err(WireError::ShortFrame));
    }

    #[test]
    fn v2_decoder_accepts_interleaved_v1_frames() {
        let (mut enc, mut dec) = v2_pair(64);
        let mut buf = [0u8; MAX_V2_FRAME];
        let n = enc.encode(&hb_at(0, 1_000), &mut buf);
        assert!(dec.decode(&buf[..n]).is_ok());
        let legacy = hb(); // a different, v1-only peer
        assert_eq!(dec.decode(&legacy.encode()), Ok(legacy));
        let n = enc.encode(&hb_at(1, 100_001_000), &mut buf);
        assert_eq!(dec.decode(&buf[..n]), Ok(hb_at(1, 100_001_000)));
    }

    #[test]
    fn v2_intern_table_capacity_is_bounded() {
        let mut dec = WireDecoder::with_capacity(2);
        let mut buf = [0u8; MAX_V2_FRAME];
        for id in 0..4u32 {
            let mut enc = DeltaEncoder::new(ProcessId::new(id), id, INTERVAL, 64);
            let hb = Heartbeat {
                sender: ProcessId::new(id),
                seq: 0,
                sent_at: Timestamp::from_nanos(1_000),
            };
            let n = enc.encode(&hb, &mut buf);
            // Overflowing interns still deliver their heartbeat.
            assert_eq!(dec.decode(&buf[..n]), Ok(hb));
        }
        assert_eq!(dec.interned(), 2);
        assert_eq!(dec.interns_rejected(), 2);
    }

    #[test]
    fn out_of_u32_intern_index_is_distinct_from_a_real_max_miss() {
        let mut dec = WireDecoder::new();

        // Hand-built delta whose intern-index varint exceeds u32 space:
        // no table could ever contain it, so the decoder reports the
        // raw value instead of masquerading as index u32::MAX.
        let raw = u64::from(u32::MAX) + 1;
        let mut buf = [0u8; MAX_V2_FRAME];
        buf[0] = DELTA_MAGIC;
        let mut at = 1;
        at += varint::encode_u64(raw, &mut buf[at..]).unwrap();
        at += varint::encode_u64(1, &mut buf[at..]).unwrap();
        at += varint::encode_i64(0, &mut buf[at..]).unwrap();
        assert_eq!(
            dec.decode(&buf[..at + 2]),
            Err(WireError::InternOutOfRange(raw))
        );

        // The largest *valid* index is an ordinary healable miss and
        // must still say so — before the fix both cases collapsed into
        // UnknownIntern(u32::MAX).
        let mut buf = [0u8; MAX_V2_FRAME];
        buf[0] = DELTA_MAGIC;
        let mut at = 1;
        at += varint::encode_u64(u64::from(u32::MAX), &mut buf[at..]).unwrap();
        at += varint::encode_u64(1, &mut buf[at..]).unwrap();
        at += varint::encode_i64(0, &mut buf[at..]).unwrap();
        assert_eq!(
            dec.decode(&buf[..at + 2]),
            Err(WireError::UnknownIntern(u32::MAX))
        );
    }

    #[test]
    fn reset_forgets_interns_until_the_sender_resyncs() {
        let (mut enc, mut dec) = v2_pair(3);
        let mut buf = [0u8; MAX_V2_FRAME];
        let n = enc.encode(&hb_at(0, 1_000), &mut buf);
        assert_eq!(n, INTERN_LEN);
        assert!(dec.decode(&buf[..n]).is_ok());
        let n = enc.encode(&hb_at(1, 100_001_000), &mut buf);
        assert!(n < INTERN_LEN);
        assert!(dec.decode(&buf[..n]).is_ok());
        assert_eq!(dec.interned(), 1);

        // Restart: the table empties in O(1); in-flight deltas bounce.
        dec.reset();
        assert_eq!(dec.interned(), 0);
        let n2 = enc.encode(&hb_at(2, 200_001_000), &mut buf);
        assert!(n2 < INTERN_LEN, "third frame of resync_every=3 is a delta");
        assert_eq!(dec.decode(&buf[..n2]), Err(WireError::UnknownIntern(7)));
        // The sender's next checkpoint re-registers the index and heals
        // the stream, exactly as after a real receiver restart.
        let n3 = enc.encode(&hb_at(3, 300_001_000), &mut buf);
        assert_eq!(n3, INTERN_LEN);
        assert_eq!(dec.decode(&buf[..n3]), Ok(hb_at(3, 300_001_000)));
        assert_eq!(dec.interned(), 1);
        let n4 = enc.encode(&hb_at(4, 400_001_000), &mut buf);
        assert!(n4 < INTERN_LEN);
        assert_eq!(dec.decode(&buf[..n4]), Ok(hb_at(4, 400_001_000)));
    }

    #[test]
    fn v2_seq_regression_forces_reintern() {
        let (mut enc, mut dec) = v2_pair(64);
        let mut buf = [0u8; MAX_V2_FRAME];
        let n = enc.encode(&hb_at(10, 1_000), &mut buf);
        assert_eq!(n, INTERN_LEN);
        dec.decode(&buf[..n]).unwrap();
        // A sender restart resets seq below the checkpoint: a delta
        // cannot express it, so the encoder must emit a fresh intern.
        let n = enc.encode(&hb_at(2, 9_000), &mut buf);
        assert_eq!(n, INTERN_LEN);
        assert_eq!(dec.decode(&buf[..n]), Ok(hb_at(2, 9_000)));
    }

    #[test]
    fn v2_steady_state_is_at_least_3x_smaller_than_v1() {
        let (mut enc, mut dec) = v2_pair(64);
        let mut buf = [0u8; MAX_V2_FRAME];
        let step = INTERVAL.as_nanos() as u64;
        let jitter = [0i64, 733_211, -612_007, 91_373, -1_004_551];
        let mut total = 0usize;
        let frames = 1_000u64;
        for seq in 0..frames {
            // A periodic sender jitters around its schedule; it does not
            // random-walk away from it.
            let nanos = (1_000 + seq * step).wrapping_add_signed(jitter[(seq % 5) as usize]);
            let hb = hb_at(seq, nanos);
            let n = enc.encode(&hb, &mut buf);
            assert_eq!(dec.decode(&buf[..n]), Ok(hb));
            total += n;
        }
        let v1_total = frames as usize * FRAME_LEN;
        assert!(
            total * 3 <= v1_total,
            "v2 used {total} bytes for {frames} frames; v1 would use {v1_total} (ratio {:.2})",
            v1_total as f64 / total as f64
        );
    }
}
