//! Sequence-number freshness for the stale-heartbeat filter.
//!
//! Algorithm 4 (lines 8–10) only feeds a detector heartbeats that are
//! *fresher* than anything seen before. "Fresher" used to be a plain
//! `seq > highest` comparison, which has two latent edge cases:
//!
//! - a redelivered frame with `seq == highest` is a *duplicate*, not
//!   merely stale — operators debugging a flapping link want the two
//!   counted apart (a duplicating network looks very different from a
//!   reordering one);
//! - a sender whose counter wraps past `u64::MAX` (a restarted sender
//!   that persists its counter, or a protocol that seeds sequence
//!   numbers near the top of the range) would be rejected *forever*,
//!   silently turning one wraparound into a permanent false suspicion.
//!
//! [`classify`] therefore compares in serial-number arithmetic
//! (RFC 1982): `seq` is fresh iff it is ahead of `highest` by less than
//! half the `u64` space. A genuine wraparound (`u64::MAX → 0`) is a
//! forward step of 1 and is accepted; a replayed old frame remains a
//! large *backward* step and is rejected.

/// Half the sequence space: forward distances below this are "ahead".
const HALF: u64 = 1 << 63;

/// The verdict on a received sequence number relative to the highest
/// sequence number accepted so far from the same sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqVerdict {
    /// Strictly ahead of `highest` in serial-number order: accept it.
    Fresh,
    /// Exactly equal to `highest`: the frame is a redelivery of the
    /// newest accepted heartbeat.
    Duplicate,
    /// Behind `highest` (or exactly half the space away, which is
    /// ambiguous): a reordered or replayed old frame.
    Stale,
}

/// Classifies `seq` against `highest` in serial-number arithmetic.
///
/// A forward distance of exactly `2^63` is ambiguous (neither endpoint
/// is "ahead") and is treated as [`SeqVerdict::Stale`]: rejecting a
/// fresh frame only delays acceptance by one heartbeat, while accepting
/// a stale one would poison the detector's inter-arrival window.
///
/// # Examples
///
/// ```
/// use afd_runtime::seq::{classify, SeqVerdict};
///
/// assert_eq!(classify(6, 5), SeqVerdict::Fresh);
/// assert_eq!(classify(5, 5), SeqVerdict::Duplicate);
/// assert_eq!(classify(4, 5), SeqVerdict::Stale);
/// // Wraparound: u64::MAX → 0 is a forward step of one.
/// assert_eq!(classify(0, u64::MAX), SeqVerdict::Fresh);
/// ```
#[inline]
pub fn classify(seq: u64, highest: u64) -> SeqVerdict {
    let ahead = seq.wrapping_sub(highest);
    if ahead == 0 {
        SeqVerdict::Duplicate
    } else if ahead < HALF {
        SeqVerdict::Fresh
    } else {
        SeqVerdict::Stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinary_progression() {
        assert_eq!(classify(1, 0), SeqVerdict::Fresh);
        assert_eq!(classify(100, 7), SeqVerdict::Fresh);
        assert_eq!(classify(7, 100), SeqVerdict::Stale);
    }

    #[test]
    fn duplicates_are_distinguished_from_stale() {
        assert_eq!(classify(42, 42), SeqVerdict::Duplicate);
        assert_eq!(classify(41, 42), SeqVerdict::Stale);
        assert_eq!(classify(0, 0), SeqVerdict::Duplicate);
    }

    #[test]
    fn wraparound_is_forward() {
        assert_eq!(classify(0, u64::MAX), SeqVerdict::Fresh);
        assert_eq!(classify(5, u64::MAX - 2), SeqVerdict::Fresh);
        // And the reverse direction is a replay, not a huge jump forward.
        assert_eq!(classify(u64::MAX, 0), SeqVerdict::Stale);
        assert_eq!(classify(u64::MAX - 2, 5), SeqVerdict::Stale);
    }

    #[test]
    fn half_space_distance_is_conservatively_stale() {
        assert_eq!(classify(HALF, 0), SeqVerdict::Stale);
        assert_eq!(classify(0, HALF), SeqVerdict::Stale);
        // One short of half is still fresh.
        assert_eq!(classify(HALF - 1, 0), SeqVerdict::Fresh);
    }
}
