//! The receiving half of Algorithm 4, run live over a [`Transport`].
//!
//! [`RuntimeMonitor`] drains frames from a transport, decodes and
//! validates them through a [`WireDecoder`] (v1 frames and compact v2
//! delta frames mix freely; corrupt frames are counted and
//! dropped, never panicked on), filters stale and duplicate sequence
//! numbers (Algorithm 4, lines 8–10), and feeds surviving arrivals into
//! the existing [`MonitoringService`] so that everything built on the
//! service — snapshots, ranking, interpreter banks — works unchanged over
//! a live network.
//!
//! Every poll bumps a shared liveness counter that the
//! [`supervisor`](crate::supervisor) watchdog observes; a wedged monitor
//! loop is detected and restarted from outside.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use afd_core::accrual::AccrualFailureDetector;
use afd_core::process::ProcessId;
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::Timestamp;
use afd_detectors::service::MonitoringService;

use crate::clock::Clock;
use crate::error::TransportError;
use crate::seq::{classify, SeqVerdict};
use crate::transport::Transport;
use crate::wire::{Heartbeat, WireDecoder};

type DetectorFactory<D> = Box<dyn FnMut(ProcessId) -> D + Send>;

/// Counters describing what the monitor has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Valid, fresh heartbeats fed to detectors.
    pub accepted: u64,
    /// Frames that failed decoding (bad length, checksum, …).
    pub corrupt: u64,
    /// Valid frames whose sequence number was behind the freshest seen
    /// (reordered or replayed).
    pub stale: u64,
    /// Valid frames redelivering exactly the freshest sequence number
    /// seen — a duplicating network, not a reordering one.
    pub duplicate: u64,
    /// Valid frames from processes nobody watches.
    pub unwatched: u64,
}

/// A live heartbeat monitor over a transport.
pub struct RuntimeMonitor<T, C, D> {
    transport: T,
    clock: C,
    service: MonitoringService<D, DetectorFactory<D>>,
    highest_seq: BTreeMap<ProcessId, u64>,
    decoder: WireDecoder,
    stats: MonitorStats,
    liveness: Arc<AtomicU64>,
}

impl<T, C, D> std::fmt::Debug for RuntimeMonitor<T, C, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeMonitor")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<T, C, D> RuntimeMonitor<T, C, D>
where
    T: Transport,
    C: Clock,
    D: AccrualFailureDetector,
{
    /// Creates a monitor that builds one detector per watched process.
    ///
    /// Compose resilience in the factory: e.g.
    /// `|p| GracefulDegradation::new(PhiAccrual::with_defaults(), cfg)`
    /// gives every watched process the starved-window fallback.
    pub fn new(
        transport: T,
        clock: C,
        factory: impl FnMut(ProcessId) -> D + Send + 'static,
    ) -> Self {
        RuntimeMonitor {
            transport,
            clock,
            service: MonitoringService::new(Box::new(factory)),
            highest_seq: BTreeMap::new(),
            decoder: WireDecoder::new(),
            stats: MonitorStats::default(),
            liveness: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Starts monitoring `process`.
    pub fn watch(&mut self, process: ProcessId) -> bool {
        self.service.watch(process)
    }

    /// Stops monitoring `process`.
    ///
    /// The highest sequence number seen from `process` is deliberately
    /// retained: if the process is `watch`ed again later, replayed frames
    /// from before the unwatch are still rejected as stale instead of
    /// being accepted as fresh. The map grows with the number of distinct
    /// senders ever seen, which is bounded by the system's `Π`.
    pub fn unwatch(&mut self, process: ProcessId) -> Option<D> {
        self.service.unwatch(process)
    }

    /// Drains every available frame once; returns how many heartbeats were
    /// accepted.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if the transport itself failed; decode
    /// failures and stale frames are absorbed into [`MonitorStats`].
    pub fn poll(&mut self) -> Result<usize, TransportError> {
        // lint:allow(relaxed-atomics-audit, monotone liveness tick; the watchdog only needs eventual progress, no cross-thread ordering)
        self.liveness.fetch_add(1, Ordering::Relaxed);
        let mut accepted = 0;
        while let Some(frame) = self.transport.try_recv()? {
            match self.decoder.decode(&frame) {
                Ok(hb) => {
                    // Re-read the clock per frame: stamping a whole
                    // drained backlog (e.g. after a partition heals) with
                    // one arrival time would collapse its inter-arrival
                    // samples to zero and poison adaptive windows.
                    let now = self.clock.now();
                    if self.accept(hb, now) {
                        accepted += 1;
                    }
                }
                Err(_) => self.stats.corrupt += 1,
            }
        }
        Ok(accepted)
    }

    fn accept(&mut self, hb: Heartbeat, now: Timestamp) -> bool {
        // Algorithm 4, lines 8–10: only heartbeats fresher than the
        // freshest seen so far update the detector, so detectors always
        // see non-decreasing arrival times. Freshness is serial-number
        // arithmetic ([`crate::seq`]): duplicates and reordered frames
        // are dropped (and counted apart), while a sender whose counter
        // wraps past `u64::MAX` keeps being accepted.
        if let Some(&highest) = self.highest_seq.get(&hb.sender) {
            match classify(hb.seq, highest) {
                SeqVerdict::Fresh => {}
                SeqVerdict::Duplicate => {
                    self.stats.duplicate += 1;
                    return false;
                }
                SeqVerdict::Stale => {
                    self.stats.stale += 1;
                    return false;
                }
            }
        }
        if !self.service.heartbeat(hb.sender, now) {
            self.stats.unwatched += 1;
            return false;
        }
        self.highest_seq.insert(hb.sender, hb.seq);
        self.stats.accepted += 1;
        true
    }

    /// The suspicion level of `process` right now.
    pub fn level(&mut self, process: ProcessId) -> Option<SuspicionLevel> {
        let now = self.clock.now();
        self.service.suspicion_level(process, now)
    }

    /// The full accrual snapshot `H(q, now)` of every watched process.
    pub fn snapshot(&mut self) -> Vec<(ProcessId, SuspicionLevel)> {
        let now = self.clock.now();
        self.service.snapshot(now)
    }

    /// Direct access to the detector for `process`.
    pub fn detector_mut(&mut self, process: ProcessId) -> Option<&mut D> {
        self.service.detector_mut(process)
    }

    /// The underlying monitoring service.
    pub fn service_mut(&mut self) -> &mut MonitoringService<D, DetectorFactory<D>> {
        &mut self.service
    }

    /// The transport the monitor reads from (e.g. to inspect a
    /// [`FaultInjector`](crate::fault::FaultInjector)'s statistics).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The transport, mutably.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Intake counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Publishes the intake counters into `registry` under `monitor.*`,
    /// plus a `monitor.watched` gauge with the current watch-set size.
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        registry
            .counter("monitor.accepted")
            .set(self.stats.accepted);
        registry.counter("monitor.corrupt").set(self.stats.corrupt);
        registry.counter("monitor.stale").set(self.stats.stale);
        registry
            .counter("monitor.duplicate")
            .set(self.stats.duplicate);
        registry
            .counter("monitor.unwatched")
            .set(self.stats.unwatched);
        registry
            .gauge("monitor.watched")
            .set(self.service.len() as f64);
    }

    /// A handle to the liveness counter, bumped on every [`poll`](Self::poll).
    /// Hand it to a [`Watchdog`](crate::supervisor::Watchdog).
    pub fn liveness(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.liveness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::transport::ChannelTransport;
    use afd_core::time::Duration;
    use afd_detectors::simple::SimpleAccrual;

    fn rig() -> (
        ChannelTransport,
        RuntimeMonitor<ChannelTransport, VirtualClock, SimpleAccrual>,
        VirtualClock,
    ) {
        let (a, b) = ChannelTransport::pair();
        let clock = VirtualClock::new();
        let mon = RuntimeMonitor::new(b, clock.clone(), |_| SimpleAccrual::new(Timestamp::ZERO));
        (a, mon, clock)
    }

    fn frame(sender: u32, seq: u64) -> Vec<u8> {
        Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            // from_nanos: seq values near u64::MAX must stay representable.
            sent_at: Timestamp::from_nanos(seq),
        }
        .encode()
        .to_vec()
    }

    #[test]
    fn heartbeats_reach_the_service() {
        let (mut tx, mut mon, clock) = rig();
        let p = ProcessId::new(1);
        mon.watch(p);
        clock.set(Timestamp::from_secs(5));
        tx.send(&frame(1, 1)).unwrap();
        assert_eq!(mon.poll().unwrap(), 1);
        // Level measures elapsed since the arrival the monitor recorded.
        clock.set(Timestamp::from_secs(8));
        assert_eq!(mon.level(p).unwrap().value(), 3.0);
    }

    #[test]
    fn corrupt_frames_are_counted_not_panicked() {
        let (mut tx, mut mon, _clock) = rig();
        mon.watch(ProcessId::new(1));
        tx.send(b"garbage").unwrap();
        let mut bad = frame(1, 1);
        bad[10] ^= 0xFF;
        tx.send(&bad).unwrap();
        assert_eq!(mon.poll().unwrap(), 0);
        assert_eq!(mon.stats().corrupt, 2);
    }

    #[test]
    fn stale_and_duplicate_sequences_are_filtered() {
        let (mut tx, mut mon, clock) = rig();
        let p = ProcessId::new(1);
        mon.watch(p);
        clock.set(Timestamp::from_secs(1));
        tx.send(&frame(1, 5)).unwrap();
        tx.send(&frame(1, 5)).unwrap(); // duplicate
        tx.send(&frame(1, 3)).unwrap(); // reordered stale
        tx.send(&frame(1, 6)).unwrap(); // fresh
        assert_eq!(mon.poll().unwrap(), 2);
        let s = mon.stats();
        assert_eq!(s.accepted, 2);
        assert_eq!(s.stale, 1);
        assert_eq!(s.duplicate, 1);
    }

    #[test]
    fn sequence_wraparound_keeps_a_live_sender_accepted() {
        // A sender whose counter wraps past u64::MAX must not be rejected
        // forever: u64::MAX → 0 is a forward step of one in serial-number
        // arithmetic.
        let (mut tx, mut mon, clock) = rig();
        let p = ProcessId::new(1);
        mon.watch(p);
        clock.set(Timestamp::from_secs(1));
        tx.send(&frame(1, u64::MAX - 1)).unwrap();
        tx.send(&frame(1, u64::MAX)).unwrap();
        tx.send(&frame(1, u64::MAX)).unwrap(); // redelivered duplicate
        tx.send(&frame(1, 0)).unwrap(); // wraparound: fresh
        tx.send(&frame(1, 1)).unwrap(); // life goes on
        tx.send(&frame(1, u64::MAX)).unwrap(); // replay from before the wrap
        assert_eq!(mon.poll().unwrap(), 4);
        let s = mon.stats();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.duplicate, 1);
        assert_eq!(s.stale, 1);
    }

    #[test]
    fn injected_duplicates_are_counted_as_duplicates() {
        // Drive the dup fault through the FaultInjector: every frame is
        // delivered twice, and the monitor must accept exactly one copy of
        // each while counting the other as a duplicate.
        use crate::fault::{FaultInjector, FaultPlan};

        let (mut tx, rx) = ChannelTransport::pair();
        let clock = VirtualClock::new();
        let injected =
            FaultInjector::new(rx, clock.clone(), FaultPlan::new().with_duplicate(1.0), 42);
        let mut mon = RuntimeMonitor::new(injected, clock.clone(), |_| {
            SimpleAccrual::new(Timestamp::ZERO)
        });
        let p = ProcessId::new(1);
        mon.watch(p);
        clock.set(Timestamp::from_secs(1));
        for seq in 1..=5u64 {
            tx.send(&frame(1, seq)).unwrap();
        }
        assert_eq!(mon.poll().unwrap(), 5);
        let s = mon.stats();
        assert_eq!(s.accepted, 5);
        assert_eq!(s.duplicate, 5, "each injected copy rejected as duplicate");
        assert_eq!(s.stale, 0);
        assert_eq!(mon.transport().stats().duplicated, 5);
    }

    /// A clock that advances by a fixed step on every read, exposing code
    /// that caches "now" instead of re-reading it per frame.
    #[derive(Clone)]
    struct SteppingClock {
        now: Arc<AtomicU64>,
        step: u64,
    }

    impl crate::clock::Clock for SteppingClock {
        fn now(&self) -> Timestamp {
            Timestamp::from_nanos(self.now.fetch_add(self.step, Ordering::SeqCst))
        }
    }

    #[test]
    fn burst_frames_get_distinct_arrival_times() {
        // Three frames drained in ONE poll must not share an arrival
        // timestamp: each accepted frame re-reads the clock. With a cached
        // "now" the detector's last arrival would stay at the first read.
        let (mut tx, rx) = ChannelTransport::pair();
        let clock = SteppingClock {
            now: Arc::new(AtomicU64::new(Timestamp::from_secs(100).as_nanos())),
            step: Duration::from_secs(1).as_nanos(),
        };
        let mut mon = RuntimeMonitor::new(rx, clock, |_| SimpleAccrual::new(Timestamp::ZERO));
        let p = ProcessId::new(1);
        mon.watch(p);
        tx.send(&frame(1, 1)).unwrap();
        tx.send(&frame(1, 2)).unwrap();
        tx.send(&frame(1, 3)).unwrap();
        assert_eq!(mon.poll().unwrap(), 3);
        // Clock reads: 100 s, 101 s, 102 s — the last accepted heartbeat
        // must carry the last read, not the first.
        let last = mon.detector_mut(p).unwrap().last_heartbeat();
        assert_eq!(last, Timestamp::from_secs(102));
    }

    #[test]
    fn rewatched_process_rejects_replayed_sequences() {
        let (mut tx, mut mon, clock) = rig();
        let p = ProcessId::new(1);
        mon.watch(p);
        clock.set(Timestamp::from_secs(1));
        tx.send(&frame(1, 5)).unwrap();
        assert_eq!(mon.poll().unwrap(), 1);

        // Unwatch and watch again: the highest seen sequence number must
        // survive, or an attacker (or a confused network) could replay old
        // frames as fresh.
        mon.unwatch(p);
        mon.watch(p);
        clock.set(Timestamp::from_secs(2));
        tx.send(&frame(1, 5)).unwrap(); // replay of the newest frame
        tx.send(&frame(1, 4)).unwrap(); // even staler
        assert_eq!(mon.poll().unwrap(), 0);
        assert_eq!(mon.stats().duplicate, 1);
        assert_eq!(mon.stats().stale, 1);

        // Genuinely fresh frames still get through.
        tx.send(&frame(1, 6)).unwrap();
        assert_eq!(mon.poll().unwrap(), 1);
    }

    #[test]
    fn export_metrics_mirrors_stats() {
        let (mut tx, mut mon, clock) = rig();
        mon.watch(ProcessId::new(1));
        clock.set(Timestamp::from_secs(1));
        tx.send(&frame(1, 1)).unwrap();
        tx.send(&frame(1, 1)).unwrap(); // redelivery → duplicate
        tx.send(b"garbage").unwrap(); // corrupt
        tx.send(&frame(9, 1)).unwrap(); // unwatched
        mon.poll().unwrap();

        let registry = afd_obs::Registry::new();
        mon.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("monitor.accepted"), Some(1));
        assert_eq!(snap.counter("monitor.stale"), Some(0));
        assert_eq!(snap.counter("monitor.duplicate"), Some(1));
        assert_eq!(snap.counter("monitor.corrupt"), Some(1));
        assert_eq!(snap.counter("monitor.unwatched"), Some(1));
        assert_eq!(snap.gauge("monitor.watched"), Some(1.0));
    }

    #[test]
    fn unwatched_senders_are_ignored() {
        let (mut tx, mut mon, _clock) = rig();
        mon.watch(ProcessId::new(1));
        tx.send(&frame(9, 1)).unwrap();
        assert_eq!(mon.poll().unwrap(), 0);
        assert_eq!(mon.stats().unwatched, 1);
    }

    #[test]
    fn poll_bumps_liveness() {
        let (_tx, mut mon, _clock) = rig();
        let liveness = mon.liveness();
        assert_eq!(liveness.load(Ordering::Relaxed), 0);
        mon.poll().unwrap();
        mon.poll().unwrap();
        assert_eq!(liveness.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn disconnected_transport_surfaces_typed_error() {
        let (tx, mut mon, _clock) = rig();
        drop(tx);
        assert_eq!(mon.poll(), Err(TransportError::Disconnected));
    }

    #[test]
    fn snapshot_spans_watched_processes() {
        let (mut tx, mut mon, clock) = rig();
        mon.watch(ProcessId::new(1));
        mon.watch(ProcessId::new(2));
        clock.set(Timestamp::from_secs(2));
        tx.send(&frame(1, 1)).unwrap();
        mon.poll().unwrap();
        clock.advance(Duration::from_secs(1));
        let snap = mon.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].1 < snap[1].1, "heartbeated process less suspected");
    }
}
