//! A composable, seeded fault injector over any [`Transport`].
//!
//! Wraps a transport's *receive* side and applies a reproducible schedule
//! of network mischief: drop (Bernoulli or Gilbert–Elliott bursts, reusing
//! `afd-sim`'s loss models), duplicate, delay/reorder, corrupt, and timed
//! partitions. All randomness comes from one [`SimRng`] stream, so a given
//! `(plan, seed)` produces the identical fault schedule on every run —
//! chaos tests are replayable bit-for-bit.
//!
//! Faults are applied when frames are *pulled* from the inner transport:
//! delayed frames sit in a staging heap keyed by virtual delivery time and
//! surface once the injector's clock passes them, which is also how
//! reordering arises (a delayed frame is overtaken by later ones).

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use afd_core::time::Timestamp;
use afd_sim::delay::DelayModel;
use afd_sim::loss::LossModel;
use afd_sim::rng::SimRng;

use crate::clock::Clock;
use crate::error::TransportError;
use crate::transport::Transport;

/// What faults to inject, and when.
///
/// The default plan injects nothing; chain the builder methods to add
/// faults. Loss and delay models are the `afd-sim` traits, so anything the
/// simulator can model, the live runtime can suffer.
pub struct FaultPlan {
    loss: Option<Box<dyn LossModel + Send>>,
    delay: Option<Box<dyn DelayModel + Send>>,
    duplicate: f64,
    corrupt: f64,
    partitions: Vec<(Timestamp, Timestamp)>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("loss", &self.loss.is_some())
            .field("delay", &self.delay.is_some())
            .field("duplicate", &self.duplicate)
            .field("corrupt", &self.corrupt)
            .field("partitions", &self.partitions)
            .finish()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            loss: None,
            delay: None,
            duplicate: 0.0,
            corrupt: 0.0,
            partitions: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Drops frames per `model` (e.g. `BernoulliLoss`, `GilbertElliottLoss`).
    pub fn with_loss(mut self, model: impl LossModel + Send + 'static) -> Self {
        self.loss = Some(Box::new(model));
        self
    }

    /// Delays frames per `model`; delayed frames may be overtaken
    /// (reordering).
    pub fn with_delay(mut self, model: impl DelayModel + Send + 'static) -> Self {
        self.delay = Some(Box::new(model));
        self
    }

    /// Duplicates each delivered frame with probability `p` (the copy gets
    /// its own delay sample).
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p.clamp(0.0, 1.0);
        self
    }

    /// Flips one random byte of a frame with probability `p`.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p.clamp(0.0, 1.0);
        self
    }

    /// Drops *everything* received during `[from, to)` — a network
    /// partition between the peers.
    pub fn with_partition(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.partitions.push((from, to));
        self
    }

    fn partitioned_at(&self, now: Timestamp) -> bool {
        self.partitions.iter().any(|&(a, b)| now >= a && now < b)
    }
}

/// Counters describing what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames passed through to the consumer.
    pub delivered: u64,
    /// Frames dropped by the loss model.
    pub dropped_loss: u64,
    /// Frames dropped inside a partition window.
    pub dropped_partition: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Frames with a flipped byte.
    pub corrupted: u64,
}

struct Staged {
    deliver_at: u64,
    tie: u64,
    frame: Vec<u8>,
}

impl PartialEq for Staged {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.tie == other.tie
    }
}
impl Eq for Staged {}
impl PartialOrd for Staged {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Staged {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the earliest delivery wins.
        (other.deliver_at, other.tie).cmp(&(self.deliver_at, self.tie))
    }
}

/// A [`Transport`] wrapper injecting a seeded fault schedule on receive.
pub struct FaultInjector<T, C> {
    inner: T,
    clock: C,
    plan: FaultPlan,
    rng: SimRng,
    staged: BinaryHeap<Staged>,
    tie: u64,
    stats: FaultStats,
}

impl<T, C> std::fmt::Debug for FaultInjector<T, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("staged", &self.staged.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<T: Transport, C: Clock> FaultInjector<T, C> {
    /// Wraps `inner`, applying `plan` with randomness seeded by `seed`.
    pub fn new(inner: T, clock: C, plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            inner,
            clock,
            plan,
            rng: SimRng::seed_from_u64(seed),
            staged: BinaryHeap::new(),
            tie: 0,
            stats: FaultStats::default(),
        }
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Frames currently held back waiting for their delivery time.
    pub fn in_flight(&self) -> usize {
        self.staged.len()
    }

    /// Publishes the injector counters into `registry` under `fault.*`.
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        registry
            .counter("fault.delivered")
            .set(self.stats.delivered);
        registry
            .counter("fault.dropped_loss")
            .set(self.stats.dropped_loss);
        registry
            .counter("fault.dropped_partition")
            .set(self.stats.dropped_partition);
        registry
            .counter("fault.duplicated")
            .set(self.stats.duplicated);
        registry
            .counter("fault.corrupted")
            .set(self.stats.corrupted);
        registry
            .gauge("fault.in_flight")
            .set(self.staged.len() as f64);
    }

    fn stage(&mut self, frame: Vec<u8>, now: Timestamp) {
        if self.plan.partitioned_at(now) {
            self.stats.dropped_partition += 1;
            return;
        }
        if let Some(loss) = &mut self.plan.loss {
            if loss.is_lost(&mut self.rng) {
                self.stats.dropped_loss += 1;
                return;
            }
        }
        let copies = if self.plan.duplicate > 0.0 && self.rng.bernoulli(self.plan.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let deliver_at = match &mut self.plan.delay {
                Some(delay) => now + delay.sample(&mut self.rng),
                None => now,
            };
            let mut frame = frame.clone();
            if self.plan.corrupt > 0.0 && self.rng.bernoulli(self.plan.corrupt) {
                if !frame.is_empty() {
                    let i = self.rng.index(frame.len());
                    frame[i] ^= 0xFF;
                }
                self.stats.corrupted += 1;
            }
            self.tie += 1;
            self.staged.push(Staged {
                deliver_at: deliver_at.as_nanos(),
                tie: self.tie,
                frame,
            });
        }
    }
}

impl<T: Transport, C: Clock> Transport for FaultInjector<T, C> {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        // Faults are modeled on the receive path only; sends pass through.
        self.inner.send(frame)
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let now = self.clock.now();
        // Pull everything the medium has and run it through the plan.
        while let Some(frame) = self.inner.try_recv()? {
            self.stage(frame, now);
        }
        // Surface the earliest staged frame whose time has come.
        let due = self
            .staged
            .peek()
            .is_some_and(|next| next.deliver_at <= now.as_nanos());
        if due {
            if let Some(staged) = self.staged.pop() {
                self.stats.delivered += 1;
                return Ok(Some(staged.frame));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::transport::ChannelTransport;
    use afd_core::time::Duration;
    use afd_sim::delay::ConstantDelay;
    use afd_sim::loss::BernoulliLoss;

    fn rig(
        plan: FaultPlan,
        seed: u64,
    ) -> (
        ChannelTransport,
        FaultInjector<ChannelTransport, VirtualClock>,
        VirtualClock,
    ) {
        let (a, b) = ChannelTransport::pair();
        let clock = VirtualClock::new();
        let inj = FaultInjector::new(b, clock.clone(), plan, seed);
        (a, inj, clock)
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let (mut tx, mut rx, _clock) = rig(FaultPlan::new(), 1);
        for k in 0..10u8 {
            tx.send(&[k]).unwrap();
        }
        let mut got = Vec::new();
        while let Some(f) = rx.try_recv().unwrap() {
            got.push(f[0]);
        }
        assert_eq!(got, (0..10).collect::<Vec<u8>>());
        assert_eq!(rx.stats().delivered, 10);
    }

    #[test]
    fn total_loss_drops_everything() {
        let (mut tx, mut rx, _clock) = rig(FaultPlan::new().with_loss(BernoulliLoss::new(1.0)), 2);
        for _ in 0..50 {
            tx.send(b"x").unwrap();
        }
        assert_eq!(rx.try_recv().unwrap(), None);
        assert_eq!(rx.stats().dropped_loss, 50);
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let plan =
            FaultPlan::new().with_partition(Timestamp::from_secs(10), Timestamp::from_secs(20));
        let (mut tx, mut rx, clock) = rig(plan, 3);

        clock.set(Timestamp::from_secs(5));
        tx.send(b"before").unwrap();
        assert!(rx.try_recv().unwrap().is_some());

        clock.set(Timestamp::from_secs(15));
        tx.send(b"inside").unwrap();
        assert_eq!(rx.try_recv().unwrap(), None);

        clock.set(Timestamp::from_secs(25));
        tx.send(b"after").unwrap();
        assert_eq!(rx.try_recv().unwrap(), Some(b"after".to_vec()));
        assert_eq!(rx.stats().dropped_partition, 1);
    }

    #[test]
    fn delay_holds_frames_until_due() {
        let plan = FaultPlan::new().with_delay(ConstantDelay::new(Duration::from_secs(2)));
        let (mut tx, mut rx, clock) = rig(plan, 4);
        tx.send(b"slow").unwrap();
        assert_eq!(rx.try_recv().unwrap(), None, "not due yet");
        assert_eq!(rx.in_flight(), 1);
        clock.advance(Duration::from_secs(3));
        assert_eq!(rx.try_recv().unwrap(), Some(b"slow".to_vec()));
    }

    #[test]
    fn duplication_and_corruption_are_counted() {
        let plan = FaultPlan::new().with_duplicate(1.0).with_corrupt(1.0);
        let (mut tx, mut rx, _clock) = rig(plan, 5);
        tx.send(&[0x00, 0x00]).unwrap();
        let first = rx.try_recv().unwrap().expect("original");
        let second = rx.try_recv().unwrap().expect("duplicate");
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2);
        // Corruption flips one byte of each copy.
        assert!(first.contains(&0xFF));
        assert!(second.contains(&0xFF));
        let stats = rx.stats();
        assert_eq!(stats.duplicated, 1);
        assert_eq!(stats.corrupted, 2);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let (mut tx, mut rx, _clock) =
                rig(FaultPlan::new().with_loss(BernoulliLoss::new(0.5)), seed);
            for k in 0..100u8 {
                tx.send(&[k]).unwrap();
            }
            let mut got = Vec::new();
            while let Some(f) = rx.try_recv().unwrap() {
                got.push(f[0]);
            }
            got
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }
}
