//! The parallel shard-worker pipeline.
//!
//! [`ShardedMonitor`](crate::shard::ShardedMonitor) partitions peers
//! across shards but still advances every shard on one thread, so its
//! throughput ceiling is a single core. [`ParallelShardEngine`] lifts
//! that ceiling with a fixed topology:
//!
//! ```text
//!   transport ──► intake thread ──► SPSC ring ──► worker 0 ──► ShardCell 0
//!     (recv_batch,  decode + route)  SPSC ring ──► worker 1 ──► ShardCell 1
//!      zero alloc)                       …             …            …
//!                                                            SnapshotReader
//! ```
//!
//! One intake thread drains the transport through a reusable
//! [`FrameBatch`] arena (zero heap allocations per frame), decodes each
//! frame, stamps the *batch's* arrival once (clock reads are amortized
//! across the batch; the stamp skew a frame can see is bounded by its
//! own batch's decode time — see DESIGN.md §7j), groups the decoded
//! heartbeats by destination shard, and publishes each group into a
//! bounded SPSC [`heartbeat_ring`](crate::ring::heartbeat_ring) with a
//! single batched seqlock advance
//! ([`push_batch`](crate::ring::RingProducer::push_batch)). One worker thread
//! per shard owns that shard's `MonitoringService` — the *same*
//! [`Shard`](crate::shard) accept/publish code the single-threaded
//! monitor runs — and publishes into the same double-buffered epoch
//! snapshots, so [`SnapshotReader`] works unchanged against a parallel
//! engine.
//!
//! # Backpressure is loss
//!
//! A full ring evicts its oldest entry (counted, exported via
//! [`export_metrics`](ParallelShardEngine::export_metrics)) instead of
//! blocking intake. The paper's detectors are *defined* over lossy
//! channels: a frame dropped at a full ring is indistinguishable from
//! one dropped by UDP, and dropping the oldest keeps the freshest
//! evidence, which is exactly what an accrual detector wants.
//!
//! # Lockstep mode
//!
//! [`EngineMode::Lockstep`] trades the intake thread for explicit
//! [`tick`](ParallelShardEngine::tick) calls: the driver drains the
//! transport, routes frames into the rings, and releases all workers for
//! exactly one barrier-synchronized epoch. With a frozen
//! [`VirtualClock`](crate::clock::VirtualClock) per tick this reproduces
//! the single-threaded [`ShardedMonitor`] frame-for-frame — the
//! equivalence proptest in `tests/engine.rs` holds it to that — while
//! still exercising the real worker threads and rings.
//!
//! # Supervision
//!
//! Worker panics are detected by drop guards that poison the tick
//! barrier (lockstep) or raise per-worker flags (free-running); both
//! surface as [`EngineError::WorkerPanicked`]. Every thread bumps a
//! liveness counter that [`register_health`](ParallelShardEngine::register_health)
//! wires into a [`HealthBoard`](crate::supervisor::HealthBoard), and
//! [`shutdown`](ParallelShardEngine::shutdown) (or drop) joins every
//! thread.
//!
//! # Multi-lane intake
//!
//! [`start_lanes`](ParallelShardEngine::start_lanes) replaces the single
//! intake thread with one per transport *lane* (typically the sockets of
//! a [`MultiUdpTransport`](crate::lane::MultiUdpTransport)):
//!
//! ```text
//!   lane 0 ──► intake 0 ──┐ L×W SPSC rings ┌──► worker 0 ──► ShardCell 0
//!   lane 1 ──► intake 1 ──┤ (one per       ├──► worker 1 ──► ShardCell 1
//!     …           …       │  lane×worker   │       …             …
//!   lane L ──► intake L ──┘  pair)         └──► worker W ──► ShardCell W
//! ```
//!
//! Each lane×worker pair gets its own ring, preserving the rings'
//! single-producer/single-consumer invariant without any cross-lane
//! locking; workers round-robin their per-lane consumers. Lane intakes
//! decode through a per-lane [`WireDecoder`], so v1 and compact v2
//! delta frames mix freely on every socket, and publish per-lane frame
//! counters plus per-stage wall-clock profiles (decode vs route, with
//! workers timing detector update) exported via
//! [`export_metrics`](ParallelShardEngine::export_metrics) — the
//! numbers that find the real bottleneck on a multi-core host.

use std::fmt;
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use afd_core::accrual::AccrualFailureDetector;
use afd_core::process::ProcessId;
use afd_core::time::{Duration, Timestamp};

use crate::clock::Clock;
use crate::error::{EngineError, TransportError};
use crate::monitor::MonitorStats;
use crate::ring::{heartbeat_ring, RingConsumer, RingProducer, RingWatch};
use crate::shard::{shard_index, DetectorFactory, Shard, ShardCapacityError, ShardCell};
use crate::shard::{SnapshotReader, INTAKE_BATCH_SLOTS};
use crate::supervisor::HealthBoard;
use crate::transport::{FrameBatch, Transport};
use crate::wire::{Heartbeat, WireDecoder, FRAME_LEN};

/// Frames a free-running worker drains from its ring per loop iteration
/// before re-checking stop/publish, so one flooded ring cannot starve
/// the publish cadence.
const WORKER_DRAIN_CAP: usize = 1024;

/// Sizing and cadence for a [`ParallelShardEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads — one per shard (floored at 1).
    pub workers: usize,
    /// Maximum watched processes per shard (snapshot banks are
    /// fixed-size, as in [`ShardConfig`](crate::shard::ShardConfig)).
    pub slots_per_shard: usize,
    /// Slots per intake→worker ring (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Slots in the intake thread's reusable [`FrameBatch`] arena.
    pub batch_slots: usize,
    /// How often a free-running worker republishes its epoch snapshot,
    /// on the engine clock's timeline. Zero republishes every loop.
    pub publish_every: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            slots_per_shard: 4096,
            ring_capacity: 1024,
            batch_slots: INTAKE_BATCH_SLOTS,
            publish_every: Duration::from_millis(1),
        }
    }
}

/// How the engine's threads are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// No intake thread; the caller drives barrier-synchronized epochs
    /// with [`tick`](ParallelShardEngine::tick). Deterministic under a
    /// virtual clock — equivalent to `ShardedMonitor` frame-for-frame.
    Lockstep,
    /// A dedicated intake thread drains the transport continuously and
    /// workers run unsynchronized — the production topology.
    FreeRunning,
}

/// What one lockstep [`tick`](ParallelShardEngine::tick) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineTickReport {
    /// Frames drained from the transport (including corrupt ones).
    pub drained: usize,
    /// Heartbeats accepted into detectors this epoch.
    pub accepted: u64,
}

/// Cumulative per-stage wall-clock nanoseconds, measured on the engine
/// clock by the lane intake threads (decode, route) and the workers
/// (detector update). All zeros outside multi-lane runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageNanos {
    /// Wire decode, summed across lane intakes.
    pub decode: u64,
    /// Stamp + hash-route into the rings, summed across lane intakes.
    pub route: u64,
    /// Ring drain + detector update, summed across workers.
    pub update: u64,
}

/// Aggregated counters for a [`ParallelShardEngine`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Counters summed across workers; `corrupt` counts frames that
    /// failed decoding on the intake side.
    pub totals: MonitorStats,
    /// Per-worker intake counters (each worker's `corrupt` is always 0).
    pub per_worker: Vec<MonitorStats>,
    /// Watched processes per shard, for balance inspection.
    pub peers_per_shard: Vec<usize>,
    /// Frames evicted by drop-oldest ring backpressure, cumulative
    /// across engine runs.
    pub ring_dropped: u64,
    /// Frames the intake path pulled off the transport (all lanes).
    pub intake_frames: u64,
    /// Lockstep epochs executed so far.
    pub ticks: u64,
    /// Frames each lane intake decoded, lane-indexed (empty outside
    /// multi-lane runs).
    pub per_lane_frames: Vec<u64>,
    /// Frames each lane intake rejected at decode, lane-indexed.
    pub per_lane_corrupt: Vec<u64>,
    /// Per-stage wall-clock profile of the multi-lane pipeline.
    pub stage: StageNanos,
}

/// Counters the intake path (thread or lockstep driver) publishes.
/// Single-writer: exactly one intake exists per engine run.
/// `liveness` is its own `Arc` so a [`HealthBoard`] can track it.
#[derive(Default)]
struct IntakeShared {
    liveness: Arc<AtomicU64>,
    frames: AtomicU64,
    corrupt: AtomicU64,
    panicked: AtomicBool,
    fault: Mutex<Option<TransportError>>,
}

impl IntakeShared {
    /// Single-writer add: a plain load+store pair is exact because only
    /// the intake side writes this counter.
    fn add(counter: &AtomicU64, n: u64) {
        counter.store(
            counter.load(Ordering::Relaxed).wrapping_add(n),
            Ordering::Relaxed,
        );
    }
}

/// Counters one lane's intake thread publishes, on top of the shared
/// intake fields. Single-writer: one thread per lane.
#[derive(Default)]
struct LaneShared {
    intake: IntakeShared,
    /// Wall-clock nanos spent decoding frames, on the engine clock.
    decode_nanos: AtomicU64,
    /// Wall-clock nanos spent stamping + routing into rings.
    route_nanos: AtomicU64,
}

/// Counters one worker publishes. Single-writer per worker.
#[derive(Default)]
struct WorkerShared {
    liveness: Arc<AtomicU64>,
    accepted: AtomicU64,
    stale: AtomicU64,
    duplicate: AtomicU64,
    unwatched: AtomicU64,
    loops: AtomicU64,
    busy_loops: AtomicU64,
    /// Wall-clock nanos spent draining rings into detectors, on the
    /// engine clock.
    update_nanos: AtomicU64,
    panicked: AtomicBool,
}

impl WorkerShared {
    fn store_stats(&self, stats: &MonitorStats) {
        self.accepted.store(stats.accepted, Ordering::Relaxed);
        self.stale.store(stats.stale, Ordering::Relaxed);
        self.duplicate.store(stats.duplicate, Ordering::Relaxed);
        self.unwatched.store(stats.unwatched, Ordering::Relaxed);
    }

    fn load_stats(&self) -> MonitorStats {
        MonitorStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            corrupt: 0,
            stale: self.stale.load(Ordering::Relaxed),
            duplicate: self.duplicate.load(Ordering::Relaxed),
            unwatched: self.unwatched.load(Ordering::Relaxed),
        }
    }
}

/// The lockstep tick barrier: the driver announces an epoch (with its
/// publish timestamp), parked workers run exactly one drain+publish, and
/// the driver waits for all of them. A worker panic poisons the barrier.
struct PhaseState {
    epoch: u64,
    publish_at: u64,
    running: usize,
    stop: bool,
    poisoned: Option<usize>,
}

struct PhaseBarrier {
    state: Mutex<PhaseState>,
    begin_cv: Condvar,
    done_cv: Condvar,
}

enum WorkerSignal {
    Run { epoch: u64, publish_at: Timestamp },
    Stop,
}

impl PhaseBarrier {
    fn new() -> Arc<Self> {
        Arc::new(PhaseBarrier {
            state: Mutex::new(PhaseState {
                epoch: 0,
                publish_at: 0,
                running: 0,
                stop: false,
                poisoned: None,
            }),
            begin_cv: Condvar::new(),
            done_cv: Condvar::new(),
        })
    }

    /// Locks the state, recovering from mutex poisoning: the state is
    /// plain counters, valid regardless of where a panicking thread
    /// stopped, and worker panics are reported through `poisoned`.
    fn lock(&self) -> MutexGuard<'_, PhaseState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn begin(&self, workers: usize, publish_at: Timestamp) {
        let mut s = self.lock();
        s.epoch = s.epoch.wrapping_add(1);
        s.publish_at = publish_at.as_nanos();
        s.running = workers;
        drop(s);
        self.begin_cv.notify_all();
    }

    fn wait_done(&self) -> Result<(), EngineError> {
        let mut s = self.lock();
        loop {
            if let Some(worker) = s.poisoned {
                return Err(EngineError::WorkerPanicked { worker });
            }
            if s.running == 0 {
                return Ok(());
            }
            s = match self.done_cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    fn wait_begin(&self, last_epoch: u64) -> WorkerSignal {
        let mut s = self.lock();
        loop {
            if s.stop {
                return WorkerSignal::Stop;
            }
            if s.epoch != last_epoch {
                return WorkerSignal::Run {
                    epoch: s.epoch,
                    publish_at: Timestamp::from_nanos(s.publish_at),
                };
            }
            s = match self.begin_cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    fn done(&self) {
        let mut s = self.lock();
        s.running = s.running.saturating_sub(1);
        let finished = s.running == 0;
        drop(s);
        if finished {
            self.done_cv.notify_all();
        }
    }

    fn stop(&self) {
        let mut s = self.lock();
        s.stop = true;
        drop(s);
        self.begin_cv.notify_all();
    }

    fn poison(&self, worker: usize) {
        let mut s = self.lock();
        s.poisoned = Some(worker);
        s.running = s.running.saturating_sub(1);
        drop(s);
        self.done_cv.notify_all();
    }
}

/// Poisons the barrier and raises the worker's panic flag if the worker
/// unwinds; a clean exit drops this without effect.
struct WorkerPanicGuard {
    worker: usize,
    barrier: Option<Arc<PhaseBarrier>>,
    shared: Arc<WorkerShared>,
}

impl Drop for WorkerPanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.panicked.store(true, Ordering::Release);
            if let Some(barrier) = &self.barrier {
                barrier.poison(self.worker);
            }
        }
    }
}

/// Raises the intake panic flag if the intake thread unwinds.
struct IntakePanicGuard {
    shared: Arc<IntakeShared>,
}

impl Drop for IntakePanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.panicked.store(true, Ordering::Release);
        }
    }
}

/// Raises a lane intake's panic flag if its thread unwinds.
struct LanePanicGuard {
    shared: Arc<LaneShared>,
}

impl Drop for LanePanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.intake.panicked.store(true, Ordering::Release);
        }
    }
}

/// One running worker thread plus its observers (one ring watch per
/// feeding intake — a single entry except in multi-lane runs).
struct WorkerHandle<D> {
    handle: JoinHandle<Shard<D>>,
    watches: Vec<RingWatch>,
}

impl<D> WorkerHandle<D> {
    fn ring_depth(&self) -> usize {
        self.watches.iter().map(RingWatch::len).sum()
    }

    fn ring_dropped(&self) -> u64 {
        self.watches.iter().map(RingWatch::dropped).sum()
    }
}

enum EngineState<T, D> {
    /// Threads down; shards owned inline. `watch`/`unwatch` live here.
    Idle { transport: T, shards: Vec<Shard<D>> },
    /// Lockstep: driver owns the transport, rings, and tick barrier.
    Lockstep {
        transport: T,
        batch: FrameBatch,
        /// Per-destination scratch, one bucket per worker ring, reused
        /// across ticks so grouping never allocates in steady state.
        groups: Vec<Vec<Heartbeat>>,
        producers: Vec<RingProducer>,
        barrier: Arc<PhaseBarrier>,
        workers: Vec<WorkerHandle<D>>,
    },
    /// Free-running: intake thread owns the transport (returned on join).
    Free {
        intake: JoinHandle<T>,
        stop: Arc<AtomicBool>,
        workers: Vec<WorkerHandle<D>>,
    },
    /// Multi-lane free-running: one intake thread per lane owns its lane
    /// transport; the engine's own transport `T` sits parked (its intake
    /// loop never runs — heartbeats arrive on the lanes).
    FreeLanes {
        transport: T,
        intakes: Vec<JoinHandle<Box<dyn Transport>>>,
        stop: Arc<AtomicBool>,
        workers: Vec<WorkerHandle<D>>,
    },
    /// A worker panicked and its shard state is gone; terminal.
    Failed { worker: usize },
}

/// A multi-core monitor: batched zero-allocation intake, SPSC rings, one
/// worker thread per shard, lock-free epoch-snapshot reads.
///
/// Build it stopped, [`watch`](ParallelShardEngine::watch) the peer set,
/// then [`start`](ParallelShardEngine::start) in either mode. Readers
/// obtained from [`reader`](ParallelShardEngine::reader) stay valid
/// across start/shutdown cycles.
pub struct ParallelShardEngine<T, C, D> {
    clock: C,
    config: EngineConfig,
    cells: Arc<Vec<Arc<ShardCell>>>,
    state: EngineState<T, D>,
    intake_shared: Arc<IntakeShared>,
    /// One entry per lane while (and after) a multi-lane run; reset by
    /// the next [`start_lanes`](Self::start_lanes).
    lane_shared: Vec<Arc<LaneShared>>,
    worker_shared: Vec<Arc<WorkerShared>>,
    peers_per_shard: Vec<usize>,
    /// Ring drops accumulated from finished runs (live rings are read
    /// through their watches).
    ring_dropped_past: u64,
    ticks: u64,
}

impl<T, C, D> fmt::Debug for ParallelShardEngine<T, C, D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match &self.state {
            EngineState::Idle { .. } => "idle",
            EngineState::Lockstep { .. } => "lockstep",
            EngineState::Free { .. } => "free-running",
            EngineState::FreeLanes { .. } => "free-lanes",
            EngineState::Failed { .. } => "failed",
        };
        f.debug_struct("ParallelShardEngine")
            .field("config", &self.config)
            .field("state", &state)
            .finish_non_exhaustive()
    }
}

impl<T, C, D> ParallelShardEngine<T, C, D>
where
    T: Transport + Send + 'static,
    C: Clock + Clone + Send + 'static,
    D: AccrualFailureDetector + Send + 'static,
{
    /// Creates a stopped engine; `factory` is cloned once per shard and
    /// builds one detector per watched process.
    pub fn new(
        transport: T,
        clock: C,
        config: EngineConfig,
        factory: impl FnMut(ProcessId) -> D + Send + Clone + 'static,
    ) -> Self {
        let config = EngineConfig {
            workers: config.workers.max(1),
            slots_per_shard: config.slots_per_shard.max(1),
            ring_capacity: config.ring_capacity.max(2),
            batch_slots: config.batch_slots.max(1),
            publish_every: config.publish_every,
        };
        let cells: Vec<Arc<ShardCell>> = (0..config.workers)
            .map(|_| Arc::new(ShardCell::new(config.slots_per_shard)))
            .collect();
        let shards = cells
            .iter()
            .map(|cell| {
                Shard::new(
                    Box::new(factory.clone()) as DetectorFactory<D>,
                    Arc::clone(cell),
                )
            })
            .collect();
        let worker_shared = (0..config.workers)
            .map(|_| Arc::new(WorkerShared::default()))
            .collect();
        ParallelShardEngine {
            clock,
            config,
            cells: Arc::new(cells),
            state: EngineState::Idle { transport, shards },
            intake_shared: Arc::new(IntakeShared::default()),
            // lint:allow(no-alloc-in-hot-path, one-time construction)
            lane_shared: Vec::new(),
            worker_shared,
            // lint:allow(no-alloc-in-hot-path, one-time construction)
            peers_per_shard: vec![0; config.workers],
            ring_dropped_past: 0,
            ticks: 0,
        }
    }

    /// Number of shards (= worker threads when running).
    pub fn shard_count(&self) -> usize {
        self.config.workers
    }

    /// The shard `process` routes to.
    pub fn shard_of(&self, process: ProcessId) -> usize {
        shard_index(process, self.config.workers)
    }

    /// Starts monitoring `process`. Only valid while stopped — the watch
    /// set is distributed to worker threads at [`start`](Self::start).
    ///
    /// # Errors
    ///
    /// [`EngineError::Running`] if workers are up,
    /// [`EngineError::WorkerPanicked`] if the engine already failed, and
    /// [`EngineError::Capacity`] if the target shard is full.
    pub fn watch(&mut self, process: ProcessId) -> Result<bool, EngineError> {
        let idx = shard_index(process, self.config.workers);
        let shard = match &mut self.state {
            EngineState::Idle { shards, .. } => &mut shards[idx],
            EngineState::Failed { worker } => {
                return Err(EngineError::WorkerPanicked { worker: *worker })
            }
            _ => return Err(EngineError::Running),
        };
        if !shard.service.is_watching(process) && shard.service.len() >= self.config.slots_per_shard
        {
            return Err(EngineError::Capacity(ShardCapacityError {
                shard: idx,
                capacity: self.config.slots_per_shard,
            }));
        }
        let newly = shard.service.watch(process);
        if newly {
            self.peers_per_shard[idx] += 1;
        }
        Ok(newly)
    }

    /// Stops monitoring `process`. Only valid while stopped.
    ///
    /// # Errors
    ///
    /// [`EngineError::Running`] if workers are up.
    pub fn unwatch(&mut self, process: ProcessId) -> Result<Option<D>, EngineError> {
        let idx = shard_index(process, self.config.workers);
        match &mut self.state {
            EngineState::Idle { shards, .. } => {
                let gone = shards[idx].service.unwatch(process);
                if gone.is_some() {
                    self.peers_per_shard[idx] = self.peers_per_shard[idx].saturating_sub(1);
                }
                Ok(gone)
            }
            EngineState::Failed { worker } => Err(EngineError::WorkerPanicked { worker: *worker }),
            _ => Err(EngineError::Running),
        }
    }

    /// Dumps the currently published epoch snapshots as a new checkpoint
    /// generation through `ckpt`.
    ///
    /// Valid in **any** state: the dump reads only the double-buffered
    /// snapshot cells, never worker-owned detector state, so in
    /// [`EngineMode::FreeRunning`] it runs concurrently with intake and
    /// workers (a [`CheckpointDaemon`](crate::persist::CheckpointDaemon)
    /// over [`reader`](Self::reader) gives the periodic cadence), and in
    /// [`EngineMode::Lockstep`] it is called explicitly between
    /// [`tick`](Self::tick)s.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`](crate::persist::PersistError) if the sink
    /// fails.
    pub fn checkpoint<S: crate::persist::SegmentSink>(
        &self,
        ckpt: &mut crate::persist::Checkpointer<S>,
    ) -> Result<crate::persist::CheckpointReport, crate::persist::PersistError> {
        ckpt.checkpoint(&self.reader(), &self.clock)
    }

    /// Bulk-imports peers recovered by
    /// [`Checkpointer::restore`](crate::persist::Checkpointer::restore):
    /// re-watches each, seeds its detector with the saved window moments,
    /// re-arms replay rejection, and publishes every shard so readers see
    /// pre-crash-quality levels before the first worker tick. Peers whose
    /// shard is full are counted in
    /// [`RestoreImport::capacity_rejected`](crate::persist::RestoreImport).
    ///
    /// Only valid while stopped, like [`watch`](Self::watch) — the watch
    /// set is distributed to worker threads at [`start`](Self::start).
    ///
    /// # Errors
    ///
    /// [`EngineError::Running`] if workers are up,
    /// [`EngineError::WorkerPanicked`] if the engine already failed.
    pub fn restore(
        &mut self,
        peers: &[crate::persist::RestoredPeer],
    ) -> Result<crate::persist::RestoreImport, EngineError> {
        match &self.state {
            EngineState::Idle { .. } => {}
            EngineState::Failed { worker } => {
                return Err(EngineError::WorkerPanicked { worker: *worker })
            }
            _ => return Err(EngineError::Running),
        }
        let mut import = crate::persist::RestoreImport::default();
        for peer in peers {
            match self.watch(peer.process) {
                Ok(_) => import.watched += 1,
                Err(EngineError::Capacity(_)) => {
                    import.capacity_rejected += 1;
                    continue;
                }
                Err(e) => return Err(e),
            }
            let idx = self.shard_of(peer.process);
            let EngineState::Idle { shards, .. } = &mut self.state else {
                return Err(EngineError::Running);
            };
            if let Some(seq) = peer.highest_seq {
                shards[idx].highest_seq.insert(peer.process, seq);
            }
            if let Some(seed) = &peer.seed {
                if let Some(d) = shards[idx].service.detector_mut(peer.process) {
                    d.restore_seed(seed);
                    import.seeded += 1;
                }
            }
        }
        let now = self.clock.now();
        if let EngineState::Idle { shards, .. } = &mut self.state {
            for shard in shards {
                shard.publish(now);
            }
        }
        Ok(import)
    }

    /// Spawns the rings and worker threads (plus the intake thread in
    /// [`EngineMode::FreeRunning`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Running`] if already started,
    /// [`EngineError::WorkerPanicked`] if the engine already failed.
    pub fn start(&mut self, mode: EngineMode) -> Result<(), EngineError> {
        match &self.state {
            EngineState::Idle { .. } => {}
            EngineState::Failed { worker } => {
                return Err(EngineError::WorkerPanicked { worker: *worker })
            }
            _ => return Err(EngineError::Running),
        }
        let (transport, shards) =
            match mem::replace(&mut self.state, EngineState::Failed { worker: usize::MAX }) {
                EngineState::Idle { transport, shards } => (transport, shards),
                // Unreachable: checked Idle above; the placeholder keeps the
                // state machine total without panicking.
                other => {
                    self.state = other;
                    return Err(EngineError::Running);
                }
            };

        let mut producers = Vec::with_capacity(self.config.workers);
        let mut consumers = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers {
            let (tx, rx) = heartbeat_ring(self.config.ring_capacity);
            producers.push(tx);
            consumers.push(rx);
        }

        match mode {
            EngineMode::Lockstep => {
                let barrier = PhaseBarrier::new();
                let workers = shards
                    .into_iter()
                    .zip(consumers)
                    .enumerate()
                    .map(|(idx, (shard, ring))| {
                        let watch = ring.watch();
                        let barrier = Arc::clone(&barrier);
                        let shared = Arc::clone(&self.worker_shared[idx]);
                        let handle = std::thread::spawn(move || {
                            lockstep_worker(idx, shard, ring, barrier, shared)
                        });
                        WorkerHandle {
                            handle,
                            // lint:allow(no-alloc-in-hot-path, one-time construction at start)
                            watches: vec![watch],
                        }
                    })
                    .collect();
                self.state = EngineState::Lockstep {
                    transport,
                    batch: FrameBatch::with_capacity(self.config.batch_slots),
                    groups: (0..self.config.workers)
                        .map(|_| Vec::with_capacity(self.config.batch_slots))
                        .collect(),
                    producers,
                    barrier,
                    workers,
                };
            }
            EngineMode::FreeRunning => {
                let stop = Arc::new(AtomicBool::new(false));
                let workers = shards
                    .into_iter()
                    .zip(consumers)
                    .enumerate()
                    .map(|(idx, (shard, ring))| {
                        let watch = ring.watch();
                        let stop = Arc::clone(&stop);
                        let shared = Arc::clone(&self.worker_shared[idx]);
                        let clock = self.clock.clone();
                        let publish_every = self.config.publish_every;
                        let handle = std::thread::spawn(move || {
                            // lint:allow(no-alloc-in-hot-path, one-time construction at start)
                            free_worker(shard, vec![ring], clock, stop, shared, publish_every)
                        });
                        WorkerHandle {
                            handle,
                            // lint:allow(no-alloc-in-hot-path, one-time construction at start)
                            watches: vec![watch],
                        }
                    })
                    .collect();
                let clock = self.clock.clone();
                let shared = Arc::clone(&self.intake_shared);
                let intake_stop = Arc::clone(&stop);
                let batch_slots = self.config.batch_slots;
                let intake = std::thread::spawn(move || {
                    intake_loop(
                        transport,
                        clock,
                        producers,
                        shared,
                        intake_stop,
                        batch_slots,
                    )
                });
                self.state = EngineState::Free {
                    intake,
                    stop,
                    workers,
                };
            }
        }
        Ok(())
    }

    /// Spawns one intake thread per transport *lane* plus free-running
    /// workers, wired through lane×worker SPSC rings (see the module
    /// docs). The engine's own transport sits parked until
    /// [`shutdown`](Self::shutdown); heartbeats arrive on the lanes,
    /// decoded through a per-lane [`WireDecoder`] that accepts both v1
    /// and compact v2 delta frames.
    ///
    /// Lane transports are consumed: shutdown drops them (they are bound
    /// sockets), so each `start_lanes` takes freshly bound lanes —
    /// typically [`MultiUdpTransport::into_lanes`](crate::lane::MultiUdpTransport::into_lanes).
    ///
    /// # Errors
    ///
    /// [`EngineError::Running`] if already started,
    /// [`EngineError::WorkerPanicked`] if the engine already failed, and
    /// [`EngineError::Transport`] if `lanes` is empty.
    pub fn start_lanes<L: Transport + 'static>(
        &mut self,
        lanes: Vec<L>,
    ) -> Result<(), EngineError> {
        match &self.state {
            EngineState::Idle { .. } => {}
            EngineState::Failed { worker } => {
                return Err(EngineError::WorkerPanicked { worker: *worker })
            }
            _ => return Err(EngineError::Running),
        }
        if lanes.is_empty() {
            return Err(EngineError::Transport(TransportError::Io(
                "start_lanes requires at least one lane".into(),
            )));
        }
        let (transport, shards) =
            match mem::replace(&mut self.state, EngineState::Failed { worker: usize::MAX }) {
                EngineState::Idle { transport, shards } => (transport, shards),
                // Unreachable: checked Idle above; the placeholder keeps the
                // state machine total without panicking.
                other => {
                    self.state = other;
                    return Err(EngineError::Running);
                }
            };

        // One ring per lane×worker pair: lane l's intake is the only
        // producer and worker w the only consumer of ring (l, w), so the
        // SPSC invariant holds with no cross-lane locking.
        let workers_n = self.config.workers;
        let mut lane_producers: Vec<Vec<RingProducer>> = Vec::with_capacity(lanes.len());
        let mut worker_rings: Vec<Vec<RingConsumer>> = (0..workers_n)
            .map(|_| Vec::with_capacity(lanes.len()))
            .collect();
        for _ in 0..lanes.len() {
            let mut producers = Vec::with_capacity(workers_n);
            for rings in worker_rings.iter_mut() {
                let (tx, rx) = heartbeat_ring(self.config.ring_capacity);
                producers.push(tx);
                rings.push(rx);
            }
            lane_producers.push(producers);
        }
        self.lane_shared = (0..lanes.len())
            .map(|_| Arc::new(LaneShared::default()))
            .collect();

        let stop = Arc::new(AtomicBool::new(false));
        let workers = shards
            .into_iter()
            .zip(worker_rings)
            .enumerate()
            .map(|(idx, (shard, rings))| {
                let watches = rings.iter().map(RingConsumer::watch).collect();
                let stop = Arc::clone(&stop);
                let shared = Arc::clone(&self.worker_shared[idx]);
                let clock = self.clock.clone();
                let publish_every = self.config.publish_every;
                let handle = std::thread::spawn(move || {
                    free_worker(shard, rings, clock, stop, shared, publish_every)
                });
                WorkerHandle { handle, watches }
            })
            .collect();

        let intakes = lanes
            .into_iter()
            .zip(lane_producers)
            .enumerate()
            .map(|(idx, (lane, producers))| {
                let shared = Arc::clone(&self.lane_shared[idx]);
                let stop = Arc::clone(&stop);
                let clock = self.clock.clone();
                let batch_slots = self.config.batch_slots;
                std::thread::spawn(move || {
                    lane_intake_loop(
                        Box::new(lane) as Box<dyn Transport>,
                        clock,
                        producers,
                        shared,
                        stop,
                        batch_slots,
                    )
                })
            })
            .collect();

        self.state = EngineState::FreeLanes {
            transport,
            intakes,
            stop,
            workers,
        };
        Ok(())
    }

    /// Runs one lockstep epoch: drain the transport, route every frame,
    /// release all workers through the barrier, wait for them.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotRunning`] / [`EngineError::NotLockstep`] in the
    /// wrong state, [`EngineError::Transport`] if the transport failed,
    /// [`EngineError::WorkerPanicked`] if a worker died.
    pub fn tick(&mut self) -> Result<EngineTickReport, EngineError> {
        let (transport, batch, groups, producers, barrier, workers) = match &mut self.state {
            EngineState::Lockstep {
                transport,
                batch,
                groups,
                producers,
                barrier,
                workers,
            } => (transport, batch, groups, producers, barrier, workers),
            EngineState::Idle { .. } => return Err(EngineError::NotRunning),
            EngineState::Free { .. } | EngineState::FreeLanes { .. } => {
                return Err(EngineError::NotLockstep)
            }
            EngineState::Failed { worker } => {
                return Err(EngineError::WorkerPanicked { worker: *worker })
            }
        };
        IntakeShared::add(&self.intake_shared.liveness, 1);
        let mut drained = 0usize;
        let mut corrupt = 0u64;
        let mut frames = 0u64;
        loop {
            batch.clear();
            let got = transport
                .recv_batch(batch)
                .map_err(EngineError::Transport)?;
            drained += got;
            // One stamp per drained batch. Under the frozen virtual
            // clock of a lockstep tick this is byte-identical to the
            // per-frame stamps `ShardedMonitor::tick` takes — the
            // equivalence proptest holds the engine to that.
            let now = self.clock.now();
            for frame in batch.iter() {
                match <&[u8; FRAME_LEN]>::try_from(frame) {
                    Ok(exact) => match Heartbeat::decode_exact(exact) {
                        Ok(hb) => {
                            frames += 1;
                            groups[shard_index(hb.sender, producers.len())].push(hb);
                        }
                        Err(_) => corrupt += 1,
                    },
                    Err(_) => corrupt += 1,
                }
            }
            // Publish each destination's group with one seqlock/tail
            // advance; per-ring FIFO order is batch order, as before.
            for (idx, group) in groups.iter_mut().enumerate() {
                if !group.is_empty() {
                    producers[idx].push_batch(group, now);
                    group.clear();
                }
            }
            if got < batch.capacity() {
                break;
            }
        }
        IntakeShared::add(&self.intake_shared.frames, frames);
        IntakeShared::add(&self.intake_shared.corrupt, corrupt);

        // Workers are parked between epochs, so their published stats are
        // quiescent on both sides of the barrier.
        let before: u64 = self
            .worker_shared
            .iter()
            .map(|w| w.accepted.load(Ordering::Acquire))
            .sum();
        barrier.begin(workers.len(), self.clock.now());
        barrier.wait_done()?;
        let after: u64 = self
            .worker_shared
            .iter()
            .map(|w| w.accepted.load(Ordering::Acquire))
            .sum();
        self.ticks += 1;
        Ok(EngineTickReport {
            drained,
            accepted: after.saturating_sub(before),
        })
    }

    /// Joins every thread and returns the engine to the stopped state,
    /// preserving all detector state (a later [`start`](Self::start)
    /// resumes where monitoring left off).
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerPanicked`] if any thread died — the engine is
    /// then terminally failed, since the dead worker's shard is gone.
    pub fn shutdown(&mut self) -> Result<(), EngineError> {
        let state = mem::replace(&mut self.state, EngineState::Failed { worker: usize::MAX });
        match state {
            EngineState::Idle { .. } => {
                self.state = state;
                Ok(())
            }
            EngineState::Failed { worker } => {
                self.state = EngineState::Failed { worker };
                Err(EngineError::WorkerPanicked { worker })
            }
            EngineState::Lockstep {
                transport,
                batch: _,
                groups: _,
                producers,
                barrier,
                workers,
            } => {
                barrier.stop();
                // Rings must outlive the workers' final drain.
                let shards = self.join_workers(workers)?;
                drop(producers);
                self.state = EngineState::Idle { transport, shards };
                Ok(())
            }
            EngineState::Free {
                intake,
                stop,
                workers,
            } => {
                stop.store(true, Ordering::Release);
                let transport = match intake.join() {
                    Ok(t) => t,
                    Err(_) => {
                        // Intake owned the transport; both are gone.
                        self.state = EngineState::Failed { worker: usize::MAX };
                        return Err(EngineError::WorkerPanicked { worker: usize::MAX });
                    }
                };
                let shards = self.join_workers(workers)?;
                self.state = EngineState::Idle { transport, shards };
                Ok(())
            }
            EngineState::FreeLanes {
                transport,
                intakes,
                stop,
                workers,
            } => {
                stop.store(true, Ordering::Release);
                let mut lane_panicked = false;
                for intake in intakes {
                    // Lane transports are dropped here: lanes are bound
                    // sockets, so a later `start_lanes` rebinds fresh ones.
                    lane_panicked |= intake.join().is_err();
                }
                if lane_panicked {
                    self.state = EngineState::Failed { worker: usize::MAX };
                    return Err(EngineError::WorkerPanicked { worker: usize::MAX });
                }
                let shards = self.join_workers(workers)?;
                self.state = EngineState::Idle { transport, shards };
                Ok(())
            }
        }
    }

    /// Joins workers, folding their rings' drop counts into the running
    /// total. On a panicked worker the engine stays `Failed`.
    fn join_workers(
        &mut self,
        workers: Vec<WorkerHandle<D>>,
    ) -> Result<Vec<Shard<D>>, EngineError> {
        let mut shards = Vec::with_capacity(workers.len());
        let mut panicked = None;
        for (idx, worker) in workers.into_iter().enumerate() {
            self.ring_dropped_past = self.ring_dropped_past.wrapping_add(worker.ring_dropped());
            match worker.handle.join() {
                Ok(shard) => shards.push(shard),
                Err(_) => panicked = Some(idx),
            }
        }
        match panicked {
            Some(worker) => {
                self.state = EngineState::Failed { worker };
                Err(EngineError::WorkerPanicked { worker })
            }
            None => Ok(shards),
        }
    }

    /// The transport, readable while the engine is stopped (a running
    /// engine's intake side owns it). Useful for draining fault-injector
    /// statistics after [`shutdown`](Self::shutdown).
    pub fn transport(&self) -> Option<&T> {
        match &self.state {
            EngineState::Idle { transport, .. } => Some(transport),
            _ => None,
        }
    }

    /// A cloneable lock-free reader over the published epoch snapshots —
    /// the identical [`SnapshotReader`] type the sharded monitor serves.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::from_cells(Arc::clone(&self.cells))
    }

    /// A transport fault the free-running intake thread hit, if any.
    /// The intake thread stops on the first fault; workers keep serving
    /// reads until [`shutdown`](Self::shutdown).
    pub fn intake_fault(&self) -> Option<TransportError> {
        let own = match self.intake_shared.fault.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        };
        if own.is_some() {
            return own;
        }
        self.lane_shared
            .iter()
            .find_map(|lane| match lane.intake.fault.lock() {
                Ok(g) => g.clone(),
                Err(p) => p.into_inner().clone(),
            })
    }

    /// Aggregated counters. Callable in any state; while running, values
    /// are the workers' latest published snapshots.
    pub fn stats(&self) -> EngineStats {
        let mut totals = MonitorStats {
            corrupt: self.intake_shared.corrupt.load(Ordering::Relaxed),
            ..MonitorStats::default()
        };
        let mut per_worker = Vec::with_capacity(self.worker_shared.len());
        for shared in &self.worker_shared {
            let stats = shared.load_stats();
            totals.accepted += stats.accepted;
            totals.stale += stats.stale;
            totals.duplicate += stats.duplicate;
            totals.unwatched += stats.unwatched;
            per_worker.push(stats);
        }
        let mut per_lane_frames = Vec::with_capacity(self.lane_shared.len());
        let mut per_lane_corrupt = Vec::with_capacity(self.lane_shared.len());
        let mut stage = StageNanos::default();
        let mut lane_frames_total = 0u64;
        for lane in &self.lane_shared {
            let frames = lane.intake.frames.load(Ordering::Relaxed);
            let corrupt = lane.intake.corrupt.load(Ordering::Relaxed);
            per_lane_frames.push(frames);
            per_lane_corrupt.push(corrupt);
            lane_frames_total += frames;
            totals.corrupt += corrupt;
            stage.decode += lane.decode_nanos.load(Ordering::Relaxed);
            stage.route += lane.route_nanos.load(Ordering::Relaxed);
        }
        for shared in &self.worker_shared {
            stage.update += shared.update_nanos.load(Ordering::Relaxed);
        }
        EngineStats {
            totals,
            per_worker,
            peers_per_shard: self.peers_per_shard.clone(),
            ring_dropped: self.ring_dropped_total(),
            intake_frames: self.intake_shared.frames.load(Ordering::Relaxed) + lane_frames_total,
            ticks: self.ticks,
            per_lane_frames,
            per_lane_corrupt,
            stage,
        }
    }

    /// Total frames evicted by drop-oldest ring backpressure, across all
    /// workers and surviving engine restarts.
    pub fn ring_dropped_total(&self) -> u64 {
        let live: u64 = match &self.state {
            EngineState::Lockstep { workers, .. }
            | EngineState::Free { workers, .. }
            | EngineState::FreeLanes { workers, .. } => {
                workers.iter().map(WorkerHandle::ring_dropped).sum()
            }
            _ => 0,
        };
        self.ring_dropped_past.wrapping_add(live)
    }

    /// Tracks the intake thread and every worker on `board`, labeled
    /// `engine.intake` and `engine.worker.<i>`.
    pub fn register_health(&self, board: &mut HealthBoard, now: Timestamp) {
        board.track(
            "engine.intake",
            Arc::clone(&self.intake_shared.liveness),
            now,
        );
        for (idx, shared) in self.worker_shared.iter().enumerate() {
            board.track(
                format!("engine.worker.{idx}"),
                Arc::clone(&shared.liveness),
                now,
            );
        }
        for (idx, lane) in self.lane_shared.iter().enumerate() {
            board.track(
                format!("engine.lane.{idx}"),
                Arc::clone(&lane.intake.liveness),
                now,
            );
        }
    }

    /// `Some(worker)` if any worker (or the intake thread) has panicked
    /// since the last start — the poisoned-worker signal the watchdog
    /// layer consumes without blocking on a join.
    pub fn poisoned(&self) -> Option<usize> {
        if let EngineState::Failed { worker } = &self.state {
            return Some(*worker);
        }
        if self.intake_shared.panicked.load(Ordering::Acquire) {
            return Some(usize::MAX);
        }
        if self
            .lane_shared
            .iter()
            .any(|lane| lane.intake.panicked.load(Ordering::Acquire))
        {
            return Some(usize::MAX);
        }
        self.worker_shared
            .iter()
            .position(|w| w.panicked.load(Ordering::Acquire))
    }

    /// Publishes the engine's counters into `registry` under `engine.*`:
    /// aggregate totals, per-worker ring depth/drop gauges, and per-worker
    /// utilization (fraction of loop iterations that processed frames).
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        let stats = self.stats();
        registry
            .counter("engine.accepted")
            .set(stats.totals.accepted);
        registry.counter("engine.corrupt").set(stats.totals.corrupt);
        registry.counter("engine.stale").set(stats.totals.stale);
        registry
            .counter("engine.duplicate")
            .set(stats.totals.duplicate);
        registry
            .counter("engine.unwatched")
            .set(stats.totals.unwatched);
        registry
            .counter("engine.intake.frames")
            .set(stats.intake_frames);
        registry
            .counter("engine.ring.dropped")
            .set(stats.ring_dropped);
        registry.counter("engine.ticks").set(stats.ticks);
        registry
            .gauge("engine.workers")
            .set(self.config.workers as f64);
        registry
            .gauge("engine.peers")
            .set(stats.peers_per_shard.iter().sum::<usize>() as f64);
        let live_workers: Option<&Vec<WorkerHandle<D>>> = match &self.state {
            EngineState::Lockstep { workers, .. }
            | EngineState::Free { workers, .. }
            | EngineState::FreeLanes { workers, .. } => Some(workers),
            _ => None,
        };
        for (idx, shared) in self.worker_shared.iter().enumerate() {
            if let Some(workers) = live_workers {
                registry
                    .gauge(&format!("engine.worker.{idx}.ring_depth"))
                    .set(workers[idx].ring_depth() as f64);
                registry
                    .counter(&format!("engine.worker.{idx}.ring_dropped"))
                    .set(workers[idx].ring_dropped());
            }
            let loops = shared.loops.load(Ordering::Relaxed);
            let busy = shared.busy_loops.load(Ordering::Relaxed);
            let utilization = if loops == 0 {
                0.0
            } else {
                busy as f64 / loops as f64
            };
            registry
                .gauge(&format!("engine.worker.{idx}.utilization"))
                .set(utilization);
            registry
                .counter(&format!("engine.worker.{idx}.update_nanos"))
                .set(shared.update_nanos.load(Ordering::Relaxed));
        }
        for (idx, lane) in self.lane_shared.iter().enumerate() {
            registry
                .counter(&format!("engine.lane.{idx}.frames"))
                .set(lane.intake.frames.load(Ordering::Relaxed));
            registry
                .counter(&format!("engine.lane.{idx}.corrupt"))
                .set(lane.intake.corrupt.load(Ordering::Relaxed));
            registry
                .counter(&format!("engine.lane.{idx}.decode_nanos"))
                .set(lane.decode_nanos.load(Ordering::Relaxed));
            registry
                .counter(&format!("engine.lane.{idx}.route_nanos"))
                .set(lane.route_nanos.load(Ordering::Relaxed));
        }
        if !self.lane_shared.is_empty() {
            registry
                .gauge("engine.lanes")
                .set(self.lane_shared.len() as f64);
            registry
                .counter("engine.stage.decode_nanos")
                .set(stats.stage.decode);
            registry
                .counter("engine.stage.route_nanos")
                .set(stats.stage.route);
            registry
                .counter("engine.stage.update_nanos")
                .set(stats.stage.update);
        }
    }
}

impl<T, C, D> Drop for ParallelShardEngine<T, C, D> {
    /// Join-on-drop backstop: stops and joins any running threads so an
    /// engine falling out of scope never leaks spinning workers.
    fn drop(&mut self) {
        match mem::replace(&mut self.state, EngineState::Failed { worker: usize::MAX }) {
            EngineState::Lockstep {
                barrier, workers, ..
            } => {
                barrier.stop();
                for worker in workers {
                    let _ = worker.handle.join();
                }
            }
            EngineState::Free {
                intake,
                stop,
                workers,
            } => {
                stop.store(true, Ordering::Release);
                let _ = intake.join();
                for worker in workers {
                    let _ = worker.handle.join();
                }
            }
            EngineState::FreeLanes {
                intakes,
                stop,
                workers,
                ..
            } => {
                stop.store(true, Ordering::Release);
                for intake in intakes {
                    let _ = intake.join();
                }
                for worker in workers {
                    let _ = worker.handle.join();
                }
            }
            EngineState::Idle { .. } | EngineState::Failed { .. } => {}
        }
    }
}

/// Lockstep worker: park on the barrier, run exactly one drain+publish
/// per epoch, report done. Returns its shard on stop for state handback.
fn lockstep_worker<D: AccrualFailureDetector>(
    idx: usize,
    mut shard: Shard<D>,
    mut ring: RingConsumer,
    barrier: Arc<PhaseBarrier>,
    shared: Arc<WorkerShared>,
) -> Shard<D> {
    let _guard = WorkerPanicGuard {
        worker: idx,
        barrier: Some(Arc::clone(&barrier)),
        shared: Arc::clone(&shared),
    };
    let mut epoch = 0u64;
    loop {
        match barrier.wait_begin(epoch) {
            WorkerSignal::Stop => break,
            WorkerSignal::Run {
                epoch: next,
                publish_at,
            } => {
                epoch = next;
                while let Some((hb, at)) = ring.pop() {
                    shard.accept(hb, at);
                }
                shard.publish(publish_at);
                shared.store_stats(&shard.stats);
                IntakeShared::add(&shared.liveness, 1);
                barrier.done();
            }
        }
    }
    shard
}

/// Free-running worker: drain its rings round-robin (bounded total per
/// iteration), publish on the configured cadence, yield when idle. On
/// stop, drain what's left and publish one final epoch. Takes one ring
/// per feeding intake — a single ring normally, one per lane under
/// [`ParallelShardEngine::start_lanes`].
fn free_worker<C: Clock, D: AccrualFailureDetector>(
    mut shard: Shard<D>,
    mut rings: Vec<RingConsumer>,
    clock: C,
    stop: Arc<AtomicBool>,
    shared: Arc<WorkerShared>,
    publish_every: Duration,
) -> Shard<D> {
    let _guard = WorkerPanicGuard {
        worker: 0,
        barrier: None,
        shared: Arc::clone(&shared),
    };
    // Publish the initial (all-watched, no-heartbeat) epoch so readers
    // see the watch set immediately.
    let mut last_publish = clock.now();
    shard.publish(last_publish);
    loop {
        // Order matters: read stop *before* the final drain so no frame
        // pushed before the stop store can be missed.
        let stopping = stop.load(Ordering::Acquire);
        let drain_start = clock.now();
        let mut processed = 0usize;
        // Round-robin across rings; a dry pass over every ring ends the
        // drain even with budget left, so one empty lane can't spin.
        let mut dry = 0usize;
        let mut next = 0usize;
        while processed < WORKER_DRAIN_CAP && dry < rings.len() {
            match rings[next].pop() {
                Some((hb, at)) => {
                    shard.accept(hb, at);
                    processed += 1;
                    dry = 0;
                }
                None => dry += 1,
            }
            next = (next + 1) % rings.len();
        }
        let now = clock.now();
        let due = now.saturating_duration_since(last_publish) >= publish_every;
        if processed > 0 {
            IntakeShared::add(
                &shared.update_nanos,
                now.saturating_duration_since(drain_start).as_nanos(),
            );
        }
        if processed > 0 || due || stopping {
            if due || stopping {
                shard.publish(now);
                last_publish = now;
            }
            shared.store_stats(&shard.stats);
        }
        IntakeShared::add(&shared.liveness, 1);
        IntakeShared::add(&shared.loops, 1);
        if processed > 0 {
            IntakeShared::add(&shared.busy_loops, 1);
        } else if stopping {
            break;
        } else {
            std::thread::yield_now();
        }
    }
    shard
}

/// Free-running intake: drain the transport through the reusable arena,
/// decode, stamp, route. Stops on the cooperative flag or the first
/// transport fault (recorded for [`ParallelShardEngine::intake_fault`]).
/// Returns the transport on exit for state handback.
fn intake_loop<T: Transport, C: Clock>(
    mut transport: T,
    clock: C,
    mut producers: Vec<RingProducer>,
    shared: Arc<IntakeShared>,
    stop: Arc<AtomicBool>,
    batch_slots: usize,
) -> T {
    let _guard = IntakePanicGuard {
        shared: Arc::clone(&shared),
    };
    let mut batch = FrameBatch::with_capacity(batch_slots);
    let shards = producers.len();
    // Per-destination scratch, reused across batches: grouping a batch
    // by worker ring is allocation-free in steady state.
    let mut groups: Vec<Vec<Heartbeat>> = (0..shards)
        .map(|_| Vec::with_capacity(batch_slots))
        .collect();
    while !stop.load(Ordering::Acquire) {
        batch.clear();
        match transport.recv_batch(&mut batch) {
            Ok(0) => {
                IntakeShared::add(&shared.liveness, 1);
                std::thread::yield_now();
            }
            Ok(got) => {
                let mut corrupt = 0u64;
                let mut frames = 0u64;
                // One stamp per drained batch: every frame in it shares
                // this arrival. The skew a frame can see is bounded by
                // the batch's own decode+route time (see DESIGN.md §7j).
                let now = clock.now();
                for frame in batch.iter() {
                    match <&[u8; FRAME_LEN]>::try_from(frame) {
                        Ok(exact) => match Heartbeat::decode_exact(exact) {
                            Ok(hb) => {
                                frames += 1;
                                groups[shard_index(hb.sender, shards)].push(hb);
                            }
                            Err(_) => corrupt += 1,
                        },
                        Err(_) => corrupt += 1,
                    }
                }
                for (idx, group) in groups.iter_mut().enumerate() {
                    if !group.is_empty() {
                        producers[idx].push_batch(group, now);
                        group.clear();
                    }
                }
                let _ = got;
                IntakeShared::add(&shared.frames, frames);
                IntakeShared::add(&shared.corrupt, corrupt);
                IntakeShared::add(&shared.liveness, 1);
            }
            Err(fault) => {
                let mut slot = match shared.fault.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                *slot = Some(fault);
                break;
            }
        }
    }
    transport
}

/// One lane's intake: drain the lane transport through a reusable arena,
/// decode every frame through a per-lane [`WireDecoder`] (v1 and v2
/// delta frames mix freely), stamp, and hash-route into this lane's
/// per-worker rings. Each batch is timed in two passes on the engine
/// clock — decode, then stamp+route — feeding the per-stage profile in
/// [`EngineStats::stage`]. Stops on the cooperative flag or the first
/// transport fault.
fn lane_intake_loop<C: Clock>(
    mut transport: Box<dyn Transport>,
    clock: C,
    mut producers: Vec<RingProducer>,
    shared: Arc<LaneShared>,
    stop: Arc<AtomicBool>,
    batch_slots: usize,
) -> Box<dyn Transport> {
    let _guard = LanePanicGuard {
        shared: Arc::clone(&shared),
    };
    let mut batch = FrameBatch::with_capacity(batch_slots);
    let mut decoder = WireDecoder::new();
    // Scratch for the decode pass, reused across batches: allocation-free
    // in steady state (capacity equals the arena's slot count).
    let mut scratch: Vec<Heartbeat> = Vec::with_capacity(batch_slots);
    let shards = producers.len();
    // Per-destination scratch for the route pass, also reused: a drained
    // batch publishes with one seqlock advance per (ring, group) instead
    // of one per frame.
    let mut groups: Vec<Vec<Heartbeat>> = (0..shards)
        .map(|_| Vec::with_capacity(batch_slots))
        .collect();
    while !stop.load(Ordering::Acquire) {
        batch.clear();
        match transport.recv_batch(&mut batch) {
            Ok(0) => {
                IntakeShared::add(&shared.intake.liveness, 1);
                std::thread::yield_now();
            }
            Ok(_) => {
                let mut corrupt = 0u64;
                scratch.clear();
                let decode_start = clock.now();
                for frame in batch.iter() {
                    match decoder.decode(frame) {
                        Ok(hb) => scratch.push(hb),
                        Err(_) => corrupt += 1,
                    }
                }
                // One stamp per batch, doubling as the stage boundary:
                // every frame of this batch arrives at `route_start`.
                // The skew against its true socket-drain moment is
                // bounded by the batch's decode time (DESIGN.md §7j).
                let route_start = clock.now();
                let frames = scratch.len() as u64;
                for hb in scratch.drain(..) {
                    groups[shard_index(hb.sender, shards)].push(hb);
                }
                for (idx, group) in groups.iter_mut().enumerate() {
                    if !group.is_empty() {
                        producers[idx].push_batch(group, route_start);
                        group.clear();
                    }
                }
                let route_end = clock.now();
                IntakeShared::add(
                    &shared.decode_nanos,
                    route_start
                        .saturating_duration_since(decode_start)
                        .as_nanos(),
                );
                IntakeShared::add(
                    &shared.route_nanos,
                    route_end.saturating_duration_since(route_start).as_nanos(),
                );
                IntakeShared::add(&shared.intake.frames, frames);
                IntakeShared::add(&shared.intake.corrupt, corrupt);
                IntakeShared::add(&shared.intake.liveness, 1);
            }
            Err(fault) => {
                let mut slot = match shared.intake.fault.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                *slot = Some(fault);
                break;
            }
        }
    }
    transport
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::transport::ChannelTransport;
    use afd_detectors::simple::SimpleAccrual;

    type Engine = ParallelShardEngine<ChannelTransport, VirtualClock, SimpleAccrual>;

    fn rig(config: EngineConfig) -> (ChannelTransport, Engine, VirtualClock) {
        let (tx, rx) = ChannelTransport::pair();
        let clock = VirtualClock::new();
        let engine = ParallelShardEngine::new(rx, clock.clone(), config, |_| {
            SimpleAccrual::new(Timestamp::ZERO)
        });
        (tx, engine, clock)
    }

    fn frame(sender: u32, seq: u64) -> Vec<u8> {
        Heartbeat {
            sender: ProcessId::new(sender),
            seq,
            sent_at: Timestamp::from_secs(seq),
        }
        .encode()
        .to_vec()
    }

    #[test]
    fn lockstep_tick_accepts_and_publishes() {
        let (mut tx, mut engine, clock) = rig(EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        });
        for id in 0..6u32 {
            engine.watch(ProcessId::new(id)).unwrap();
        }
        engine.start(EngineMode::Lockstep).unwrap();
        clock.set(Timestamp::from_secs(5));
        for id in 0..6u32 {
            tx.send(&frame(id, 1)).unwrap();
        }
        tx.send(b"garbage").unwrap();
        let report = engine.tick().unwrap();
        assert_eq!(report.drained, 7);
        assert_eq!(report.accepted, 6);

        let reader = engine.reader();
        assert_eq!(reader.published_at(), Timestamp::from_secs(5));
        assert_eq!(reader.snapshot().len(), 6);
        for id in 0..6u32 {
            assert_eq!(reader.level(ProcessId::new(id)).unwrap().value(), 0.0);
        }
        let stats = engine.stats();
        assert_eq!(stats.totals.accepted, 6);
        assert_eq!(stats.totals.corrupt, 1);
        assert_eq!(stats.ticks, 1);
        engine.shutdown().unwrap();
    }

    #[test]
    fn watch_is_rejected_while_running_and_resumes_after_shutdown() {
        let (_tx, mut engine, _clock) = rig(EngineConfig::default());
        engine.watch(ProcessId::new(1)).unwrap();
        engine.start(EngineMode::Lockstep).unwrap();
        assert_eq!(engine.watch(ProcessId::new(2)), Err(EngineError::Running));
        assert!(matches!(
            engine.unwatch(ProcessId::new(1)),
            Err(EngineError::Running)
        ));
        engine.shutdown().unwrap();
        assert_eq!(engine.watch(ProcessId::new(2)), Ok(true));
        // Detector state survived the stop/start cycle.
        assert_eq!(engine.watch(ProcessId::new(1)), Ok(false));
    }

    #[test]
    fn capacity_error_is_typed() {
        let (_tx, mut engine, _clock) = rig(EngineConfig {
            workers: 1,
            slots_per_shard: 1,
            ..EngineConfig::default()
        });
        engine.watch(ProcessId::new(1)).unwrap();
        assert!(matches!(
            engine.watch(ProcessId::new(2)),
            Err(EngineError::Capacity(_))
        ));
    }

    #[test]
    fn tick_requires_lockstep_mode() {
        let (_tx, mut engine, _clock) = rig(EngineConfig {
            workers: 2,
            publish_every: Duration::ZERO,
            ..EngineConfig::default()
        });
        assert_eq!(engine.tick().unwrap_err(), EngineError::NotRunning);
        engine.start(EngineMode::FreeRunning).unwrap();
        assert_eq!(engine.tick().unwrap_err(), EngineError::NotLockstep);
        engine.shutdown().unwrap();
    }

    #[test]
    fn free_running_processes_without_ticks() {
        let (mut tx, mut engine, clock) = rig(EngineConfig {
            workers: 2,
            publish_every: Duration::ZERO,
            ..EngineConfig::default()
        });
        for id in 0..4u32 {
            engine.watch(ProcessId::new(id)).unwrap();
        }
        engine.start(EngineMode::FreeRunning).unwrap();
        clock.set(Timestamp::from_secs(1));
        for id in 0..4u32 {
            tx.send(&frame(id, 1)).unwrap();
        }
        // Settle: free-running acceptance is asynchronous.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.stats().totals.accepted < 4 {
            assert!(
                std::time::Instant::now() < deadline,
                "stalled: {:?}",
                engine.stats()
            );
            std::thread::yield_now();
        }
        engine.shutdown().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.totals.accepted, 4);
        assert_eq!(stats.intake_frames, 4);
        let reader = engine.reader();
        assert_eq!(reader.snapshot().len(), 4);
    }

    #[test]
    fn export_metrics_and_health_registration_cover_every_worker() {
        let (mut tx, mut engine, clock) = rig(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        engine.watch(ProcessId::new(1)).unwrap();
        engine.start(EngineMode::Lockstep).unwrap();
        clock.set(Timestamp::from_secs(1));
        tx.send(&frame(1, 1)).unwrap();
        engine.tick().unwrap();

        let registry = afd_obs::Registry::new();
        engine.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.accepted"), Some(1));
        assert_eq!(snap.counter("engine.intake.frames"), Some(1));
        assert_eq!(snap.counter("engine.ring.dropped"), Some(0));
        assert_eq!(snap.gauge("engine.workers"), Some(2.0));
        for idx in 0..2 {
            assert!(snap
                .gauge(&format!("engine.worker.{idx}.ring_depth"))
                .is_some());
            assert!(snap
                .gauge(&format!("engine.worker.{idx}.utilization"))
                .is_some());
        }

        let mut board = HealthBoard::new(Duration::from_secs(5));
        engine.register_health(&mut board, clock.now());
        assert_eq!(board.len(), 3, "intake + two workers");
        // Ticking keeps every label alive on the board's timeline.
        clock.advance(Duration::from_secs(4));
        engine.tick().unwrap();
        assert!(board.observe(clock.now()).is_empty());
        engine.shutdown().unwrap();
    }

    #[test]
    fn multi_lane_udp_intake_mixes_v1_and_v2_frames() {
        use crate::lane::MultiUdpTransport;
        use crate::transport::NullTransport;
        use crate::wire::{DeltaEncoder, MAX_V2_FRAME};

        let clock = VirtualClock::new();
        let mut engine = ParallelShardEngine::new(
            NullTransport,
            clock.clone(),
            EngineConfig {
                workers: 2,
                publish_every: Duration::ZERO,
                ..EngineConfig::default()
            },
            |_| SimpleAccrual::new(Timestamp::ZERO),
        );
        for id in 0..6u32 {
            engine.watch(ProcessId::new(id)).unwrap();
        }
        let multi = MultiUdpTransport::bind("127.0.0.1:0".parse().unwrap(), 2).unwrap();
        let addrs = multi.local_addrs().unwrap();
        engine.start_lanes(multi.into_lanes()).unwrap();
        clock.set(Timestamp::from_secs(1));

        let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        // Peers 1..6 speak v1, each to the lane its id hashes to.
        for id in 1..6u32 {
            let lane = MultiUdpTransport::lane_for(id, 2);
            sock.send_to(&frame(id, 1), addrs[lane]).unwrap();
        }
        // Peer 0 speaks v2: an intern frame then a compact delta through
        // the same lane (same per-lane decoder holds the intern table).
        let lane0 = MultiUdpTransport::lane_for(0, 2);
        let mut enc =
            DeltaEncoder::new(ProcessId::new(0), 7, std::time::Duration::from_secs(1), 64);
        let mut buf = [0u8; MAX_V2_FRAME];
        for seq in 1..=2u64 {
            let hb = Heartbeat {
                sender: ProcessId::new(0),
                seq,
                sent_at: Timestamp::from_secs(seq),
            };
            let n = enc.encode(&hb, &mut buf);
            assert!(n > 0, "encoder produced a frame");
            sock.send_to(&buf[..n], addrs[lane0]).unwrap();
        }
        // Garbage long enough to clear the lane's short-datagram filter.
        sock.send_to(&[0xAAu8; 16], addrs[lane0]).unwrap();

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let stats = engine.stats();
            if stats.totals.accepted >= 7 && stats.totals.corrupt >= 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "stalled: {stats:?}");
            std::thread::yield_now();
        }
        let stats = engine.stats();
        assert_eq!(stats.per_lane_frames.len(), 2);
        assert_eq!(stats.per_lane_frames.iter().sum::<u64>(), 7);
        assert_eq!(stats.per_lane_corrupt.iter().sum::<u64>(), 1);
        assert_eq!(stats.intake_frames, 7);

        let registry = afd_obs::Registry::new();
        engine.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("engine.lanes"), Some(2.0));
        let lane_frames = snap.counter("engine.lane.0.frames").unwrap()
            + snap.counter("engine.lane.1.frames").unwrap();
        assert_eq!(lane_frames, 7);
        assert!(snap.counter("engine.stage.decode_nanos").is_some());
        assert!(snap.counter("engine.stage.route_nanos").is_some());
        assert!(snap.counter("engine.stage.update_nanos").is_some());
        for idx in 0..2 {
            assert!(snap
                .counter(&format!("engine.worker.{idx}.update_nanos"))
                .is_some());
        }

        let mut board = HealthBoard::new(Duration::from_secs(5));
        engine.register_health(&mut board, clock.now());
        assert_eq!(board.len(), 5, "intake + 2 workers + 2 lanes");

        engine.shutdown().unwrap();
        // The parked engine transport came back through shutdown.
        assert!(engine.transport().is_some());
        let reader = engine.reader();
        assert_eq!(reader.snapshot().len(), 6);
    }

    #[test]
    fn start_lanes_rejects_empty_and_running() {
        let (_tx, mut engine, _clock) = rig(EngineConfig::default());
        assert!(matches!(
            engine.start_lanes(Vec::<crate::lane::UdpLane>::new()),
            Err(EngineError::Transport(_))
        ));
        engine.start(EngineMode::Lockstep).unwrap();
        let lane = crate::lane::UdpLane::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        assert!(matches!(
            engine.start_lanes(vec![lane]),
            Err(EngineError::Running)
        ));
        engine.shutdown().unwrap();
    }

    #[test]
    fn multi_lane_engine_restarts_in_plain_modes() {
        use crate::lane::MultiUdpTransport;
        use crate::transport::NullTransport;

        let clock = VirtualClock::new();
        let mut engine = ParallelShardEngine::new(
            NullTransport,
            clock.clone(),
            EngineConfig {
                workers: 2,
                publish_every: Duration::ZERO,
                ..EngineConfig::default()
            },
            |_| SimpleAccrual::new(Timestamp::ZERO),
        );
        engine.watch(ProcessId::new(1)).unwrap();
        let multi = MultiUdpTransport::bind("127.0.0.1:0".parse().unwrap(), 2).unwrap();
        engine.start_lanes(multi.into_lanes()).unwrap();
        assert!(matches!(engine.tick(), Err(EngineError::NotLockstep)));
        engine.shutdown().unwrap();
        // Detector state survives; a plain free-running start still works
        // against the (null) engine transport.
        assert_eq!(engine.watch(ProcessId::new(1)), Ok(false));
        engine.start(EngineMode::FreeRunning).unwrap();
        engine.shutdown().unwrap();
    }

    #[test]
    fn shutdown_and_drop_are_idempotent_and_clean() {
        let (_tx, mut engine, _clock) = rig(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        engine.shutdown().unwrap(); // idle: no-op
        engine.start(EngineMode::Lockstep).unwrap();
        engine.shutdown().unwrap();
        engine.start(EngineMode::Lockstep).unwrap();
        // Dropped while running: Drop joins everything.
    }
}
