//! Typed errors for the live runtime.
//!
//! Algorithm 4's steady-state loop must never panic on a transport fault:
//! sends and receives surface [`TransportError`], the retry layer converts
//! a persistently failing operation into
//! [`RuntimeError::RetriesExhausted`], and everything above decides policy
//! (respawn, degrade, give up) on values rather than unwinding.

use std::error::Error;
use std::fmt;

/// A transport-level send or receive failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint is gone: the channel hung up or the socket closed.
    Disconnected,
    /// An OS-level I/O failure, with the error description.
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport peer disconnected"),
            TransportError::Io(msg) => write!(f, "transport I/O error: {msg}"),
        }
    }
}

impl Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// A runtime-level failure, after local recovery has been attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A transport operation kept failing through the whole retry budget.
    RetriesExhausted {
        /// How many attempts were made (including the first).
        attempts: u32,
        /// The error from the final attempt.
        last: TransportError,
    },
    /// A supervised thread panicked or exited without being asked to stop.
    ThreadFailed {
        /// Which component's thread died.
        component: &'static str,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "transport still failing after {attempts} attempts: {last}"
                )
            }
            RuntimeError::ThreadFailed { component } => {
                write!(f, "{component} thread exited unexpectedly")
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TransportError::Io("connection reset".into());
        assert!(e.to_string().contains("connection reset"));
        let e = RuntimeError::RetriesExhausted {
            attempts: 5,
            last: TransportError::Disconnected,
        };
        assert!(e.to_string().contains("5 attempts"));
        assert!(e.to_string().contains("disconnected"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused");
        let t: TransportError = io.into();
        assert!(matches!(t, TransportError::Io(_)));
    }
}
