//! Typed errors for the live runtime.
//!
//! Algorithm 4's steady-state loop must never panic on a transport fault:
//! sends and receives surface [`TransportError`], the retry layer converts
//! a persistently failing operation into
//! [`RuntimeError::RetriesExhausted`], and everything above decides policy
//! (respawn, degrade, give up) on values rather than unwinding.

use std::error::Error;
use std::fmt;

use crate::shard::ShardCapacityError;

/// A transport-level send or receive failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint is gone: the channel hung up or the socket closed.
    Disconnected,
    /// An OS-level I/O failure, with the error description.
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport peer disconnected"),
            TransportError::Io(msg) => write!(f, "transport I/O error: {msg}"),
        }
    }
}

impl Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// A runtime-level failure, after local recovery has been attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A transport operation kept failing through the whole retry budget.
    RetriesExhausted {
        /// How many attempts were made (including the first).
        attempts: u32,
        /// The error from the final attempt.
        last: TransportError,
    },
    /// A supervised thread panicked or exited without being asked to stop.
    ThreadFailed {
        /// Which component's thread died.
        component: &'static str,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "transport still failing after {attempts} attempts: {last}"
                )
            }
            RuntimeError::ThreadFailed { component } => {
                write!(f, "{component} thread exited unexpectedly")
            }
        }
    }
}

impl Error for RuntimeError {}

/// A failure in the [`ParallelShardEngine`](crate::engine::ParallelShardEngine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The underlying transport failed.
    Transport(TransportError),
    /// A watch was refused because the target shard's snapshot bank is full.
    Capacity(ShardCapacityError),
    /// The operation requires the engine to be stopped, but workers are
    /// running (e.g. `watch` after `start`).
    Running,
    /// The operation requires running workers, but the engine is stopped.
    NotRunning,
    /// `tick` was called on a free-running engine; lockstep ticks only
    /// exist in [`EngineMode::Lockstep`](crate::engine::EngineMode).
    NotLockstep,
    /// A worker thread panicked; the engine is poisoned and must be shut
    /// down.
    WorkerPanicked {
        /// Index of the worker that died.
        worker: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Transport(e) => write!(f, "engine transport failure: {e}"),
            EngineError::Capacity(e) => write!(f, "engine watch refused: {e}"),
            EngineError::Running => {
                write!(
                    f,
                    "operation requires a stopped engine, but workers are running"
                )
            }
            EngineError::NotRunning => write!(f, "operation requires running workers"),
            EngineError::NotLockstep => {
                write!(f, "tick() is only meaningful in lockstep mode")
            }
            EngineError::WorkerPanicked { worker } => {
                write!(f, "shard worker {worker} panicked; engine poisoned")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Transport(e) => Some(e),
            EngineError::Capacity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for EngineError {
    fn from(e: TransportError) -> Self {
        EngineError::Transport(e)
    }
}

impl From<ShardCapacityError> for EngineError {
    fn from(e: ShardCapacityError) -> Self {
        EngineError::Capacity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TransportError::Io("connection reset".into());
        assert!(e.to_string().contains("connection reset"));
        let e = RuntimeError::RetriesExhausted {
            attempts: 5,
            last: TransportError::Disconnected,
        };
        assert!(e.to_string().contains("5 attempts"));
        assert!(e.to_string().contains("disconnected"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused");
        let t: TransportError = io.into();
        assert!(matches!(t, TransportError::Io(_)));
    }
}
