//! Bounded retry with exponential backoff and jitter.
//!
//! Transport faults are expected, not exceptional: the steady-state loop
//! retries them a bounded number of times with exponentially growing,
//! jittered pauses, and only then surfaces a typed
//! [`RuntimeError::RetriesExhausted`]. Sleeping is delegated to the caller
//! so the same policy runs against real time (`thread::sleep`) and against
//! the chaos harness's virtual clock.

use afd_core::time::Duration;
use afd_sim::rng::SimRng;

use crate::error::{RuntimeError, TransportError};

/// A bounded exponential-backoff policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so 1 means "no retries").
    pub max_attempts: u32,
    /// Pause after the first failure; doubles per subsequent failure.
    pub base_delay: Duration,
    /// Cap on any single pause.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each pause is scaled by a factor drawn
    /// uniformly from `[1 − jitter, 1 + jitter]`, decorrelating retry
    /// storms across senders.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The pause after failed attempt number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> Duration {
        let exp = self.base_delay.mul_f64(2f64.powi(attempt.min(30) as i32));
        let capped = if exp > self.max_delay {
            self.max_delay
        } else {
            exp
        };
        let factor = if self.jitter > 0.0 {
            rng.uniform_in(1.0 - self.jitter, 1.0 + self.jitter)
        } else {
            1.0
        };
        capped.mul_f64(factor.max(0.0))
    }

    /// Runs `op` under this policy, pausing via `sleep` between failures.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RetriesExhausted`] with the final transport
    /// error once the attempt budget is spent.
    pub fn run<T>(
        &self,
        rng: &mut SimRng,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut() -> Result<T, TransportError>,
    ) -> Result<T, RuntimeError> {
        let attempts = self.max_attempts.max(1);
        let mut last = TransportError::Disconnected;
        for attempt in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last = e;
                    if attempt + 1 < attempts {
                        sleep(self.backoff(attempt, rng));
                    }
                }
            }
        }
        Err(RuntimeError::RetriesExhausted { attempts, last })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_sleeping_when_op_succeeds() {
        let policy = RetryPolicy::default();
        let mut rng = SimRng::seed_from_u64(1);
        let mut slept = Vec::new();
        let out = policy.run(&mut rng, |d| slept.push(d), || Ok::<_, TransportError>(7));
        assert_eq!(out, Ok(7));
        assert!(slept.is_empty());
    }

    #[test]
    fn retries_until_success() {
        let policy = RetryPolicy::default();
        let mut rng = SimRng::seed_from_u64(2);
        let mut calls = 0;
        let out = policy.run(
            &mut rng,
            |_| {},
            || {
                calls += 1;
                if calls < 3 {
                    Err(TransportError::Io("flaky".into()))
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(out, Ok(3));
    }

    #[test]
    fn exhaustion_surfaces_last_error_and_attempt_count() {
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::seed_from_u64(3);
        let mut slept = Vec::new();
        let out: Result<(), _> = policy.run(
            &mut rng,
            |d| slept.push(d),
            || Err(TransportError::Io("down".into())),
        );
        assert_eq!(
            out,
            Err(RuntimeError::RetriesExhausted {
                attempts: 4,
                last: TransportError::Io("down".into()),
            })
        );
        // One pause between each attempt, none after the last.
        assert_eq!(slept.len(), 3);
        // Pauses grow roughly exponentially despite jitter.
        assert!(slept[2] > slept[0]);
    }

    #[test]
    fn backoff_grows_then_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(10));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(20));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(40));
        assert_eq!(policy.backoff(5, &mut rng), Duration::from_millis(100));
        assert_eq!(policy.backoff(29, &mut rng), Duration::from_millis(100));
    }

    #[test]
    fn jitter_stays_within_band() {
        let policy = RetryPolicy {
            jitter: 0.2,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(10),
            max_attempts: 5,
        };
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..200 {
            let d = policy.backoff(0, &mut rng).as_secs_f64();
            assert!((0.08..=0.12).contains(&d), "jittered pause {d} out of band");
        }
    }
}
