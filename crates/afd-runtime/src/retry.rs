//! Bounded retry with exponential backoff and jitter.
//!
//! Transport faults are expected, not exceptional: the steady-state loop
//! retries them a bounded number of times with exponentially growing,
//! jittered pauses, and only then surfaces a typed
//! [`RuntimeError::RetriesExhausted`]. Sleeping is delegated to the caller
//! so the same policy runs against real time (`thread::sleep`) and against
//! the chaos harness's virtual clock.

use afd_core::time::Duration;
use afd_sim::rng::SimRng;

use crate::error::{RuntimeError, TransportError};

/// A bounded exponential-backoff policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so 1 means "no retries").
    pub max_attempts: u32,
    /// Pause after the first failure; doubles per subsequent failure.
    pub base_delay: Duration,
    /// Cap on any single pause.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each pause is scaled by a factor drawn
    /// uniformly from `[1 − jitter, 1 + jitter]`, decorrelating retry
    /// storms across senders.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The pause after failed attempt number `attempt` (0-based).
    ///
    /// The exponential term saturates instead of overflowing: any
    /// `attempt` large enough to push `base_delay · 2^attempt` past the
    /// nanosecond representation yields `max_delay` (modulo jitter), so
    /// the policy is total over the whole `u32` attempt range.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> Duration {
        // base · 2^attempt as a saturating left shift: shifting past the
        // base's leading zeros would overflow u64 nanoseconds, and any
        // such value already exceeds every representable max_delay.
        let base = self.base_delay.as_nanos();
        let shift = attempt.min(63);
        let exp = if base == 0 {
            0
        } else if shift > base.leading_zeros() {
            u64::MAX
        } else {
            base << shift
        };
        let capped = Duration::from_nanos(exp).min(self.max_delay);
        let factor = if self.jitter > 0.0 {
            rng.uniform_in(1.0 - self.jitter, 1.0 + self.jitter)
        } else {
            1.0
        };
        // Jitter may scale up to (1 + jitter) · max_delay; saturate rather
        // than panic near the top of the range.
        let jittered = capped.as_nanos() as f64 * factor.max(0.0);
        if jittered >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration::from_nanos(jittered.round() as u64)
        }
    }

    /// Runs `op` under this policy, pausing via `sleep` between failures.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RetriesExhausted`] with the final transport
    /// error once the attempt budget is spent.
    pub fn run<T>(
        &self,
        rng: &mut SimRng,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut() -> Result<T, TransportError>,
    ) -> Result<T, RuntimeError> {
        let attempts = self.max_attempts.max(1);
        let mut last = TransportError::Disconnected;
        for attempt in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last = e;
                    if attempt + 1 < attempts {
                        sleep(self.backoff(attempt, rng));
                    }
                }
            }
        }
        Err(RuntimeError::RetriesExhausted { attempts, last })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_sleeping_when_op_succeeds() {
        let policy = RetryPolicy::default();
        let mut rng = SimRng::seed_from_u64(1);
        let mut slept = Vec::new();
        let out = policy.run(&mut rng, |d| slept.push(d), || Ok::<_, TransportError>(7));
        assert_eq!(out, Ok(7));
        assert!(slept.is_empty());
    }

    #[test]
    fn retries_until_success() {
        let policy = RetryPolicy::default();
        let mut rng = SimRng::seed_from_u64(2);
        let mut calls = 0;
        let out = policy.run(
            &mut rng,
            |_| {},
            || {
                calls += 1;
                if calls < 3 {
                    Err(TransportError::Io("flaky".into()))
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(out, Ok(3));
    }

    #[test]
    fn exhaustion_surfaces_last_error_and_attempt_count() {
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::seed_from_u64(3);
        let mut slept = Vec::new();
        let out: Result<(), _> = policy.run(
            &mut rng,
            |d| slept.push(d),
            || Err(TransportError::Io("down".into())),
        );
        assert_eq!(
            out,
            Err(RuntimeError::RetriesExhausted {
                attempts: 4,
                last: TransportError::Io("down".into()),
            })
        );
        // One pause between each attempt, none after the last.
        assert_eq!(slept.len(), 3);
        // Pauses grow roughly exponentially despite jitter.
        assert!(slept[2] > slept[0]);
    }

    #[test]
    fn backoff_grows_then_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(10));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(20));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(40));
        assert_eq!(policy.backoff(5, &mut rng), Duration::from_millis(100));
        assert_eq!(policy.backoff(29, &mut rng), Duration::from_millis(100));
    }

    #[test]
    fn huge_attempt_numbers_saturate_instead_of_overflowing() {
        // Regression: the exponential term used to be computed before the
        // cap, overflowing the nanosecond representation (and panicking in
        // `Duration::mul_f64`) once base · 2^attempt left the u64 range.
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay: Duration::from_secs(100),
            max_delay: Duration::from_secs(300),
            jitter: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(6);
        assert_eq!(policy.backoff(63, &mut rng), Duration::from_secs(300));
        assert_eq!(policy.backoff(u32::MAX, &mut rng), Duration::from_secs(300));
        // Still exact below the cap.
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_secs(200));
    }

    #[test]
    fn saturation_holds_at_extreme_delays_with_jitter() {
        // Even with max_delay at the top of the representable range and
        // jitter scaling above 1.0, the pause saturates instead of
        // panicking.
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay: Duration::MAX,
            max_delay: Duration::MAX,
            jitter: 0.5,
        };
        let mut rng = SimRng::seed_from_u64(7);
        for attempt in [0, 1, 63, 64, 1000, u32::MAX] {
            let d = policy.backoff(attempt, &mut rng);
            assert!(d <= Duration::MAX);
            assert!(d >= Duration::MAX.mul_f64(0.4), "jitter band floor");
        }
    }

    #[test]
    fn zero_base_delay_stays_zero() {
        let policy = RetryPolicy {
            base_delay: Duration::ZERO,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::seed_from_u64(8);
        assert_eq!(policy.backoff(u32::MAX, &mut rng), Duration::ZERO);
    }

    #[test]
    fn jitter_stays_within_band() {
        let policy = RetryPolicy {
            jitter: 0.2,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(10),
            max_attempts: 5,
        };
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..200 {
            let d = policy.backoff(0, &mut rng).as_secs_f64();
            assert!((0.08..=0.12).contains(&d), "jittered pause {d} out of band");
        }
    }
}
