//! A deterministic chaos harness: the whole runtime in virtual time.
//!
//! One lock-step loop drives a [`SenderCore`], a [`FaultInjector`]-wrapped
//! channel transport, and a [`RuntimeMonitor`] holding three
//! degradation-wrapped detectors (simple, Chen, φ) over a scripted
//! scenario of partitions, burst loss, and crash/recover cycles. All
//! randomness flows from the scenario seed through [`SimRng`] streams and
//! all time from a [`VirtualClock`], so a `(scenario, seed)` pair yields a
//! bit-identical suspicion timeline on every run — chaos tests assert on
//! exact replays, not on sleeps and hope.

use afd_core::accrual::AccrualFailureDetector;
use afd_core::binary::{Status, Transition, TransitionDetector};
use afd_core::history::SuspicionTrace;
use afd_core::process::ProcessId;
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::{Duration, Timestamp};
use afd_detectors::adaptive::AdaptiveAccrual;
use afd_detectors::akka::AkkaPhi;
use afd_detectors::bertier::BertierAccrual;
use afd_detectors::chen::ChenAccrual;
use afd_detectors::phi::PhiAccrual;
use afd_detectors::simple::SimpleAccrual;
use afd_obs::{EventKind, EventRing, ObsEvent, OnlineQos, QosReport, Registry, Snapshot};
use afd_sim::delay::UniformDelay;
use afd_sim::loss::{BernoulliLoss, GilbertElliottLoss};

use crate::clock::VirtualClock;
use crate::degrade::{DegradeConfig, GracefulDegradation};
use crate::error::TransportError;
use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use crate::monitor::{MonitorStats, RuntimeMonitor};
use crate::sender::{SenderConfig, SenderCore};
use crate::transport::{ChannelTransport, Transport};

/// A scripted chaos run: what the network and the monitored process do,
/// and when.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    /// Total virtual run length.
    pub horizon: Duration,
    /// Heartbeat cadence (Algorithm 4's Δ_i).
    pub heartbeat_interval: Duration,
    /// How often suspicion levels are sampled into the report traces.
    pub query_every: Duration,
    /// Simulation step; smaller ticks resolve fault edges more finely.
    pub tick: Duration,
    /// Network partitions `[from, to)` during which every frame is lost.
    pub partitions: Vec<(Timestamp, Timestamp)>,
    /// Gilbert–Elliott burst loss as `(burst_start_probability,
    /// mean_burst_len)`; bursts drop everything while active.
    pub burst_loss: Option<(f64, f64)>,
    /// Independent per-frame loss probability.
    pub bernoulli_loss: Option<f64>,
    /// Per-frame duplication probability.
    pub duplicate: f64,
    /// Per-frame byte-corruption probability (corrupt frames are caught by
    /// the wire checksum and dropped by the monitor).
    pub corrupt: f64,
    /// Uniform per-frame delivery jitter `(min, max)`.
    pub jitter: Option<(Duration, Duration)>,
    /// Crash episodes `(crash_at, recover_at)`; `None` recovery means the
    /// process stays down for the rest of the run.
    pub crashes: Vec<(Timestamp, Option<Timestamp>)>,
    /// Rate of the *sender's* local clock relative to true time (default
    /// 1.0). Under the paper's partially synchronous model local clocks
    /// drift within a bound; a rate below 1 makes the sender pace its
    /// heartbeats slower than the monitor expects, above 1 faster. The
    /// monitor side always observes true time.
    pub clock_drift: f64,
    /// Threshold applied to sampled suspicion levels to produce the binary
    /// stream the online QoS estimators and the event trace consume
    /// (suspect iff level > threshold, Equation 2).
    pub qos_threshold: SuspicionLevel,
}

impl ChaosScenario {
    /// A quiet scenario over `horizon`: 1 s heartbeats, 250 ms queries,
    /// 50 ms ticks, no faults.
    pub fn new(horizon: Duration) -> Self {
        ChaosScenario {
            horizon,
            heartbeat_interval: Duration::from_secs(1),
            query_every: Duration::from_millis(250),
            tick: Duration::from_millis(50),
            partitions: Vec::new(),
            burst_loss: None,
            bernoulli_loss: None,
            duplicate: 0.0,
            corrupt: 0.0,
            jitter: None,
            crashes: Vec::new(),
            clock_drift: 1.0,
            qos_threshold: SuspicionLevel::clamped(2.0),
        }
    }

    /// The QoS crash instant: the first crash the process never recovers
    /// from, if any.
    pub fn permanent_crash(&self) -> Option<Timestamp> {
        self.crashes
            .iter()
            .filter(|&&(_, recover)| recover.is_none())
            .map(|&(at, _)| at)
            .min()
    }

    fn build_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        if let Some((start, len)) = self.burst_loss {
            plan = plan.with_loss(GilbertElliottLoss::bursts(start, len));
        } else if let Some(p) = self.bernoulli_loss {
            plan = plan.with_loss(BernoulliLoss::new(p));
        }
        if let Some((lo, hi)) = self.jitter {
            plan = plan.with_delay(UniformDelay::new(lo, hi));
        }
        if self.duplicate > 0.0 {
            plan = plan.with_duplicate(self.duplicate);
        }
        if self.corrupt > 0.0 {
            plan = plan.with_corrupt(self.corrupt);
        }
        for &(from, to) in &self.partitions {
            plan = plan.with_partition(from, to);
        }
        plan
    }

    fn crashed_at(&self, t: Timestamp) -> bool {
        self.crashes
            .iter()
            .any(|&(c, r)| t >= c && r.is_none_or(|r| t < r))
    }

    /// The sender's local-clock reading at true time `t`: identity unless
    /// `clock_drift` departs from 1, in which case the sender paces its
    /// heartbeats by this warped clock while the monitor keeps true time.
    #[allow(clippy::float_cmp)]
    fn sender_time(&self, t: Timestamp) -> Timestamp {
        // Exact identity is intentional: the drift-free path must not go
        // through a float round-trip at all, so the default behaves
        // bit-identically to the pre-drift harness.
        // lint:allow(no-float-eq, sentinel check for the exact default value, not a computed comparison)
        if self.clock_drift == 1.0 {
            t
        } else {
            Timestamp::from_secs_f64(t.as_secs_f64() * self.clock_drift)
        }
    }
}

/// The three reference detectors, each behind its own graceful-degradation
/// wrapper, observing the same heartbeat stream.
#[derive(Debug)]
pub struct DetectorTrio {
    simple: GracefulDegradation<SimpleAccrual>,
    chen: GracefulDegradation<ChenAccrual>,
    phi: GracefulDegradation<PhiAccrual>,
}

impl DetectorTrio {
    /// Creates the trio with a shared degradation policy.
    pub fn new(start: Timestamp, degrade: DegradeConfig) -> Self {
        DetectorTrio {
            simple: GracefulDegradation::new(SimpleAccrual::new(start), degrade),
            chen: GracefulDegradation::new(ChenAccrual::with_defaults(), degrade),
            phi: GracefulDegradation::new(PhiAccrual::with_defaults(), degrade),
        }
    }

    /// The simple elapsed-time detector.
    pub fn simple(&mut self) -> &mut GracefulDegradation<SimpleAccrual> {
        &mut self.simple
    }

    /// Chen's estimator.
    pub fn chen(&mut self) -> &mut GracefulDegradation<ChenAccrual> {
        &mut self.chen
    }

    /// The φ detector.
    pub fn phi(&mut self) -> &mut GracefulDegradation<PhiAccrual> {
        &mut self.phi
    }

    /// Total degraded-mode entries across the trio.
    pub fn degrade_events(&self) -> u64 {
        self.simple.degrade_events() + self.chen.degrade_events() + self.phi.degrade_events()
    }
}

impl AccrualFailureDetector for DetectorTrio {
    fn record_heartbeat(&mut self, arrival: Timestamp) {
        self.simple.record_heartbeat(arrival);
        self.chen.record_heartbeat(arrival);
        self.phi.record_heartbeat(arrival);
    }

    /// The trio's headline level is φ's (the others are sampled
    /// individually by the harness).
    fn suspicion_level(&mut self, now: Timestamp) -> SuspicionLevel {
        self.phi.suspicion_level(now)
    }
}

/// Everything a chaos run produced.
#[derive(Debug)]
pub struct ChaosReport {
    /// Suspicion timeline of the simple detector.
    pub simple: SuspicionTrace,
    /// Suspicion timeline of Chen's detector.
    pub chen: SuspicionTrace,
    /// Suspicion timeline of the φ detector.
    pub phi: SuspicionTrace,
    /// What the fault injector did.
    pub fault_stats: FaultStats,
    /// What the monitor's intake saw.
    pub monitor_stats: MonitorStats,
    /// Degraded-mode entries across all detectors.
    pub degrade_events: u64,
    /// Heartbeats the sender emitted.
    pub heartbeats_sent: u64,
    /// Transport errors the steady-state loop absorbed (expected 0 for the
    /// in-process transport).
    pub transport_errors: u64,
    /// Per-detector streaming QoS estimates, computed live at every query
    /// point from the thresholded output (same order as [`traces`]).
    ///
    /// [`traces`]: ChaosReport::traces
    pub online_qos: Vec<(&'static str, QosReport)>,
    /// The structured event trace: S-/T-transitions and degradation
    /// switches, in observation order.
    pub events: Vec<ObsEvent>,
    /// Events evicted from the bounded ring before the run ended.
    pub events_dropped: u64,
    /// Final metrics snapshot: monitor intake, fault injector, sender
    /// retries, degradation counters.
    pub metrics: Snapshot,
}

impl ChaosReport {
    /// The three traces with their detector names.
    pub fn traces(&self) -> [(&'static str, &SuspicionTrace); 3] {
        [
            ("simple", &self.simple),
            ("chen", &self.chen),
            ("phi", &self.phi),
        ]
    }

    /// A compact fingerprint of the full suspicion timeline: exact
    /// (timestamp, level-bits) pairs, suitable for determinism assertions.
    pub fn fingerprint(&self) -> Vec<(u64, u64)> {
        self.traces()
            .iter()
            .flat_map(|(_, trace)| {
                trace
                    .iter()
                    .map(|s| (s.at.as_nanos(), s.level.value().to_bits()))
            })
            .collect()
    }
}

/// Per-detector observability state: the suspicion trace, the live QoS
/// estimator, and the transition/degradation trackers feeding the event
/// ring.
struct DetectorTracker {
    name: &'static str,
    trace: SuspicionTrace,
    qos: OnlineQos,
    transitions: TransitionDetector,
    degraded: bool,
}

impl DetectorTracker {
    fn new(name: &'static str, crash: Option<Timestamp>) -> Self {
        DetectorTracker {
            name,
            trace: SuspicionTrace::new(),
            qos: OnlineQos::new(crash),
            transitions: TransitionDetector::new(),
            degraded: false,
        }
    }

    fn observe(
        &mut self,
        at: Timestamp,
        level: SuspicionLevel,
        degraded_now: bool,
        threshold: SuspicionLevel,
        process: ProcessId,
        events: &mut EventRing,
    ) {
        self.trace.push(at, level);
        // Same interpretation as SuspicionTrace::threshold (Equation 2),
        // applied sample-by-sample so the online QoS numbers match an
        // offline analysis of the recorded trace exactly.
        let status = if level > threshold {
            Status::Suspected
        } else {
            Status::Trusted
        };
        self.qos.observe(at, status);
        if let Some(tr) = self.transitions.observe(status) {
            events.push(ObsEvent {
                at,
                source: self.name,
                process,
                kind: match tr {
                    Transition::Suspect => EventKind::Suspect,
                    Transition::Trust => EventKind::Trust,
                },
            });
        }
        if degraded_now != self.degraded {
            self.degraded = degraded_now;
            events.push(ObsEvent {
                at,
                source: self.name,
                process,
                kind: if degraded_now {
                    EventKind::DegradeEnter
                } else {
                    EventKind::DegradeExit
                },
            });
        }
    }
}

/// Drives the lock-step schedule shared by [`run_chaos`] and
/// [`run_chaos_zoo`]: for every tick of `scenario.tick` up to the horizon
/// it sets the virtual clock, applies the scenario's crash/recover
/// schedule to the sender, polls the sender by its (possibly drifting)
/// local clock, drains every delivery due at the tick, and invokes
/// `on_query` at each `query_every` boundary. Returns the number of
/// transport errors absorbed (expected 0 for in-process transports).
///
/// This is the one transition relation behind every chaos engine in this
/// crate: the scenario engines differ only in which detectors they mount
/// and how they sample them, never in scheduling. The bounded model
/// checker replays its counterexamples through the same primitive
/// operations via [`run_chaos_script`], so a schedule found in the model
/// exercises bit-identical runtime code here.
pub fn drive_lock_step<T, D>(
    scenario: &ChaosScenario,
    clock: &VirtualClock,
    core: &mut SenderCore,
    sender_side: &mut ChannelTransport,
    monitor: &mut RuntimeMonitor<T, VirtualClock, D>,
    mut on_query: impl FnMut(Timestamp, &mut RuntimeMonitor<T, VirtualClock, D>),
) -> u64
where
    T: Transport,
    D: AccrualFailureDetector,
{
    let mut transport_errors = 0u64;
    let mut next_query = Timestamp::ZERO;
    let mut t = Timestamp::ZERO;
    let end = Timestamp::ZERO + scenario.horizon;
    while t <= end {
        clock.set(t);

        if scenario.crashed_at(t) {
            if !core.is_crashed() {
                core.crash();
            }
        } else if core.is_crashed() {
            core.recover(scenario.sender_time(t));
        }
        // Backoff pauses are skipped in virtual time; the in-process
        // channel cannot transiently fail anyway. The sender paces itself
        // by its own (possibly drifting) clock.
        if core
            .poll(scenario.sender_time(t), sender_side, |_| {})
            .is_err()
        {
            transport_errors += 1;
        }
        // Drain deliveries due at this tick.
        loop {
            match monitor.poll() {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => {
                    transport_errors += 1;
                    break;
                }
            }
        }

        if t >= next_query {
            on_query(t, monitor);
            next_query += scenario.query_every;
        }
        t += scenario.tick;
    }
    transport_errors
}

/// Runs `scenario` under `seed` to completion in virtual time.
pub fn run_chaos(scenario: &ChaosScenario, seed: u64) -> ChaosReport {
    let clock = VirtualClock::new();
    let (mut sender_side, monitor_side) = ChannelTransport::pair();
    let injector = FaultInjector::new(
        monitor_side,
        clock.clone(),
        scenario.build_plan(),
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
    );
    let degrade = DegradeConfig::for_interval(scenario.heartbeat_interval, 3);
    let mut monitor = RuntimeMonitor::new(injector, clock.clone(), move |_| {
        DetectorTrio::new(Timestamp::ZERO, degrade)
    });
    let process = ProcessId::new(1);
    monitor.watch(process);

    let mut core = SenderCore::new(
        SenderConfig::new(process, scenario.heartbeat_interval),
        Timestamp::ZERO,
        seed,
    );

    let crash = scenario.permanent_crash();
    let mut trackers = [
        DetectorTracker::new("simple", crash),
        DetectorTracker::new("chen", crash),
        DetectorTracker::new("phi", crash),
    ];
    let mut events = EventRing::new(4096);
    let transport_errors = drive_lock_step(
        scenario,
        &clock,
        &mut core,
        &mut sender_side,
        &mut monitor,
        |t, monitor| {
            // `process` is watched at harness setup and never unwatched; a
            // missing detector would mean the harness itself is broken, so
            // skip the query rather than abort the run.
            debug_assert!(monitor.detector_mut(process).is_some(), "process watched");
            if let Some(trio) = monitor.detector_mut(process) {
                let thr = scenario.qos_threshold;
                let level = trio.simple().suspicion_level(t);
                let degraded = trio.simple().is_degraded();
                trackers[0].observe(t, level, degraded, thr, process, &mut events);
                let level = trio.chen().suspicion_level(t);
                let degraded = trio.chen().is_degraded();
                trackers[1].observe(t, level, degraded, thr, process, &mut events);
                let level = trio.phi().suspicion_level(t);
                let degraded = trio.phi().is_degraded();
                trackers[2].observe(t, level, degraded, thr, process, &mut events);
            }
        },
    );

    let registry = Registry::new();
    monitor.export_metrics(&registry);
    monitor.transport().export_metrics(&registry);
    core.export_metrics(&registry);
    let degrade_events = monitor.detector_mut(process).map_or(0, |trio| {
        trio.simple().export_metrics(&registry, "simple");
        trio.chen().export_metrics(&registry, "chen");
        trio.phi().export_metrics(&registry, "phi");
        trio.degrade_events()
    });
    let monitor_stats = monitor.stats();
    let fault_stats = monitor.transport().stats();
    let online_qos = trackers
        .iter()
        .map(|tr| (tr.name, tr.qos.report()))
        .collect();
    let [simple, chen, phi] = trackers.map(|tr| tr.trace);
    ChaosReport {
        simple,
        chen,
        phi,
        fault_stats,
        monitor_stats,
        degrade_events,
        heartbeats_sent: core.sent(),
        transport_errors,
        online_qos,
        events_dropped: events.dropped(),
        events: events.drain(),
        metrics: registry.snapshot(),
    }
}

/// One zoo inhabitant: a named, degradation-wrapped detector plus the
/// interpretation threshold its suspicion scale calls for.
///
/// Thresholds are per-member because the detectors speak different
/// languages: the simple detector's level is raw elapsed seconds, Chen's
/// and Bertier's are seconds past the expected arrival, the φ family's is
/// `−log₁₀` of a tail probability, and the adaptive detector's is a plain
/// probability in `[0, 1)`. A single scenario-wide threshold would compare
/// apples to logarithms.
pub struct ZooMember {
    name: &'static str,
    threshold: SuspicionLevel,
    detector: GracefulDegradation<Box<dyn AccrualFailureDetector>>,
}

impl core::fmt::Debug for ZooMember {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The boxed detector is a bare trait object (AccrualFailureDetector
        // does not require Debug), so only the identifying fields print.
        f.debug_struct("ZooMember")
            .field("name", &self.name)
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

impl ZooMember {
    /// Wraps `detector` under `name`, interpreted with `threshold`.
    pub fn new(
        name: &'static str,
        threshold: SuspicionLevel,
        detector: Box<dyn AccrualFailureDetector>,
        degrade: DegradeConfig,
    ) -> Self {
        ZooMember {
            name,
            threshold,
            detector: GracefulDegradation::new(detector, degrade),
        }
    }

    /// The member's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Every detector this repository implements, observing one heartbeat
/// stream side by side: simple (§5.1), Chen (§5.2), Bertier, φ (§5.3),
/// the Akka/Cassandra production φ, and the Satzger adaptive accrual.
///
/// The zoo is itself an [`AccrualFailureDetector`] (heartbeats broadcast
/// to every member; the headline level is φ's), so it drops into
/// [`RuntimeMonitor`] unchanged.
#[derive(Debug)]
pub struct DetectorZoo {
    members: Vec<ZooMember>,
}

/// Index of the φ member inside [`DetectorZoo::standard`], whose level is
/// the zoo's headline output (mirroring [`DetectorTrio`]).
const ZOO_HEADLINE: usize = 3;

impl DetectorZoo {
    /// The standard six-member zoo with a shared degradation policy and
    /// per-member thresholds calibrated for a 1 s heartbeat cadence:
    /// elapsed-time scales suspect at 2 s / 1 s of lateness, the φ family
    /// at φ = 2 (tail odds 1:100), the adaptive detector at 0.9
    /// (nine in ten past gaps were shorter).
    pub fn standard(degrade: DegradeConfig) -> Self {
        let members = vec![
            ZooMember::new(
                "simple",
                SuspicionLevel::clamped(2.0),
                Box::new(SimpleAccrual::new(Timestamp::ZERO)),
                degrade,
            ),
            ZooMember::new(
                "chen",
                SuspicionLevel::clamped(1.0),
                Box::new(ChenAccrual::with_defaults()),
                degrade,
            ),
            ZooMember::new(
                "bertier",
                SuspicionLevel::clamped(1.0),
                Box::new(BertierAccrual::with_defaults()),
                degrade,
            ),
            ZooMember::new(
                "phi",
                SuspicionLevel::clamped(2.0),
                Box::new(PhiAccrual::with_defaults()),
                degrade,
            ),
            ZooMember::new(
                "akka",
                SuspicionLevel::clamped(2.0),
                Box::new(AkkaPhi::with_defaults()),
                degrade,
            ),
            ZooMember::new(
                "adaptive",
                SuspicionLevel::clamped(0.9),
                Box::new(AdaptiveAccrual::with_defaults()),
                degrade,
            ),
        ];
        DetectorZoo { members }
    }

    /// The member names, in observation order.
    pub fn names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name).collect()
    }

    /// The members, mutably (for querying levels individually).
    pub fn members_mut(&mut self) -> &mut [ZooMember] {
        &mut self.members
    }

    /// Total degraded-mode entries across the zoo.
    pub fn degrade_events(&self) -> u64 {
        self.members
            .iter()
            .map(|m| m.detector.degrade_events())
            .sum()
    }
}

impl AccrualFailureDetector for DetectorZoo {
    fn record_heartbeat(&mut self, arrival: Timestamp) {
        for member in &mut self.members {
            member.detector.record_heartbeat(arrival);
        }
    }

    /// The zoo's headline level is φ's (every member is sampled
    /// individually by the harness).
    fn suspicion_level(&mut self, now: Timestamp) -> SuspicionLevel {
        self.members[ZOO_HEADLINE].detector.suspicion_level(now)
    }
}

/// One detector's outcome from a zoo run.
#[derive(Debug)]
pub struct ZooDetectorReport {
    /// The detector's name.
    pub name: &'static str,
    /// The interpretation threshold applied to its levels.
    pub threshold: SuspicionLevel,
    /// The sampled suspicion timeline.
    pub trace: SuspicionTrace,
    /// Streaming QoS estimates from the thresholded output (the paper's
    /// T_D, T_MR, T_M, λ_M, P_A, T_G).
    pub qos: QosReport,
}

/// Everything a zoo chaos run produced.
#[derive(Debug)]
pub struct ZooReport {
    /// Per-detector traces and QoS, in zoo observation order.
    pub detectors: Vec<ZooDetectorReport>,
    /// What the fault injector did.
    pub fault_stats: FaultStats,
    /// What the monitor's intake saw.
    pub monitor_stats: MonitorStats,
    /// Degraded-mode entries across all members.
    pub degrade_events: u64,
    /// Heartbeats the sender emitted.
    pub heartbeats_sent: u64,
    /// Transport errors the loop absorbed (expected 0 in-process).
    pub transport_errors: u64,
    /// The structured event trace across all members.
    pub events: Vec<ObsEvent>,
    /// Events evicted from the bounded ring before the run ended.
    pub events_dropped: u64,
    /// Final metrics snapshot.
    pub metrics: Snapshot,
}

impl ZooReport {
    /// A compact determinism fingerprint over every member's timeline.
    pub fn fingerprint(&self) -> Vec<(u64, u64)> {
        self.detectors
            .iter()
            .flat_map(|d| {
                d.trace
                    .iter()
                    .map(|s| (s.at.as_nanos(), s.level.value().to_bits()))
            })
            .collect()
    }
}

/// Runs `scenario` under `seed` with the full six-detector zoo observing
/// the same heartbeat stream — the engine behind the e16 detector race.
///
/// Identical lock-step structure to [`run_chaos`]; the only differences
/// are the member set and that each member is thresholded on its own
/// scale rather than by `scenario.qos_threshold`.
pub fn run_chaos_zoo(scenario: &ChaosScenario, seed: u64) -> ZooReport {
    let clock = VirtualClock::new();
    let (mut sender_side, monitor_side) = ChannelTransport::pair();
    let injector = FaultInjector::new(
        monitor_side,
        clock.clone(),
        scenario.build_plan(),
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
    );
    let degrade = DegradeConfig::for_interval(scenario.heartbeat_interval, 3);
    let mut monitor = RuntimeMonitor::new(injector, clock.clone(), move |_| {
        DetectorZoo::standard(degrade)
    });
    let process = ProcessId::new(1);
    monitor.watch(process);

    let mut core = SenderCore::new(
        SenderConfig::new(process, scenario.heartbeat_interval),
        Timestamp::ZERO,
        seed,
    );

    let crash = scenario.permanent_crash();
    let mut trackers: Vec<DetectorTracker> = DetectorZoo::standard(degrade)
        .names()
        .into_iter()
        .map(|name| DetectorTracker::new(name, crash))
        .collect();
    let mut events = EventRing::new(8192);
    let transport_errors = drive_lock_step(
        scenario,
        &clock,
        &mut core,
        &mut sender_side,
        &mut monitor,
        |t, monitor| {
            debug_assert!(monitor.detector_mut(process).is_some(), "process watched");
            if let Some(zoo) = monitor.detector_mut(process) {
                for (member, tracker) in zoo.members_mut().iter_mut().zip(trackers.iter_mut()) {
                    let level = member.detector.suspicion_level(t);
                    let degraded = member.detector.is_degraded();
                    tracker.observe(t, level, degraded, member.threshold, process, &mut events);
                }
            }
        },
    );

    let registry = Registry::new();
    monitor.export_metrics(&registry);
    monitor.transport().export_metrics(&registry);
    core.export_metrics(&registry);
    let degrade_events = monitor.detector_mut(process).map_or(0, |zoo| {
        for member in zoo.members_mut() {
            member.detector.export_metrics(&registry, member.name);
        }
        zoo.degrade_events()
    });
    let monitor_stats = monitor.stats();
    let fault_stats = monitor.transport().stats();
    let detectors = trackers
        .into_iter()
        .zip(DetectorZoo::standard(degrade).members)
        .map(|(tracker, member)| ZooDetectorReport {
            name: tracker.name,
            threshold: member.threshold,
            qos: tracker.qos.report(),
            trace: tracker.trace,
        })
        .collect();
    ZooReport {
        detectors,
        fault_stats,
        monitor_stats,
        degrade_events,
        heartbeats_sent: core.sent(),
        transport_errors,
        events_dropped: events.dropped(),
        events: events.drain(),
        metrics: registry.snapshot(),
    }
}

/// One primitive step of a scripted chaos run: the event alphabet of the
/// bounded model checker, replayed against the real runtime.
///
/// In-flight frames form an ordered pool; `Deliver`, `Drop`, and
/// `Duplicate` address it by index with stable `Vec::remove` semantics,
/// so a schedule enumerated by the model maps to exactly one runtime
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptEvent {
    /// Advance virtual time by one tick; every non-crashed sender whose
    /// heartbeat is due emits a frame into the in-flight pool (senders are
    /// polled in process-id order).
    Tick,
    /// Deliver in-flight frame `i` to the monitor and process it.
    Deliver(usize),
    /// Lose in-flight frame `i`.
    Drop(usize),
    /// Duplicate in-flight frame `i`; the copy joins the end of the pool.
    Duplicate(usize),
    /// Crash a sender: it stops emitting heartbeats until recovered.
    Crash(ProcessId),
    /// Recover a crashed sender; its next heartbeat is due immediately.
    Recover(ProcessId),
}

/// A fully explicit chaos schedule: no randomness, no fault injectors —
/// every loss, duplication, delay, and crash is an event in the script.
///
/// This is the exchange format between the bounded model checker and the
/// runtime: the checker's counterexample minimizer emits a `ChaosScript`,
/// and [`run_chaos_script`] replays it against the real
/// [`SenderCore`]/[`RuntimeMonitor`] pipeline so a model-level violation
/// can be confirmed (or refuted) on the production code path.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScript {
    /// Virtual-time step per [`ScriptEvent::Tick`].
    pub tick: Duration,
    /// Heartbeat cadence of every sender (Algorithm 4's Δ_i).
    pub heartbeat_interval: Duration,
    /// Number of monitored senders; they get process ids `1..=senders`.
    pub senders: u32,
    /// The schedule, applied in order from virtual time zero.
    pub events: Vec<ScriptEvent>,
}

impl ChaosScript {
    /// An empty script over `senders` processes with 1 s heartbeats and
    /// 250 ms ticks.
    pub fn new(senders: u32) -> Self {
        ChaosScript {
            tick: Duration::from_millis(250),
            heartbeat_interval: Duration::from_secs(1),
            senders,
            events: Vec::new(),
        }
    }

    /// The process ids this script drives, in polling order.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (1..=self.senders).map(ProcessId::new)
    }
}

/// A transport that captures outgoing frames instead of delivering them,
/// so the script harness can hold them in the in-flight pool until the
/// schedule says what happens to each.
#[derive(Debug, Default)]
struct CaptureTransport {
    frames: Vec<Vec<u8>>,
}

impl Transport for CaptureTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.frames.push(frame.to_vec());
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        Ok(None)
    }
}

/// The suspicion levels of every monitored process after one script event.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptSample {
    /// Index of the event in [`ChaosScript::events`] this sample follows.
    pub event_index: usize,
    /// Virtual time of the sample.
    pub at: Timestamp,
    /// Per-process suspicion levels, in process-id order.
    pub levels: Vec<(ProcessId, SuspicionLevel)>,
}

/// Everything a script replay produced.
#[derive(Debug)]
pub struct ScriptReport {
    /// One sample per script event, in schedule order.
    pub trace: Vec<ScriptSample>,
    /// What the monitor's intake saw (duplicates and stale frames are
    /// counted here — Algorithm 4's freshness filter at work).
    pub monitor_stats: MonitorStats,
    /// Heartbeats emitted across all senders.
    pub heartbeats_sent: u64,
    /// Frames still in flight when the script ended.
    pub undelivered: usize,
}

/// Replays `script` against the real sender/monitor pipeline in virtual
/// time, mounting one detector from `factory` per sender.
///
/// Heartbeats due at time zero are emitted into the in-flight pool before
/// the first event, matching [`SenderCore`]'s "first heartbeat at start"
/// semantics; each [`ScriptEvent::Tick`] then advances time and emits
/// whatever came due. After every event the harness samples each
/// process's suspicion level into the report trace, so a model-level
/// execution and its runtime replay can be compared point by point.
///
/// # Panics
///
/// Panics if an event addresses an in-flight index or process id that
/// does not exist: the model checker only emits schedules that are valid
/// in the model, so an invalid event means the model and the runtime have
/// drifted apart — exactly what the replay is meant to catch.
pub fn run_chaos_script<D, F>(script: &ChaosScript, factory: F) -> ScriptReport
where
    D: AccrualFailureDetector,
    F: FnMut(ProcessId) -> D + Send + 'static,
{
    let clock = VirtualClock::new();
    let (feed, monitor_side) = ChannelTransport::pair();
    let mut feed = feed;
    let mut monitor = RuntimeMonitor::new(monitor_side, clock.clone(), factory);
    let mut senders: Vec<(ProcessId, SenderCore, CaptureTransport)> = script
        .processes()
        .map(|p| {
            monitor.watch(p);
            (
                p,
                SenderCore::new(
                    SenderConfig::new(p, script.heartbeat_interval),
                    Timestamp::ZERO,
                    0,
                ),
                CaptureTransport::default(),
            )
        })
        .collect();

    let mut in_flight: Vec<Vec<u8>> = Vec::new();
    let mut t = Timestamp::ZERO;
    clock.set(t);

    let emit_due = |t: Timestamp,
                    senders: &mut Vec<(ProcessId, SenderCore, CaptureTransport)>,
                    in_flight: &mut Vec<Vec<u8>>| {
        for (_, core, capture) in senders.iter_mut() {
            // The in-process capture cannot fail; the expect documents it.
            core.poll(t, capture, |_| {})
                // lint:allow(no-panic-paths, CaptureTransport::send is infallible by construction)
                .expect("capture transport is infallible");
            in_flight.append(&mut capture.frames);
        }
    };
    // Heartbeats due at the start (SenderCore emits its first frame at
    // `start` itself) enter the pool before the first event.
    emit_due(t, &mut senders, &mut in_flight);

    let mut trace = Vec::with_capacity(script.events.len());
    for (event_index, &event) in script.events.iter().enumerate() {
        match event {
            ScriptEvent::Tick => {
                t += script.tick;
                clock.set(t);
                emit_due(t, &mut senders, &mut in_flight);
            }
            ScriptEvent::Deliver(i) => {
                let frame = in_flight.remove(i);
                // lint:allow(no-panic-paths, the in-process feed pair cannot error)
                feed.send(&frame).expect("in-process feed is infallible");
                // lint:allow(no-panic-paths, the in-process feed pair cannot error)
                while monitor.poll().expect("in-process poll is infallible") > 0 {}
            }
            ScriptEvent::Drop(i) => {
                in_flight.remove(i);
            }
            ScriptEvent::Duplicate(i) => {
                let copy = in_flight[i].clone();
                in_flight.push(copy);
            }
            ScriptEvent::Crash(p) => {
                let (_, core, _) = senders
                    .iter_mut()
                    .find(|(id, _, _)| *id == p)
                    // lint:allow(no-panic-paths, a malformed script is a harness bug and must abort the run)
                    .expect("script crashes an unknown process");
                core.crash();
            }
            ScriptEvent::Recover(p) => {
                let (_, core, _) = senders
                    .iter_mut()
                    .find(|(id, _, _)| *id == p)
                    // lint:allow(no-panic-paths, a malformed script is a harness bug and must abort the run)
                    .expect("script recovers an unknown process");
                core.recover(t);
            }
        }
        let levels = senders
            .iter()
            .map(|&(p, _, _)| {
                let detector = monitor
                    .detector_mut(p)
                    // lint:allow(no-panic-paths, run_chaos_script watches every sender upfront)
                    .expect("every script process is watched");
                (p, detector.suspicion_level(t))
            })
            .collect();
        trace.push(ScriptSample {
            event_index,
            at: t,
            levels,
        });
    }

    ScriptReport {
        trace,
        monitor_stats: monitor.stats(),
        heartbeats_sent: senders.iter().map(|(_, core, _)| core.sent()).sum(),
        undelivered: in_flight.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_run_keeps_levels_low() {
        let scenario = ChaosScenario::new(Duration::from_secs(30));
        let report = run_chaos(&scenario, 1);
        assert!(report.heartbeats_sent >= 29);
        assert_eq!(report.transport_errors, 0);
        assert_eq!(report.monitor_stats.corrupt, 0);
        for (name, trace) in report.traces() {
            let max = trace.max_level().unwrap();
            assert!(
                max.value() < 5.0,
                "{name}: quiet run should stay calm, peaked at {max}"
            );
        }
    }

    #[test]
    fn crash_makes_every_detector_accrue() {
        let mut scenario = ChaosScenario::new(Duration::from_secs(60));
        scenario.crashes.push((Timestamp::from_secs(30), None));
        let report = run_chaos(&scenario, 2);
        for (name, trace) in report.traces() {
            let last = trace.samples().last().unwrap();
            let at_crash = trace
                .iter()
                .find(|s| s.at >= Timestamp::from_secs(30))
                .unwrap();
            assert!(
                last.level.value() > at_crash.level.value(),
                "{name}: no accrual after crash"
            );
        }
        assert!(
            report.degrade_events > 0,
            "long silence must trigger fallback"
        );
    }

    #[test]
    fn zoo_runs_all_six_detectors_and_all_accrue_after_crash() {
        let mut scenario = ChaosScenario::new(Duration::from_secs(60));
        scenario.crashes.push((Timestamp::from_secs(30), None));
        let report = run_chaos_zoo(&scenario, 7);
        assert_eq!(report.transport_errors, 0);
        let names: Vec<_> = report.detectors.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            ["simple", "chen", "bertier", "phi", "akka", "adaptive"]
        );
        for d in &report.detectors {
            let last = d.trace.samples().last().unwrap();
            let at_crash = d
                .trace
                .iter()
                .find(|s| s.at >= Timestamp::from_secs(30))
                .unwrap();
            assert!(
                last.level.value() > at_crash.level.value(),
                "{}: no accrual after crash",
                d.name
            );
            // Every member crossed its own threshold and the online QoS
            // recorded a finite detection time.
            let td = d.qos.detection_time;
            assert!(
                td.is_some_and(|td| td < 15.0),
                "{}: detection time {td:?}",
                d.name
            );
        }
    }

    #[test]
    fn zoo_same_seed_is_bit_identical() {
        let mut scenario = ChaosScenario::new(Duration::from_secs(30));
        scenario.jitter = Some((Duration::from_millis(5), Duration::from_millis(120)));
        scenario.bernoulli_loss = Some(0.05);
        let a = run_chaos_zoo(&scenario, 11);
        let b = run_chaos_zoo(&scenario, 11);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = run_chaos_zoo(&scenario, 12);
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed must matter");
    }

    #[test]
    fn slow_sender_clock_stretches_heartbeat_pacing() {
        let mut slow = ChaosScenario::new(Duration::from_secs(60));
        slow.clock_drift = 0.8; // sender's seconds are 1.25 true seconds
        let drifted = run_chaos_zoo(&slow, 3);
        let baseline = run_chaos_zoo(&ChaosScenario::new(Duration::from_secs(60)), 3);
        assert!(
            drifted.heartbeats_sent < baseline.heartbeats_sent,
            "slow clock must emit fewer heartbeats: {} vs {}",
            drifted.heartbeats_sent,
            baseline.heartbeats_sent
        );
        // ~60 true seconds × 0.8 sender-seconds each ≈ 48 heartbeats.
        assert!(
            (44..=52).contains(&(drifted.heartbeats_sent as i64)),
            "got {}",
            drifted.heartbeats_sent
        );
    }

    #[test]
    fn script_delivers_heartbeats_and_levels_reset() {
        let mut script = ChaosScript::new(1);
        script.tick = Duration::from_secs(1);
        // One heartbeat is in flight at t=0. Deliver it, advance a tick
        // (emitting the next), deliver that too, then let two ticks pass
        // whose frames stay undelivered so suspicion accrues.
        script.events = vec![
            ScriptEvent::Deliver(0),
            ScriptEvent::Tick,
            ScriptEvent::Deliver(0),
            ScriptEvent::Tick,
            ScriptEvent::Tick,
        ];
        let report = run_chaos_script(&script, |_| SimpleAccrual::new(Timestamp::ZERO));
        assert_eq!(report.heartbeats_sent, 4);
        assert_eq!(report.undelivered, 2);
        assert_eq!(report.monitor_stats.accepted, 2);
        let levels: Vec<f64> = report.trace.iter().map(|s| s.levels[0].1.value()).collect();
        // After each event: deliver@0 → 0, tick → 1 (emits), deliver → 0,
        // two undelivered ticks → 1, 2.
        assert_eq!(levels, vec![0.0, 1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn script_duplicate_is_rejected_by_freshness_filter() {
        let mut script = ChaosScript::new(1);
        script.events = vec![
            ScriptEvent::Duplicate(0),
            ScriptEvent::Deliver(0),
            ScriptEvent::Deliver(0),
        ];
        let report = run_chaos_script(&script, |_| SimpleAccrual::new(Timestamp::ZERO));
        assert_eq!(report.monitor_stats.accepted, 1);
        assert_eq!(report.monitor_stats.duplicate, 1, "Algorithm 4 dedup");
    }

    #[test]
    fn script_crash_silences_and_recover_resumes() {
        let p = ProcessId::new(1);
        let mut script = ChaosScript::new(1);
        script.tick = Duration::from_secs(1);
        script.events = vec![
            ScriptEvent::Deliver(0),
            ScriptEvent::Crash(p),
            ScriptEvent::Tick,
            ScriptEvent::Tick,
            ScriptEvent::Recover(p),
            ScriptEvent::Tick,
            ScriptEvent::Deliver(0),
        ];
        let report = run_chaos_script(&script, |_| SimpleAccrual::new(Timestamp::ZERO));
        // Crashed ticks emit nothing; recovery emits on the next tick.
        assert_eq!(report.heartbeats_sent, 2);
        let last = report.trace.last().unwrap();
        assert_eq!(last.levels[0].1.value(), 0.0);
    }

    #[test]
    fn script_drop_loses_the_frame() {
        let mut script = ChaosScript::new(1);
        script.tick = Duration::from_secs(1);
        script.events = vec![
            ScriptEvent::Drop(0),
            ScriptEvent::Tick,
            ScriptEvent::Deliver(0),
        ];
        let report = run_chaos_script(&script, |_| SimpleAccrual::new(Timestamp::ZERO));
        assert_eq!(report.monitor_stats.accepted, 1);
        assert_eq!(report.undelivered, 0);
    }

    #[test]
    fn script_out_of_order_delivery_is_stale_filtered() {
        let mut script = ChaosScript::new(1);
        script.tick = Duration::from_secs(1);
        // Two frames in flight (t=0 and t=1); deliver the newer first.
        script.events = vec![
            ScriptEvent::Tick,
            ScriptEvent::Deliver(1),
            ScriptEvent::Deliver(0),
        ];
        let report = run_chaos_script(&script, |_| SimpleAccrual::new(Timestamp::ZERO));
        assert_eq!(report.monitor_stats.accepted, 1);
        assert_eq!(report.monitor_stats.stale, 1, "Algorithm 4 freshness");
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let mut scenario = ChaosScenario::new(Duration::from_secs(40));
        scenario.burst_loss = Some((0.05, 4.0));
        scenario.jitter = Some((Duration::from_millis(5), Duration::from_millis(80)));
        scenario.duplicate = 0.1;
        scenario.corrupt = 0.05;
        scenario
            .partitions
            .push((Timestamp::from_secs(10), Timestamp::from_secs(15)));
        let a = run_chaos(&scenario, 42);
        let b = run_chaos(&scenario, 42);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = run_chaos(&scenario, 43);
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed must matter");
    }
}
