//! The sending half of Algorithm 4: periodic heartbeats with retry,
//! crash/recover controls, and a thread wrapper for live use.
//!
//! [`SenderCore`] is the pure stepping logic — given "now", decide whether
//! a heartbeat is due and push it through the transport under a
//! [`RetryPolicy`]. The chaos harness drives a core directly in virtual
//! time; [`spawn_sender`] wraps one in a thread against the real clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use afd_core::process::ProcessId;
use afd_core::time::{Duration, Timestamp};
use afd_sim::rng::SimRng;

use crate::clock::Clock;
use crate::error::RuntimeError;
use crate::retry::RetryPolicy;
use crate::transport::Transport;
use crate::wire::{DeltaEncoder, Heartbeat, FRAME_LEN, MAX_V2_FRAME};

/// Which wire format a sender puts on the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireVersion {
    /// Fixed 28-byte v1 frames ([`Heartbeat::encode`]). Always decodable,
    /// even by pre-v2 monitors.
    V1,
    /// Compact v2 delta frames through a [`DeltaEncoder`]: a
    /// self-describing intern/checkpoint frame every `resync_every`
    /// heartbeats, varint deltas (typically 6–8 bytes) in between. The
    /// sender's intern index is its own process id, so indices are
    /// collision-free across any sender population.
    V2 {
        /// Heartbeats between checkpoint frames (floored at 1).
        resync_every: u32,
    },
}

/// Static configuration of a heartbeat sender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenderConfig {
    /// The identity stamped on every heartbeat.
    pub id: ProcessId,
    /// Target heartbeat cadence (Algorithm 4's Δ_i).
    pub interval: Duration,
    /// Retry policy for transport send failures.
    pub retry: RetryPolicy,
    /// Wire format for outgoing heartbeats.
    pub wire: WireVersion,
}

impl SenderConfig {
    /// A sender for `id` at `interval`, with the default retry policy and
    /// the v1 wire format.
    pub fn new(id: ProcessId, interval: Duration) -> Self {
        SenderConfig {
            id,
            interval,
            retry: RetryPolicy::default(),
            wire: WireVersion::V1,
        }
    }

    /// Switches to the compact v2 delta wire format.
    pub fn with_wire(mut self, wire: WireVersion) -> Self {
        self.wire = wire;
        self
    }
}

/// The deterministic heartbeat-sending state machine.
#[derive(Debug)]
pub struct SenderCore {
    config: SenderConfig,
    seq: u64,
    next_due: Timestamp,
    crashed: bool,
    rng: SimRng,
    retry_attempts: u64,
    backoff_total: Duration,
    /// Present iff `config.wire` is [`WireVersion::V2`].
    encoder: Option<DeltaEncoder>,
    wire_bytes: u64,
}

impl SenderCore {
    /// Creates a sender whose first heartbeat is due at `start`.
    ///
    /// `seed` drives retry-backoff jitter only.
    pub fn new(config: SenderConfig, start: Timestamp, seed: u64) -> Self {
        let encoder = match config.wire {
            WireVersion::V1 => None,
            WireVersion::V2 { resync_every } => Some(DeltaEncoder::new(
                config.id,
                config.id.as_u32(),
                std::time::Duration::from_nanos(config.interval.as_nanos()),
                resync_every,
            )),
        };
        SenderCore {
            config,
            seq: 0,
            next_due: start,
            crashed: false,
            rng: SimRng::derive(seed, u64::from(config.id.as_u32())),
            retry_attempts: 0,
            backoff_total: Duration::ZERO,
            encoder,
            wire_bytes: 0,
        }
    }

    /// Simulates a process crash: no heartbeats until
    /// [`recover`](Self::recover).
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Recovers from a crash; the next heartbeat is due immediately.
    pub fn recover(&mut self, now: Timestamp) {
        self.crashed = false;
        self.next_due = now;
    }

    /// `true` while crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Heartbeats sent so far.
    pub fn sent(&self) -> u64 {
        self.seq
    }

    /// Send attempts beyond the first, summed over all heartbeats — how
    /// hard the retry machinery has had to work.
    pub fn retry_attempts(&self) -> u64 {
        self.retry_attempts
    }

    /// Total time handed to the `sleep` callback as retry backoff.
    pub fn backoff_total(&self) -> Duration {
        self.backoff_total
    }

    /// Bytes of heartbeat frames handed to the transport so far — the
    /// number the v2 delta wire exists to shrink.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Publishes sender counters into `registry` under `sender.*`.
    pub fn export_metrics(&self, registry: &afd_obs::Registry) {
        registry.counter("sender.heartbeats_sent").set(self.seq);
        registry
            .counter("sender.retry_attempts")
            .set(self.retry_attempts);
        registry
            .gauge("sender.backoff_seconds")
            .set(self.backoff_total.as_secs_f64());
        registry.counter("sender.wire_bytes").set(self.wire_bytes);
    }

    /// Sends a heartbeat if one is due at `now`; returns whether one was
    /// sent. Pauses between retries are delegated to `sleep` so callers
    /// choose real or virtual waiting.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RetriesExhausted`] if the transport kept
    /// failing through the whole retry budget. The heartbeat is then
    /// dropped (the next one is still scheduled): heartbeats are
    /// best-effort, and the monitor side accrues suspicion on its own.
    pub fn poll<T: Transport>(
        &mut self,
        now: Timestamp,
        transport: &mut T,
        mut sleep: impl FnMut(Duration),
    ) -> Result<bool, RuntimeError> {
        if self.crashed || now < self.next_due {
            return Ok(false);
        }
        // Schedule the next beat first so a failed send cannot wedge the
        // cadence; skip any intervals already missed.
        while self.next_due <= now {
            self.next_due += self.config.interval;
        }
        self.seq += 1;
        let hb = Heartbeat {
            sender: self.config.id,
            seq: self.seq,
            sent_at: now,
        };
        let mut buf = [0u8; MAX_V2_FRAME];
        let len = match &mut self.encoder {
            Some(enc) => {
                let n = enc.encode(&hb, &mut buf);
                debug_assert!(n > 0, "buffer is MAX_V2_FRAME and sender matches");
                n
            }
            None => {
                buf[..FRAME_LEN].copy_from_slice(&hb.encode());
                FRAME_LEN
            }
        };
        let frame = &buf[..len];
        self.wire_bytes += len as u64;
        let mut attempts = 0u64;
        let mut backoff = Duration::ZERO;
        let result = self.config.retry.run(
            &mut self.rng,
            |pause| {
                backoff += pause;
                sleep(pause);
            },
            || {
                attempts += 1;
                transport.send(frame)
            },
        );
        // Retry effort is recorded even when the budget is exhausted —
        // that is exactly when an operator wants to see it.
        self.retry_attempts += attempts.saturating_sub(1);
        self.backoff_total += backoff;
        result?;
        Ok(true)
    }
}

/// Shared crash/stop switches for a threaded sender.
#[derive(Debug, Default)]
struct SenderCtrl {
    crashed: AtomicBool,
    stopped: AtomicBool,
}

/// A handle to a heartbeat sender running on its own thread.
#[derive(Debug)]
pub struct SenderHandle {
    ctrl: Arc<SenderCtrl>,
    handle: JoinHandle<Result<(), RuntimeError>>,
}

impl SenderHandle {
    /// Simulates a crash of the monitored process.
    pub fn crash(&self) {
        self.ctrl.crashed.store(true, Ordering::SeqCst);
    }

    /// Recovers the monitored process.
    pub fn recover(&self) {
        self.ctrl.crashed.store(false, Ordering::SeqCst);
    }

    /// Stops the thread and returns its final result.
    ///
    /// # Errors
    ///
    /// Propagates the thread's terminal [`RuntimeError`], or reports
    /// [`RuntimeError::ThreadFailed`] if it panicked.
    pub fn stop(self) -> Result<(), RuntimeError> {
        self.ctrl.stopped.store(true, Ordering::SeqCst);
        match self.handle.join() {
            Ok(result) => result,
            Err(_) => Err(RuntimeError::ThreadFailed {
                component: "sender",
            }),
        }
    }
}

/// Spawns a heartbeat sender thread over `transport`.
///
/// The thread beats at `config.interval` until [`SenderHandle::stop`],
/// simulating crashes while [`SenderHandle::crash`] is in effect. A send
/// that exhausts its retry budget terminates the thread with the typed
/// error (surfaced by `stop`).
pub fn spawn_sender<T, C>(
    mut transport: T,
    clock: C,
    config: SenderConfig,
    seed: u64,
) -> SenderHandle
where
    T: Transport + 'static,
    C: Clock + 'static,
{
    let ctrl = Arc::new(SenderCtrl::default());
    let thread_ctrl = Arc::clone(&ctrl);
    let handle = std::thread::spawn(move || {
        let mut core = SenderCore::new(config, clock.now(), seed);
        // Poll a few times per interval; sleeping the whole interval would
        // make crash/recover and stop reaction times sloppy.
        let nap = std::time::Duration::from_nanos((config.interval.as_nanos() / 8).max(100_000));
        loop {
            if thread_ctrl.stopped.load(Ordering::SeqCst) {
                return Ok(());
            }
            let crashed = thread_ctrl.crashed.load(Ordering::SeqCst);
            if crashed && !core.is_crashed() {
                core.crash();
            } else if !crashed && core.is_crashed() {
                core.recover(clock.now());
            }
            core.poll(clock.now(), &mut transport, |d| {
                // lint:allow(no-thread-sleep, this IS the real-time wrapper; virtual-time callers drive SenderCore directly)
                std::thread::sleep(std::time::Duration::from_nanos(d.as_nanos()));
            })?;
            // lint:allow(no-thread-sleep, real-time pacing nap of the thread wrapper; the chaos harness never runs this loop)
            std::thread::sleep(nap);
        }
    });
    SenderHandle { ctrl, handle }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SystemClock, VirtualClock};
    use crate::error::TransportError;
    use crate::transport::ChannelTransport;
    use crate::wire::Heartbeat;

    fn config() -> SenderConfig {
        SenderConfig::new(ProcessId::new(1), Duration::from_secs(1))
    }

    #[test]
    fn beats_on_schedule_in_virtual_time() {
        let (mut side_a, mut side_b) = ChannelTransport::pair();
        let mut core = SenderCore::new(config(), Timestamp::ZERO, 1);
        for s in 0..10u64 {
            let sent = core
                .poll(Timestamp::from_secs(s), &mut side_a, |_| {})
                .unwrap();
            assert!(sent, "beat due at t={s}");
        }
        assert_eq!(core.sent(), 10);
        let mut seqs = Vec::new();
        while let Ok(Some(f)) = side_b.try_recv() {
            seqs.push(Heartbeat::decode(&f).unwrap().seq);
        }
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn nothing_sent_while_crashed_then_resumes() {
        let (mut side_a, mut side_b) = ChannelTransport::pair();
        let mut core = SenderCore::new(config(), Timestamp::ZERO, 1);
        core.poll(Timestamp::ZERO, &mut side_a, |_| {}).unwrap();
        core.crash();
        for s in 1..5u64 {
            let sent = core
                .poll(Timestamp::from_secs(s), &mut side_a, |_| {})
                .unwrap();
            assert!(!sent, "crashed sender must stay silent");
        }
        core.recover(Timestamp::from_secs(5));
        assert!(core
            .poll(Timestamp::from_secs(5), &mut side_a, |_| {})
            .unwrap());
        let mut count = 0;
        while let Ok(Some(_)) = side_b.try_recv() {
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn missed_intervals_do_not_burst() {
        let (mut side_a, mut side_b) = ChannelTransport::pair();
        let mut core = SenderCore::new(config(), Timestamp::ZERO, 1);
        // Wake up very late: exactly one beat goes out, not a backlog.
        assert!(core
            .poll(Timestamp::from_secs(100), &mut side_a, |_| {})
            .unwrap());
        assert!(!core
            .poll(Timestamp::from_secs(100), &mut side_a, |_| {})
            .unwrap());
        let mut count = 0;
        while let Ok(Some(_)) = side_b.try_recv() {
            count += 1;
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn dead_transport_exhausts_retries_into_typed_error() {
        let (side_a, side_b) = ChannelTransport::pair();
        drop(side_b);
        let mut side_a = side_a;
        let mut core = SenderCore::new(config(), Timestamp::ZERO, 1);
        let mut pauses = 0;
        let err = core
            .poll(Timestamp::ZERO, &mut side_a, |_| pauses += 1)
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::RetriesExhausted {
                attempts: 5,
                last: TransportError::Disconnected,
            }
        );
        assert_eq!(pauses, 4, "one backoff pause between each attempt");
        // The wasted effort is visible to observability even though the
        // heartbeat was ultimately dropped.
        assert_eq!(core.retry_attempts(), 4);
        assert!(!core.backoff_total().is_zero());
        let registry = afd_obs::Registry::new();
        core.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sender.retry_attempts"), Some(4));
        assert!(snap.gauge("sender.backoff_seconds").unwrap() > 0.0);
    }

    #[test]
    fn clean_sends_record_no_retry_effort() {
        let (mut side_a, _side_b) = ChannelTransport::pair();
        let mut core = SenderCore::new(config(), Timestamp::ZERO, 1);
        for s in 0..5u64 {
            core.poll(Timestamp::from_secs(s), &mut side_a, |_| {})
                .unwrap();
        }
        assert_eq!(core.retry_attempts(), 0);
        assert_eq!(core.backoff_total(), Duration::ZERO);
    }

    #[test]
    fn v2_sender_interops_with_wire_decoder_and_uses_fewer_bytes() {
        let (mut side_a, mut side_b) = ChannelTransport::pair();
        let cfg = config().with_wire(WireVersion::V2 { resync_every: 8 });
        let mut v2 = SenderCore::new(cfg, Timestamp::ZERO, 1);
        let (mut v1_a, _v1_b) = ChannelTransport::pair();
        let mut v1 = SenderCore::new(config(), Timestamp::ZERO, 1);
        for s in 0..32u64 {
            assert!(v2
                .poll(Timestamp::from_secs(s), &mut side_a, |_| {})
                .unwrap());
            v1.poll(Timestamp::from_secs(s), &mut v1_a, |_| {}).unwrap();
        }
        assert!(
            v2.wire_bytes() * 2 < v1.wire_bytes(),
            "v2 wire ({}) should be far smaller than v1 ({})",
            v2.wire_bytes(),
            v1.wire_bytes()
        );
        // Every v2 frame — checkpoints and deltas — reconstructs the exact
        // heartbeat stream through the receiver-side decoder.
        let mut dec = crate::wire::WireDecoder::new();
        let mut seqs = Vec::new();
        while let Ok(Some(f)) = side_b.try_recv() {
            let hb = dec.decode(&f).unwrap();
            assert_eq!(hb.sender, ProcessId::new(1));
            assert_eq!(hb.sent_at, Timestamp::from_secs(hb.seq - 1));
            seqs.push(hb.seq);
        }
        assert_eq!(seqs, (1..=32).collect::<Vec<u64>>());
    }

    #[test]
    fn threaded_sender_beats_and_stops_cleanly() {
        let (side_a, mut side_b) = ChannelTransport::pair();
        let cfg = SenderConfig::new(ProcessId::new(3), Duration::from_millis(10));
        let handle = spawn_sender(side_a, SystemClock::new(), cfg, 7);
        std::thread::sleep(std::time::Duration::from_millis(80));
        handle.stop().expect("clean shutdown");
        let mut count = 0;
        while let Ok(Some(f)) = side_b.try_recv() {
            let hb = Heartbeat::decode(&f).unwrap();
            assert_eq!(hb.sender, ProcessId::new(3));
            count += 1;
        }
        assert!(count >= 3, "expected several beats in 80 ms, got {count}");
    }

    #[test]
    fn threaded_crash_recover_cycle() {
        let (side_a, mut side_b) = ChannelTransport::pair();
        let cfg = SenderConfig::new(ProcessId::new(4), Duration::from_millis(5));
        let handle = spawn_sender(side_a, SystemClock::new(), cfg, 8);
        std::thread::sleep(std::time::Duration::from_millis(30));
        handle.crash();
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Drain what was sent before/at the crash.
        let mut before = 0;
        while let Ok(Some(_)) = side_b.try_recv() {
            before += 1;
        }
        std::thread::sleep(std::time::Duration::from_millis(40));
        let mut during = 0;
        while let Ok(Some(_)) = side_b.try_recv() {
            during += 1;
        }
        assert_eq!(during, 0, "no beats while crashed");
        handle.recover();
        std::thread::sleep(std::time::Duration::from_millis(40));
        handle.stop().expect("clean shutdown");
        let mut after = 0;
        while let Ok(Some(_)) = side_b.try_recv() {
            after += 1;
        }
        assert!(before >= 1);
        assert!(after >= 1, "beats must resume after recovery");
    }

    #[test]
    fn virtual_clock_works_with_threaded_sender_api() {
        // Not a timing test — just proves the clock abstraction composes.
        let (side_a, _side_b) = ChannelTransport::pair();
        let clock = VirtualClock::new();
        let cfg = SenderConfig::new(ProcessId::new(5), Duration::from_millis(50));
        let handle = spawn_sender(side_a, clock.clone(), cfg, 9);
        clock.advance(Duration::from_millis(200));
        std::thread::sleep(std::time::Duration::from_millis(20));
        handle.stop().expect("clean shutdown");
    }
}
