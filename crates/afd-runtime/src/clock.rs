//! Clock abstraction for the runtime.
//!
//! Detectors take explicit timestamps, so the only place real time enters
//! the system is here. [`SystemClock`] reads a monotonic OS clock for live
//! deployments; [`VirtualClock`] is a shared, manually advanced clock that
//! makes the chaos harness — faults, retries, degradation and all — a pure
//! function of `(scenario, seed)`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use afd_core::time::{Duration, Timestamp};

/// A source of the runtime's current time.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Timestamp;
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now(&self) -> Timestamp {
        (**self).now()
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now(&self) -> Timestamp {
        (**self).now()
    }
}

impl Clock for Box<dyn Clock + Send + Sync> {
    fn now(&self) -> Timestamp {
        (**self).now()
    }
}

/// Monotonic wall-clock time, measured from the clock's creation.
#[derive(Debug, Clone, Copy)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }
}

/// A manually advanced clock, shared between clones.
///
/// Every clone observes the same time, so one harness loop can drive a
/// sender, a fault injector, and a monitor in lock-step.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos(), Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` is earlier than the current time
    /// (virtual time, like the monotonic clock it stands in for, never
    /// goes backwards).
    pub fn set(&self, t: Timestamp) {
        debug_assert!(
            t.as_nanos() >= self.nanos.load(Ordering::SeqCst),
            "virtual clock must not rewind"
        );
        self.nanos.store(t.as_nanos(), Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_shared_between_clones() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(3));
        assert_eq!(b.now(), Timestamp::from_secs(3));
        b.set(Timestamp::from_secs(10));
        assert_eq!(a.now(), Timestamp::from_secs(10));
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_through_arc() {
        let c: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        assert_eq!(c.now(), Timestamp::ZERO);
    }

    #[test]
    fn clock_through_box() {
        let v = VirtualClock::new();
        v.set(Timestamp::from_secs(2));
        let c: Box<dyn Clock + Send + Sync> = Box::new(v);
        assert_eq!(c.now(), Timestamp::from_secs(2));
    }
}
