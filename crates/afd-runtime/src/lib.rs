//! Live runtime for accrual failure detectors: Algorithm 4 over real
//! transports, with fault injection and robustness machinery.
//!
//! Where `afd-sim` replays scripted heartbeat histories offline, this crate
//! runs the monitor/monitored protocol of Défago et al. §5.1 *live*:
//! threaded heartbeat senders push framed, checksummed heartbeats through a
//! pluggable [`Transport`](transport::Transport) (in-process channels or
//! UDP loopback), and a [`RuntimeMonitor`](monitor::RuntimeMonitor) drains
//! them into the existing `MonitoringService` machinery.
//!
//! Robustness is the point, not an afterthought:
//!
//! - transport hiccups get bounded retry with exponential backoff and
//!   jitter ([`retry`]), surfacing typed errors once the budget is spent;
//! - a [`Watchdog`](supervisor::Watchdog) restarts wedged or dead monitor
//!   threads ([`supervisor`]);
//! - adaptive detectors behind
//!   [`GracefulDegradation`](degrade::GracefulDegradation) fall back to
//!   simple elapsed-time accrual when faults starve their sampling window,
//!   without ever violating Accruement (Property 1);
//! - the [`FaultInjector`](fault::FaultInjector) transport wrapper replays
//!   seeded drop/duplicate/reorder/delay/corrupt/partition schedules so
//!   every failure mode is exercised reproducibly, and the [`chaos`]
//!   harness turns whole scenarios into deterministic virtual-time runs.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod chaos;
pub mod clock;
pub mod degrade;
pub mod engine;
pub mod error;
pub mod fault;
pub mod intern;
pub mod lane;
pub mod monitor;
pub mod persist;
pub mod retry;
pub mod ring;
pub mod sender;
pub mod seq;
pub mod shard;
pub mod supervisor;
pub mod transport;
pub mod varint;
pub mod wire;

pub use chaos::{
    drive_lock_step, run_chaos, run_chaos_script, run_chaos_zoo, ChaosReport, ChaosScenario,
    ChaosScript, DetectorTrio, DetectorZoo, ScriptEvent, ScriptReport, ScriptSample,
    ZooDetectorReport, ZooMember, ZooReport,
};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use degrade::{DegradeConfig, GracefulDegradation};
pub use engine::{EngineConfig, EngineMode, EngineStats, EngineTickReport, ParallelShardEngine};
pub use error::{EngineError, RuntimeError, TransportError};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use intern::{InternEntry, InternSlab};
pub use lane::{MultiUdpStats, MultiUdpTransport, UdpLane, UdpLaneStats, DEFAULT_RECV_BUDGET};
pub use monitor::{MonitorStats, RuntimeMonitor};
pub use persist::{
    CheckpointConfig, CheckpointDaemon, CheckpointReport, Checkpointer, DirSink, FaultySink,
    FaultySinkPlan, FaultySinkStats, MemSink, PersistError, RestoreImport, Restored, RestoredPeer,
    SegmentSink,
};
pub use retry::RetryPolicy;
pub use ring::{heartbeat_ring, RingConsumer, RingProducer, RingWatch};
pub use sender::{spawn_sender, SenderConfig, SenderCore, SenderHandle, WireVersion};
pub use seq::{classify, SeqVerdict};
pub use shard::{
    ShardCapacityError, ShardConfig, ShardedMonitor, ShardedStats, SnapshotReader, TickReport,
};
pub use supervisor::{HealthBoard, SupervisedThread, Supervisor, Watchdog};
pub use transport::{
    ChannelTransport, FrameBatch, NullTransport, Transport, UdpTransport, MAX_DATAGRAM, PROBE_LEN,
};
pub use wire::{
    DeltaEncoder, Heartbeat, WireDecoder, WireError, DELTA_MAGIC, FRAME_LEN, INTERN_LEN,
    MAX_V2_FRAME,
};
