//! A registry of named counters, gauges, and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones whose update paths are single atomic operations — safe to call
//! from hot loops (a monitor poll, a sender retry) without locking. The
//! registry itself is only locked at registration and snapshot time.
//!
//! A [`Snapshot`] is a point-in-time copy of every metric, serializable to
//! a human-readable text table ([`Snapshot::to_text`]) and to JSON
//! ([`Snapshot::to_json`]) for scraping.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        // lint:allow(relaxed-atomics-audit, monotone counter; readers need eventual totals, no inter-metric ordering)
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // lint:allow(relaxed-atomics-audit, monotone counter; readers need eventual totals, no inter-metric ordering)
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (for counters mirrored from an external total,
    /// e.g. `MonitorStats::accepted`).
    #[inline]
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }
}

/// An instantaneous value (stored as `f64` bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, ascending; an implicit final
    /// bucket catches everything above the last bound.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of observed values, as `f64` bits (CAS loop).
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram: `bounds.len() + 1` buckets, the last one
/// unbounded.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        // lint:allow(relaxed-atomics-audit, per-bucket tallies are independent monotone counts; snapshots tolerate torn cross-bucket views)
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // lint:allow(relaxed-atomics-audit, count mirrors bucket totals; snapshot consistency is best-effort by design)
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut prev = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(prev) + value).to_bits();
            // lint:allow(relaxed-atomics-audit, CAS retry loop over one cell; success needs no ordering with other memory)
            match core.sum_bits.compare_exchange_weak(
                prev,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => prev = actual,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of all observed values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    fn snapshot(&self) -> SnapshotValue {
        let core = &self.0;
        SnapshotValue::Histogram {
            bounds: core.bounds.clone(),
            counts: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics; clones share the same underlying map.
///
/// # Examples
///
/// ```
/// use afd_obs::Registry;
///
/// let registry = Registry::new();
/// let polls = registry.counter("monitor.polls");
/// polls.inc();
/// polls.add(2);
/// registry.gauge("monitor.watched").set(3.0);
/// let snap = registry.snapshot();
/// assert_eq!(snap.counter("monitor.polls"), Some(3));
/// assert!(snap.to_text().contains("monitor.watched"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        match self.metrics.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            // lint:allow(no-panic-paths, documented Panics contract; kind misregistration is a startup programming error)
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            // lint:allow(no-panic-paths, documented Panics contract; kind misregistration is a startup programming error)
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The histogram named `name`, registering it with `bounds` on first
    /// use (later calls ignore `bounds` and return the existing one).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different kind, or if `bounds`
    /// are not finite and strictly ascending.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds.to_vec())))
        {
            Metric::Histogram(h) => h.clone(),
            // lint:allow(no-panic-paths, documented Panics contract; kind misregistration is a startup programming error)
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        Snapshot {
            entries: map
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Metric::Histogram(h) => h.snapshot(),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(f64),
    /// A histogram's buckets and summary.
    Histogram {
        /// Upper bounds of the finite buckets, ascending.
        bounds: Vec<f64>,
        /// Per-bucket counts; one more entry than `bounds` (the overflow
        /// bucket).
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: f64,
    },
}

/// A point-in-time copy of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    entries: Vec<(String, SnapshotValue)>,
}

impl Snapshot {
    /// The captured metrics, sorted by name.
    pub fn entries(&self) -> &[(String, SnapshotValue)] {
        &self.entries
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The value of counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SnapshotValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            SnapshotValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders the snapshot as an aligned, human-readable table.
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "{name:<width$}  counter    {v}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{name:<width$}  gauge      {v}");
                }
                SnapshotValue::Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                } => {
                    let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                    let _ = writeln!(
                        out,
                        "{name:<width$}  histogram  count={count} mean={mean:.4}"
                    );
                    for (i, c) in counts.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        let label = match bounds.get(i) {
                            Some(b) => format!("≤{b}"),
                            None => format!(">{}", bounds.last().copied().unwrap_or(0.0)),
                        };
                        let _ = writeln!(out, "{:<width$}    {label:<12} {c}", "");
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object keyed by metric name.
    ///
    /// Non-finite gauge values (which valid JSON cannot carry) are emitted
    /// as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_string(name));
            match value {
                SnapshotValue::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", json_number(*v));
                }
                SnapshotValue::Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{count},\"sum\":{},\"bounds\":[",
                        json_number(*sum)
                    );
                    for (j, b) in bounds.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", json_number(*b));
                    }
                    out.push_str("],\"buckets\":[");
                    for (j, c) in counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` prints a roundtrippable float (always with a decimal
        // point or exponent), which is valid JSON.
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        let g = r.gauge("level");
        g.set(1.5);
        g.set(-2.5);
        assert_eq!(r.snapshot().gauge("level"), Some(-2.5));
    }

    #[test]
    fn histogram_buckets_and_summary() {
        let r = Registry::new();
        let h = r.histogram("phi", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.0).abs() < 1e-9);
        assert_eq!(h.mean(), Some(106.0 / 5.0));
        match r.snapshot().get("phi").unwrap() {
            SnapshotValue::Histogram { counts, .. } => {
                assert_eq!(counts, &[2, 1, 1, 1]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m");
        r.gauge("m");
    }

    #[test]
    fn registry_clones_share_metrics() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("shared").inc();
        assert_eq!(r2.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn text_table_lists_every_metric() {
        let r = Registry::new();
        r.counter("monitor.accepted").add(7);
        r.gauge("watched").set(2.0);
        r.histogram("sl", &[1.0]).observe(0.5);
        let text = r.snapshot().to_text();
        for needle in ["monitor.accepted", "watched", "sl", "counter", "gauge"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.gauge("g").set(1.25);
        r.gauge("inf").set(f64::INFINITY);
        r.histogram("h", &[0.5, 1.0]).observe(0.75);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\":{\"type\":\"counter\",\"value\":3}"));
        assert!(json.contains("\"g\":{\"type\":\"gauge\",\"value\":1.25}"));
        assert!(json.contains("\"inf\":{\"type\":\"gauge\",\"value\":null}"));
        assert!(json.contains("\"buckets\":[0,1,0]"));
        // Balanced braces/brackets (cheap well-formedness check).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn snapshot_lookup_misses_cleanly() {
        let snap = Registry::new().snapshot();
        assert_eq!(snap.get("nope"), None);
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("nope"), None);
        assert!(snap.to_text().is_empty());
        assert_eq!(snap.to_json(), "{}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
