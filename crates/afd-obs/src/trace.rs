//! Structured event trace: a bounded ring buffer of timestamped
//! observability events.
//!
//! The running system records *what happened and when* — S-/T-transitions
//! of an interpreted detector output, graceful-degradation switches,
//! watchdog restarts — in an [`EventRing`]. Consumers (the chaos harness,
//! the `live_chaos` example, a log shipper) periodically [`drain`] it.
//! The ring is bounded: under backpressure the *oldest* events are
//! discarded and counted, never silently lost.
//!
//! [`drain`]: EventRing::drain

use std::collections::VecDeque;
use std::fmt;

use afd_core::process::ProcessId;
use afd_core::time::Timestamp;

/// What kind of thing happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An S-transition: the interpreted output switched to *suspect*.
    Suspect,
    /// A T-transition: the interpreted output switched back to *trust*.
    Trust,
    /// A graceful-degradation wrapper switched to its fallback detector.
    DegradeEnter,
    /// A graceful-degradation wrapper switched back to its primary.
    DegradeExit,
    /// A watchdog/supervisor restarted a stalled component.
    Restart,
}

impl EventKind {
    /// A short stable label (used in the `Display` form and logs).
    pub const fn label(self) -> &'static str {
        match self {
            EventKind::Suspect => "suspect",
            EventKind::Trust => "trust",
            EventKind::DegradeEnter => "degrade-enter",
            EventKind::DegradeExit => "degrade-exit",
            EventKind::Restart => "restart",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One timestamped observability event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// When the event was observed.
    pub at: Timestamp,
    /// The component that emitted it (e.g. a detector name like `"phi"`,
    /// or `"watchdog"`).
    pub source: &'static str,
    /// The process the event concerns.
    pub process: ProcessId,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>10.3}s {} {} {}",
            self.at.as_secs_f64(),
            self.source,
            self.process,
            self.kind
        )
    }
}

/// A bounded ring buffer of [`ObsEvent`]s.
///
/// # Examples
///
/// ```
/// use afd_core::process::ProcessId;
/// use afd_core::time::Timestamp;
/// use afd_obs::{EventKind, EventRing, ObsEvent};
///
/// let mut ring = EventRing::new(2);
/// for i in 0..3 {
///     ring.push(ObsEvent {
///         at: Timestamp::from_secs_f64(i as f64),
///         source: "phi",
///         process: ProcessId::new(1),
///         kind: if i % 2 == 0 { EventKind::Suspect } else { EventKind::Trust },
///     });
/// }
/// assert_eq!(ring.dropped(), 1); // oldest event evicted
/// let drained = ring.drain();
/// assert_eq!(drained.len(), 2);
/// assert!(ring.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<ObsEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting (and counting) the oldest if full.
    pub fn push(&mut self, event: ObsEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<ObsEvent> {
        self.buf.drain(..).collect()
    }

    /// The buffered events, oldest first, without removing them.
    pub fn iter(&self) -> impl Iterator<Item = &ObsEvent> {
        self.buf.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events have been evicted to make room since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sec: u64, kind: EventKind) -> ObsEvent {
        ObsEvent {
            at: Timestamp::from_nanos(sec * 1_000_000_000),
            source: "phi",
            process: ProcessId::new(1),
            kind,
        }
    }

    #[test]
    fn push_and_drain_preserve_order() {
        let mut ring = EventRing::new(8);
        ring.push(ev(1, EventKind::Suspect));
        ring.push(ev(2, EventKind::Trust));
        assert_eq!(ring.len(), 2);
        let drained = ring.drain();
        assert_eq!(drained[0].kind, EventKind::Suspect);
        assert_eq!(drained[1].kind, EventKind::Trust);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut ring = EventRing::new(2);
        for sec in 1..=5 {
            ring.push(ev(sec, EventKind::Suspect));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let times: Vec<u64> = ring.iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, vec![4_000_000_000, 5_000_000_000]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = EventRing::new(0);
    }

    #[test]
    fn display_is_human_readable() {
        let text = ev(3, EventKind::DegradeEnter).to_string();
        assert!(text.contains("3.000s"), "{text}");
        assert!(text.contains("phi"), "{text}");
        assert!(text.contains("p1"), "{text}");
        assert!(text.contains("degrade-enter"), "{text}");
    }
}
