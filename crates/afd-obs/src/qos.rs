//! Streaming estimators for the Chen et al. QoS metrics (§2 of the paper).
//!
//! All metrics are defined for a pair *(q monitors p)* over a binary
//! failure-detector history:
//!
//! - **T_D (detection time)** — from p's crash until q suspects p
//!   *permanently* (the final S-transition). Defined on crash runs.
//! - **T_MR (mistake recurrence time)** — time between consecutive
//!   S-transitions while p is correct.
//! - **T_M (mistake duration)** — from an S-transition to the next
//!   T-transition.
//! - **λ_M (average mistake rate)** — S-transitions per time unit.
//! - **P_A (query accuracy probability)** — probability the output is
//!   correct (trusted, for a correct p) at a random time.
//! - **T_G (good period duration)** — from a T-transition to the next
//!   S-transition.
//!
//! [`OnlineQos`] computes all of them *incrementally*: feed it each
//! queried output as it happens and call [`report`] at any point for the
//! current estimates. The offline `afd-qos::analyze` replays recorded
//! traces through this same estimator, so online and offline numbers agree
//! by construction.
//!
//! Because S-/T-transitions alternate strictly (a [`TransitionDetector`]
//! only reports changes), every pairing the metrics need — S with the next
//! T, T with the next S, consecutive S's — involves at most the previous
//! transition, which is why constant state suffices.
//!
//! [`report`]: OnlineQos::report

use afd_core::binary::{Status, Transition, TransitionDetector};
use afd_core::time::Timestamp;

/// The QoS metrics of one run, in seconds where dimensional.
///
/// Metrics that require an event that never happened are `None` — e.g.
/// `mistake_recurrence` needs at least two mistakes, `detection_time`
/// needs a crash that was permanently detected within the trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QosReport {
    /// T_D: crash → permanent suspicion, seconds.
    pub detection_time: Option<f64>,
    /// Number of wrong S-transitions (mistakes) while the process was alive.
    pub mistakes: u64,
    /// T_MR: mean seconds between consecutive mistakes.
    pub mistake_recurrence: Option<f64>,
    /// T_M: mean seconds a mistake lasted.
    pub mistake_duration: Option<f64>,
    /// λ_M: mistakes per second of alive time.
    pub mistake_rate: f64,
    /// P_A: fraction of queries (≈ time, on an even schedule) with correct
    /// output while the process was alive.
    pub query_accuracy: f64,
    /// T_G: mean seconds of a good period (T-transition → next
    /// S-transition).
    pub good_period: Option<f64>,
    /// Length of the alive (accuracy) observation window, seconds.
    pub observed_alive: f64,
}

/// A streaming QoS estimator over a live trusted/suspected query stream.
///
/// Accuracy metrics (mistakes, T_MR, T_M, λ_M, P_A, T_G) are computed over
/// the *alive window*: queries strictly before the crash time. The alive
/// window's length runs from the first query to the crash (or to the last
/// query, whichever is earlier) — not merely to the last query that
/// happened to land inside it, so λ_M and P_A are not biased by the query
/// period. Detection time is computed over the whole stream.
///
/// # Examples
///
/// ```
/// use afd_core::binary::Status;
/// use afd_core::time::Timestamp;
/// use afd_obs::OnlineQos;
///
/// let mut qos = OnlineQos::new(Some(Timestamp::from_secs(60)));
/// for s in 1..=100u64 {
///     let status = if s >= 63 { Status::Suspected } else { Status::Trusted };
///     qos.observe(Timestamp::from_secs(s), status);
/// }
/// let report = qos.report();
/// assert_eq!(report.detection_time, Some(3.0));
/// assert_eq!(report.mistakes, 0);
/// assert_eq!(report.query_accuracy, 1.0);
/// assert!((report.observed_alive - 59.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineQos {
    crash: Option<Timestamp>,
    first: Option<Timestamp>,
    last: Option<Timestamp>,
    // Alive-window accounting (accuracy metrics).
    alive_detector: TransitionDetector,
    alive_queries: u64,
    correct_queries: u64,
    mistakes: u64,
    last_suspect: Option<Timestamp>,
    last_trust: Option<Timestamp>,
    recurrence_sum: f64,
    duration_sum: f64,
    durations: u64,
    good_sum: f64,
    good_periods: u64,
    // Whole-stream accounting (detection time).
    full_detector: TransitionDetector,
    last_transition: Option<(Timestamp, Transition)>,
}

impl OnlineQos {
    /// Creates an estimator for a process that crashes at `crash` (or
    /// never, if `None`).
    ///
    /// The crash time must be known before any query at or after it is
    /// observed — accuracy metrics are split at the crash instant as
    /// samples stream in. Use [`set_crash`](OnlineQos::set_crash) if it
    /// only becomes known mid-stream.
    pub fn new(crash: Option<Timestamp>) -> Self {
        OnlineQos {
            crash,
            first: None,
            last: None,
            alive_detector: TransitionDetector::new(),
            alive_queries: 0,
            correct_queries: 0,
            mistakes: 0,
            last_suspect: None,
            last_trust: None,
            recurrence_sum: 0.0,
            duration_sum: 0.0,
            durations: 0,
            good_sum: 0.0,
            good_periods: 0,
            full_detector: TransitionDetector::new(),
            last_transition: None,
        }
    }

    /// Records the crash time for a stream started with `crash = None`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a query at or after `at` has already
    /// been observed: that query was judged under the wrong alive window.
    pub fn set_crash(&mut self, at: Timestamp) {
        debug_assert!(
            self.last.is_none_or(|l| l < at),
            "crash at {at} set after observing a query at or past it"
        );
        self.crash = Some(at);
    }

    /// The crash time, if any.
    pub fn crash(&self) -> Option<Timestamp> {
        self.crash
    }

    /// Number of queries observed so far.
    pub fn queries(&self) -> u64 {
        self.alive_queries
    }

    /// Feeds one queried detector output.
    ///
    /// Queries must arrive in non-decreasing time order (debug-asserted),
    /// matching `BinaryTrace::push`.
    pub fn observe(&mut self, at: Timestamp, status: Status) {
        debug_assert!(
            self.last.is_none_or(|l| l <= at),
            "queries must be observed in non-decreasing time order"
        );
        self.first.get_or_insert(at);
        self.last = Some(at);

        // Whole-stream transitions, for detection time.
        if let Some(tr) = self.full_detector.observe(status) {
            self.last_transition = Some((at, tr));
        }

        // Accuracy metrics only consider the alive window.
        if self.crash.is_some_and(|c| at >= c) {
            return;
        }
        self.alive_queries += 1;
        if status.is_trusted() {
            self.correct_queries += 1;
        }
        match self.alive_detector.observe(status) {
            Some(Transition::Suspect) => {
                self.mistakes += 1;
                if let Some(prev) = self.last_suspect {
                    self.recurrence_sum += (at - prev).as_secs_f64();
                }
                if let Some(t_at) = self.last_trust {
                    self.good_sum += (at - t_at).as_secs_f64();
                    self.good_periods += 1;
                }
                self.last_suspect = Some(at);
            }
            Some(Transition::Trust) => {
                // A T-transition is always preceded by an S-transition; if
                // that state-machine invariant ever breaks, drop the sample
                // rather than abort a live metrics pipeline.
                let Some(s_at) = self.last_suspect else {
                    debug_assert!(false, "T-transition without preceding S-transition");
                    return;
                };
                self.duration_sum += (at - s_at).as_secs_f64();
                self.durations += 1;
                self.last_trust = Some(at);
            }
            None => {}
        }
    }

    /// The current QoS estimates. Non-consuming: keep observing afterwards.
    ///
    /// Returns a default (all-`None`/zero) report before any query.
    pub fn report(&self) -> QosReport {
        let (Some(start), Some(end)) = (self.first, self.last) else {
            return QosReport::default();
        };

        // The alive window runs to the crash (clamped to the stream end),
        // not to the last sample that landed inside it.
        let alive_end = self.crash.map_or(end, |c| c.min(end));
        let observed_alive = alive_end.saturating_duration_since(start).as_secs_f64();

        let mistake_rate = if observed_alive > 0.0 {
            self.mistakes as f64 / observed_alive
        } else {
            0.0
        };
        let mistake_recurrence =
            (self.mistakes >= 2).then(|| self.recurrence_sum / (self.mistakes - 1) as f64);
        let mistake_duration =
            (self.durations > 0).then(|| self.duration_sum / self.durations as f64);
        let good_period = (self.good_periods > 0).then(|| self.good_sum / self.good_periods as f64);
        let query_accuracy = if self.alive_queries == 0 {
            1.0
        } else {
            self.correct_queries as f64 / self.alive_queries as f64
        };

        let detection_time = self.crash.and_then(|c| {
            if c > end {
                return None; // crash outside the observed stream
            }
            // Detection requires the stream to END suspected; the final
            // S-transition is when permanent suspicion began. Suspicion
            // that predates the crash means detection was instantaneous.
            match self.last_transition {
                Some((at, Transition::Suspect)) => {
                    Some(at.saturating_duration_since(c).as_secs_f64())
                }
                _ => None,
            }
        });

        QosReport {
            detection_time,
            mistakes: self.mistakes,
            mistake_recurrence,
            mistake_duration,
            mistake_rate,
            query_accuracy,
            good_period,
            observed_alive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(horizon: u64, suspected: &[u64], crash: Option<f64>) -> QosReport {
        let mut qos = OnlineQos::new(crash.map(Timestamp::from_secs_f64));
        for s in 1..=horizon {
            let status = if suspected.contains(&s) {
                Status::Suspected
            } else {
                Status::Trusted
            };
            qos.observe(Timestamp::from_secs(s), status);
        }
        qos.report()
    }

    #[test]
    fn no_queries_give_default() {
        assert_eq!(OnlineQos::new(None).report(), QosReport::default());
    }

    #[test]
    fn perfect_run_has_full_accuracy() {
        let r = run(100, &[], None);
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.query_accuracy, 1.0);
        assert_eq!(r.mistake_rate, 0.0);
        assert!((r.observed_alive - 99.0).abs() < 1e-9);
    }

    #[test]
    fn single_mistake_metrics() {
        let r = run(100, &[10, 11, 12], None);
        assert_eq!(r.mistakes, 1);
        assert_eq!(r.mistake_recurrence, None);
        assert_eq!(r.mistake_duration, Some(3.0));
        assert!((r.query_accuracy - 0.97).abs() < 1e-9);
        assert!((r.mistake_rate - 1.0 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn recurrence_and_good_periods() {
        let r = run(100, &[10, 50], None);
        assert_eq!(r.mistakes, 2);
        assert_eq!(r.mistake_recurrence, Some(40.0));
        assert_eq!(r.mistake_duration, Some(1.0));
        assert_eq!(r.good_period, Some(39.0));
    }

    #[test]
    fn alive_window_extends_to_the_crash_instant() {
        // Crash mid-period at t = 60.5: the alive window is 59.5 s long
        // even though the last alive query was at t = 60.
        let suspected: Vec<u64> = (63..=100).collect();
        let r = run(100, &suspected, Some(60.5));
        assert!((r.observed_alive - 59.5).abs() < 1e-9);
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.detection_time, Some(2.5));
    }

    #[test]
    fn crash_beyond_stream_keeps_every_query_in_the_alive_window() {
        // Crash after the horizon: all 100 queries count for accuracy,
        // including the final one.
        let r = run(100, &[100], Some(500.0));
        assert_eq!(r.mistakes, 1);
        assert!((r.query_accuracy - 0.99).abs() < 1e-9);
        assert_eq!(r.detection_time, None);
    }

    #[test]
    fn detection_requires_permanence() {
        let mut suspected: Vec<u64> = (63..80).collect();
        suspected.extend(90..=100);
        let r = run(100, &suspected, Some(60.0));
        assert_eq!(r.detection_time, Some(30.0));
    }

    #[test]
    fn suspicion_predating_the_crash_detects_instantly() {
        let suspected: Vec<u64> = (50..=100).collect();
        let r = run(100, &suspected, Some(60.0));
        assert_eq!(r.detection_time, Some(0.0));
    }

    #[test]
    fn report_is_incremental() {
        let mut qos = OnlineQos::new(None);
        qos.observe(Timestamp::from_secs(1), Status::Trusted);
        qos.observe(Timestamp::from_secs(2), Status::Suspected);
        let mid = qos.report();
        assert_eq!(mid.mistakes, 1);
        assert!((mid.observed_alive - 1.0).abs() < 1e-9);
        qos.observe(Timestamp::from_secs(3), Status::Trusted);
        let end = qos.report();
        assert_eq!(end.mistake_duration, Some(1.0));
        assert!((end.query_accuracy - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn set_crash_mid_stream() {
        let mut qos = OnlineQos::new(None);
        qos.observe(Timestamp::from_secs(1), Status::Trusted);
        qos.set_crash(Timestamp::from_secs(5));
        qos.observe(Timestamp::from_secs(6), Status::Suspected);
        let r = qos.report();
        assert_eq!(r.detection_time, Some(1.0));
        assert_eq!(r.mistakes, 0);
        assert!((r.observed_alive - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_query_stream() {
        let mut qos = OnlineQos::new(None);
        qos.observe(Timestamp::from_secs(5), Status::Trusted);
        let r = qos.report();
        assert_eq!(r.observed_alive, 0.0);
        assert_eq!(r.query_accuracy, 1.0);
        assert_eq!(r.mistake_rate, 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_queries_rejected() {
        let mut qos = OnlineQos::new(None);
        qos.observe(Timestamp::from_secs(2), Status::Trusted);
        qos.observe(Timestamp::from_secs(1), Status::Trusted);
    }
}
