//! Observability for accrual failure detectors.
//!
//! Duarte et al.'s survey of deployed unreliable-failure-detector
//! implementations stresses that monitoring-layer *visibility* is what
//! makes a failure detector operable in production: the running system
//! must expose the same evidence — transition logs, counters, QoS
//! estimates — that the offline analysis reasons about. This crate is that
//! layer, dependency-free beyond `afd-core`:
//!
//! - [`registry`] — a registry of named counters, gauges, and fixed-bucket
//!   histograms with cheap atomic updates. A [`Snapshot`] of the registry
//!   serializes to a human-readable text table and to JSON, so the same
//!   data feeds a terminal, a log line, or a scraper.
//! - [`trace`] — a bounded ring buffer of structured, timestamped events:
//!   S-/T-transitions, degradation switches, watchdog restarts. The chaos
//!   harness and the `live_chaos` example drain it for checkable runtime
//!   evidence (in the spirit of Tran/Konnov/Widder's transition logs).
//! - [`qos`] — [`OnlineQos`], a streaming estimator of the Chen et al.
//!   QoS metrics (T_D, T_MR, T_M, λ_M, P_A, T_G) computed incrementally
//!   from a live trusted/suspected query stream. `afd-qos::analyze` replays
//!   recorded traces through the *same* estimator, so online and offline
//!   numbers agree by construction.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod qos;
pub mod registry;
pub mod trace;

pub use qos::{OnlineQos, QosReport};
pub use registry::{Counter, Gauge, Histogram, Registry, Snapshot, SnapshotValue};
pub use trace::{EventKind, EventRing, ObsEvent};
