//! Quality-of-service metrics for failure detectors, and the experiment
//! harness that sweeps them.
//!
//! §2 of the paper adopts the Chen–Toueg–Aguilera QoS metrics; §4.4 proves
//! ordering theorems about them across interpretation thresholds. This
//! crate computes those metrics from recorded detector histories:
//!
//! - [`metrics`]: T_D, T_MR, T_M, λ_M, P_A, T_G from a
//!   [`afd_core::history::BinaryTrace`] plus a crash time.
//! - [`experiment`]: seeded repetition, aggregation, and table rendering
//!   shared by the reproduction experiments (E1–E12 in DESIGN.md).
//!
//! # Example
//!
//! ```
//! use afd_core::binary::Status;
//! use afd_core::history::BinaryTrace;
//! use afd_core::time::Timestamp;
//! use afd_qos::metrics::analyze;
//!
//! // A detector that wrongly suspects during seconds 5–6 and then detects
//! // a crash at t = 20 with 2 s latency.
//! let mut trace = BinaryTrace::new();
//! for s in 1..=30u64 {
//!     let suspected = (5..7).contains(&s) || s >= 22;
//!     trace.push(
//!         Timestamp::from_secs(s),
//!         if suspected { Status::Suspected } else { Status::Trusted },
//!     );
//! }
//! let report = analyze(&trace, Some(Timestamp::from_secs(20)));
//! assert_eq!(report.mistakes, 1);
//! assert_eq!(report.detection_time, Some(2.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod experiment;
pub mod metrics;
pub mod tuning;

pub use experiment::{aggregate, run_seeds, AggregatedQos, Table};
pub use metrics::{analyze, analyze_at_threshold, QosReport};
pub use tuning::{quantile_threshold, smallest_threshold_meeting_rate, sweep_thresholds};
