//! The experiment sweep harness.
//!
//! Experiments in this reproduction all have the same shape: sweep one or
//! two parameters, run several seeds per point, aggregate the per-run QoS
//! metrics, and print a table (the paper-style "rows"). This module holds
//! the shared plumbing: seeded repetition, aggregation, and aligned ASCII
//! tables.

use afd_core::stats::Summary;

use crate::metrics::QosReport;

/// Aggregated QoS metrics over many seeded runs of one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedQos {
    /// Runs contributing to the aggregate.
    pub runs: usize,
    /// Detection time summary (crash runs that detected), seconds.
    pub detection_time: Option<Summary>,
    /// Fraction of crash runs that reached permanent suspicion.
    pub detection_coverage: f64,
    /// Mean mistakes per run.
    pub mean_mistakes: f64,
    /// Mistake rate summary (per second).
    pub mistake_rate: Option<Summary>,
    /// Query accuracy summary.
    pub query_accuracy: Option<Summary>,
    /// Mistake recurrence summary, seconds (runs with ≥ 2 mistakes).
    pub mistake_recurrence: Option<Summary>,
    /// Mistake duration summary, seconds (runs with a recovered mistake).
    pub mistake_duration: Option<Summary>,
    /// Good period summary, seconds.
    pub good_period: Option<Summary>,
}

/// Aggregates per-run reports into one [`AggregatedQos`].
pub fn aggregate(reports: &[QosReport]) -> AggregatedQos {
    let detections: Vec<f64> = reports.iter().filter_map(|r| r.detection_time).collect();
    AggregatedQos {
        runs: reports.len(),
        detection_time: Summary::from_samples(&detections),
        // Meaningful when the caller aggregates crash runs only: the
        // fraction of them whose crash was permanently detected.
        detection_coverage: if reports.is_empty() {
            0.0
        } else {
            detections.len() as f64 / reports.len() as f64
        },
        mean_mistakes: if reports.is_empty() {
            0.0
        } else {
            reports.iter().map(|r| r.mistakes as f64).sum::<f64>() / reports.len() as f64
        },
        mistake_rate: Summary::from_samples(
            &reports.iter().map(|r| r.mistake_rate).collect::<Vec<_>>(),
        ),
        query_accuracy: Summary::from_samples(
            &reports.iter().map(|r| r.query_accuracy).collect::<Vec<_>>(),
        ),
        mistake_recurrence: Summary::from_samples(
            &reports
                .iter()
                .filter_map(|r| r.mistake_recurrence)
                .collect::<Vec<_>>(),
        ),
        mistake_duration: Summary::from_samples(
            &reports
                .iter()
                .filter_map(|r| r.mistake_duration)
                .collect::<Vec<_>>(),
        ),
        good_period: Summary::from_samples(
            &reports
                .iter()
                .filter_map(|r| r.good_period)
                .collect::<Vec<_>>(),
        ),
    }
}

/// Runs `f` once per seed and aggregates the reports.
pub fn run_seeds(
    seeds: impl IntoIterator<Item = u64>,
    mut f: impl FnMut(u64) -> QosReport,
) -> AggregatedQos {
    let reports: Vec<QosReport> = seeds.into_iter().map(&mut f).collect();
    aggregate(&reports)
}

/// A simple aligned ASCII table for experiment output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let mut line = String::from("|");
            for (w, cell) in widths.iter().zip(cells) {
                line.push(' ');
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', w - cell.chars().count() + 1));
                line.push('|');
            }
            writeln!(f, "{line}")
        };
        write_row(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(f, &sep)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats an optional summary's mean as a fixed-width cell.
pub fn cell_mean(s: &Option<Summary>, digits: usize) -> String {
    match s {
        Some(s) => format!("{:.*}", digits, s.mean),
        None => "—".to_string(),
    }
}

/// Formats a float as a cell.
pub fn cell(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a float in scientific notation.
pub fn cell_sci(v: f64) -> String {
    format!("{v:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(detection: Option<f64>, mistakes: u64, rate: f64, acc: f64) -> QosReport {
        QosReport {
            detection_time: detection,
            mistakes,
            mistake_rate: rate,
            query_accuracy: acc,
            ..QosReport::default()
        }
    }

    #[test]
    fn aggregate_combines_runs() {
        let agg = aggregate(&[
            report(Some(1.0), 2, 0.1, 0.9),
            report(Some(3.0), 0, 0.0, 1.0),
            report(None, 4, 0.2, 0.8),
        ]);
        assert_eq!(agg.runs, 3);
        assert!((agg.detection_time.unwrap().mean - 2.0).abs() < 1e-12);
        assert!((agg.detection_coverage - 2.0 / 3.0).abs() < 1e-12);
        assert!((agg.mean_mistakes - 2.0).abs() < 1e-12);
        assert!((agg.query_accuracy.unwrap().mean - 0.9).abs() < 1e-12);
    }

    #[test]
    fn aggregate_of_empty_is_empty() {
        let agg = aggregate(&[]);
        assert_eq!(agg.runs, 0);
        assert_eq!(agg.detection_time, None);
        assert_eq!(agg.mean_mistakes, 0.0);
    }

    #[test]
    fn run_seeds_invokes_per_seed() {
        let mut calls = Vec::new();
        let agg = run_seeds(0..5, |seed| {
            calls.push(seed);
            report(Some(seed as f64), 0, 0.0, 1.0)
        });
        assert_eq!(calls, vec![0, 1, 2, 3, 4]);
        assert_eq!(agg.runs, 5);
        assert!((agg.detection_time.unwrap().mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1.00".into()]);
        t.push_row(vec!["b".into(), "123456.00".into()]);
        let text = t.to_string();
        assert!(text.contains("## demo"));
        assert!(text.contains("| name  |"));
        assert!(text.contains("| alpha | 1.00      |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(cell(1.23456, 2), "1.23");
        assert_eq!(cell_sci(0.000123), "1.23e-4");
        assert_eq!(cell_mean(&None, 2), "—");
        let s = Summary::from_samples(&[2.0, 4.0]);
        assert_eq!(cell_mean(&s, 1), "3.0");
    }
}
