//! The Chen et al. quality-of-service metrics (§2 of the paper).
//!
//! All metrics are defined for a pair *(q monitors p)* over a binary
//! failure-detector history:
//!
//! - **T_D (detection time)** — from p's crash until q suspects p
//!   *permanently* (the final S-transition). Defined on crash runs.
//! - **T_MR (mistake recurrence time)** — time between consecutive
//!   S-transitions while p is correct.
//! - **T_M (mistake duration)** — from an S-transition to the next
//!   T-transition.
//! - **λ_M (average mistake rate)** — S-transitions per time unit.
//! - **P_A (query accuracy probability)** — probability the output is
//!   correct (trusted, for a correct p) at a random time.
//! - **T_G (good period duration)** — from a T-transition to the next
//!   S-transition.
//!
//! [`analyze`] computes all of them from a [`BinaryTrace`]: accuracy
//! metrics over the portion of the run where p is alive, detection time
//! from the crash onward. Query times are assumed (and asserted elsewhere)
//! to be evenly spaced, making the query-fraction estimate of `P_A` a
//! time-average.
//!
//! The computation itself lives in `afd-obs`: [`analyze`] replays the
//! recorded trace through the streaming [`OnlineQos`] estimator, so a live
//! system's online numbers and a post-hoc analysis of the same run agree
//! by construction.
//!
//! [`OnlineQos`]: afd_obs::OnlineQos

use afd_core::history::BinaryTrace;
use afd_core::time::Timestamp;
use afd_obs::OnlineQos;

pub use afd_obs::QosReport;

/// Computes the QoS metrics of `trace` for a monitored process that
/// crashes at `crash` (or never, if `None`).
///
/// Queries at or after the crash time are judged for completeness
/// (detection); queries strictly before it are judged for accuracy. The
/// alive observation window runs from the first sample to the crash
/// (clamped to the end of the trace), so λ_M and P_A are measured against
/// the true alive duration, not merely up to the last pre-crash sample.
///
/// Returns a default (all-`None`/zero) report for an empty trace.
pub fn analyze(trace: &BinaryTrace, crash: Option<Timestamp>) -> QosReport {
    let mut qos = OnlineQos::new(crash);
    for sample in trace.samples() {
        qos.observe(sample.at, sample.status);
    }
    qos.report()
}

/// Converts a suspicion-level history into QoS metrics through a constant
/// threshold (the detector `D_T` of Equation 2).
///
/// Convenience for experiments: `analyze(trace.threshold(T), crash)`.
pub fn analyze_at_threshold(
    levels: &afd_core::history::SuspicionTrace,
    threshold: afd_core::suspicion::SuspicionLevel,
    crash: Option<Timestamp>,
) -> QosReport {
    analyze(&levels.threshold(threshold), crash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_core::binary::Status;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs_f64(s)
    }

    /// Builds a trace with one query per second; `suspect_at` lists the
    /// (whole) seconds at which the detector output "suspected".
    fn trace(horizon: u64, suspected: &[u64]) -> BinaryTrace {
        let mut t = BinaryTrace::new();
        for s in 1..=horizon {
            let status = if suspected.contains(&s) {
                Status::Suspected
            } else {
                Status::Trusted
            };
            t.push(Timestamp::from_secs(s), status);
        }
        t
    }

    #[test]
    fn empty_trace_gives_default() {
        assert_eq!(analyze(&BinaryTrace::new(), None), QosReport::default());
    }

    #[test]
    fn perfect_run_has_full_accuracy() {
        let r = analyze(&trace(100, &[]), None);
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.query_accuracy, 1.0);
        assert_eq!(r.mistake_rate, 0.0);
        assert_eq!(r.mistake_recurrence, None);
        assert_eq!(r.mistake_duration, None);
        assert_eq!(r.detection_time, None);
        assert!((r.observed_alive - 99.0).abs() < 1e-9);
    }

    #[test]
    fn single_mistake_metrics() {
        // Suspected during seconds 10–12 → S at 10, T at 13.
        let r = analyze(&trace(100, &[10, 11, 12]), None);
        assert_eq!(r.mistakes, 1);
        assert_eq!(r.mistake_recurrence, None); // needs two mistakes
        assert_eq!(r.mistake_duration, Some(3.0));
        assert!((r.query_accuracy - 0.97).abs() < 1e-9);
        assert!((r.mistake_rate - 1.0 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn recurrence_and_good_periods() {
        // Mistakes at 10 and 50 (each 1 s long).
        let r = analyze(&trace(100, &[10, 50]), None);
        assert_eq!(r.mistakes, 2);
        assert_eq!(r.mistake_recurrence, Some(40.0));
        assert_eq!(r.mistake_duration, Some(1.0));
        // Good period: T at 11 → S at 50 = 39 s.
        assert_eq!(r.good_period, Some(39.0));
    }

    #[test]
    fn detection_time_measured_from_crash() {
        // Crash at t = 60; detector suspects permanently from t = 63.
        let suspected: Vec<u64> = (63..=100).collect();
        let r = analyze(&trace(100, &suspected), Some(ts(60.0)));
        assert_eq!(r.detection_time, Some(3.0));
        // No mistakes before the crash.
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.query_accuracy, 1.0);
    }

    #[test]
    fn detection_requires_permanence() {
        // Suspects at 63 but trusts again at 80: the FINAL S-transition is
        // what counts (at 90 here).
        let mut suspected: Vec<u64> = (63..80).collect();
        suspected.extend(90..=100);
        let r = analyze(&trace(100, &suspected), Some(ts(60.0)));
        assert_eq!(r.detection_time, Some(30.0));
    }

    #[test]
    fn undetected_crash_has_no_detection_time() {
        let r = analyze(&trace(100, &[]), Some(ts(60.0)));
        assert_eq!(r.detection_time, None);
    }

    #[test]
    fn crash_beyond_trace_is_ignored() {
        let r = analyze(
            &trace(100, &(40..=100).collect::<Vec<_>>()),
            Some(ts(500.0)),
        );
        assert_eq!(r.detection_time, None);
    }

    #[test]
    fn pre_crash_mistakes_do_not_count_against_detection() {
        // A mistake at 20, recovery, then crash at 60 detected at 64.
        let mut suspected = vec![20, 21];
        suspected.extend(64..=100);
        let r = analyze(&trace(100, &suspected), Some(ts(60.0)));
        assert_eq!(r.mistakes, 1);
        assert_eq!(r.detection_time, Some(4.0));
        assert!(r.query_accuracy < 1.0);
    }

    #[test]
    fn suspicion_already_active_at_crash_gives_zero_detection() {
        // Wrongly suspecting from t=50 onward; crash at 60. The final
        // S-transition (50) predates the crash → detection time 0.
        let suspected: Vec<u64> = (50..=100).collect();
        let r = analyze(&trace(100, &suspected), Some(ts(60.0)));
        assert_eq!(r.detection_time, Some(0.0));
    }

    #[test]
    fn threshold_helper_matches_manual_analysis() {
        use afd_core::history::SuspicionTrace;
        use afd_core::suspicion::SuspicionLevel;

        let mut levels = SuspicionTrace::new();
        for s in 1..=10u64 {
            let v = if s >= 5 { 3.0 } else { 0.5 };
            levels.push(Timestamp::from_secs(s), SuspicionLevel::new(v).unwrap());
        }
        let thr = SuspicionLevel::new(1.0).unwrap();
        let direct = analyze(&levels.threshold(thr), Some(ts(4.0)));
        let helper = analyze_at_threshold(&levels, thr, Some(ts(4.0)));
        assert_eq!(direct, helper);
        assert_eq!(helper.detection_time, Some(1.0));
    }

    // --- Regression: alive-window accounting -----------------------------
    // `observed_alive` used to stop at the last sample that happened to
    // land before the crash, biasing λ_M and the P_A denominator by up to
    // one query period.

    #[test]
    fn alive_window_extends_to_a_mid_period_crash() {
        // Crash at t = 60.5, between the queries at 60 and 61: the alive
        // window is 59.5 s, not 59 s (last alive sample − first sample).
        let suspected: Vec<u64> = (63..=100).collect();
        let r = analyze(&trace(100, &suspected), Some(ts(60.5)));
        assert!((r.observed_alive - 59.5).abs() < 1e-9, "{r:?}");
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.detection_time, Some(2.5));
    }

    #[test]
    fn mistake_rate_uses_the_crash_bounded_window() {
        // One mistake (at 10) before a crash at 60.5 → λ_M = 1 / 59.5.
        let mut suspected = vec![10];
        suspected.extend(63..=100);
        let r = analyze(&trace(100, &suspected), Some(ts(60.5)));
        assert_eq!(r.mistakes, 1);
        assert!((r.mistake_rate - 1.0 / 59.5).abs() < 1e-12, "{r:?}");
    }

    #[test]
    fn crash_beyond_trace_keeps_the_final_sample_in_accuracy() {
        // A crash scheduled past the horizon must not drop the last query
        // from the accuracy window: a mistake at t = 100 still counts.
        let r = analyze(&trace(100, &[100]), Some(ts(500.0)));
        assert_eq!(r.mistakes, 1);
        assert!((r.query_accuracy - 0.99).abs() < 1e-9, "{r:?}");
        assert!((r.observed_alive - 99.0).abs() < 1e-9);
    }

    // --- Edge cases -------------------------------------------------------

    #[test]
    fn trace_ending_exactly_at_the_crash_instant() {
        // The final query coincides with the crash: it belongs to the
        // detection side (at >= crash), not the accuracy side, and the
        // alive window spans first sample → crash.
        let mut t = BinaryTrace::new();
        for s in 1..=59u64 {
            t.push(Timestamp::from_secs(s), Status::Trusted);
        }
        t.push(Timestamp::from_secs(60), Status::Suspected);
        let r = analyze(&t, Some(ts(60.0)));
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.query_accuracy, 1.0);
        assert!((r.observed_alive - 59.0).abs() < 1e-9);
        assert_eq!(r.detection_time, Some(0.0));
    }

    #[test]
    fn single_sample_traces() {
        let mut trusted = BinaryTrace::new();
        trusted.push(Timestamp::from_secs(5), Status::Trusted);
        let r = analyze(&trusted, None);
        assert_eq!(r.observed_alive, 0.0);
        assert_eq!(r.query_accuracy, 1.0);
        assert_eq!(r.mistake_rate, 0.0);
        assert_eq!(r.detection_time, None);

        let mut suspected = BinaryTrace::new();
        suspected.push(Timestamp::from_secs(5), Status::Suspected);
        let r = analyze(&suspected, Some(ts(3.0)));
        // The lone sample is post-crash: no alive queries, instant
        // (well, 2 s) permanent detection.
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.query_accuracy, 1.0);
        assert_eq!(r.detection_time, Some(2.0));
        let r = analyze(&suspected, None);
        // Without a crash the sample is one alive mistake.
        assert_eq!(r.mistakes, 1);
        assert_eq!(r.query_accuracy, 0.0);
    }

    #[test]
    fn online_estimator_agrees_with_offline_analyze() {
        // Deterministic replay check (the property-style version over
        // random traces lives in tests/online_offline.rs).
        let scenarios: &[(Vec<u64>, Option<f64>)] = &[
            ((63..=100).collect(), Some(60.5)),
            (vec![10, 11, 40, 41, 42, 90], None),
            (vec![1, 2, 3], Some(2.0)),
        ];
        for (suspected, crash) in scenarios {
            let t = trace(100, suspected);
            let crash = crash.map(ts);
            let mut online = OnlineQos::new(crash);
            for s in t.samples() {
                online.observe(s.at, s.status);
            }
            assert_eq!(online.report(), analyze(&t, crash));
        }
    }
}
