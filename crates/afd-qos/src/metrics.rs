//! The Chen et al. quality-of-service metrics (§2 of the paper).
//!
//! All metrics are defined for a pair *(q monitors p)* over a binary
//! failure-detector history:
//!
//! - **T_D (detection time)** — from p's crash until q suspects p
//!   *permanently* (the final S-transition). Defined on crash runs.
//! - **T_MR (mistake recurrence time)** — time between consecutive
//!   S-transitions while p is correct.
//! - **T_M (mistake duration)** — from an S-transition to the next
//!   T-transition.
//! - **λ_M (average mistake rate)** — S-transitions per time unit.
//! - **P_A (query accuracy probability)** — probability the output is
//!   correct (trusted, for a correct p) at a random time.
//! - **T_G (good period duration)** — from a T-transition to the next
//!   S-transition.
//!
//! [`analyze`] computes all of them from a [`BinaryTrace`]: accuracy
//! metrics over the portion of the run where p is alive, detection time
//! from the crash onward. Query times are assumed (and asserted elsewhere)
//! to be evenly spaced, making the query-fraction estimate of `P_A` a
//! time-average.

use afd_core::binary::Transition;
use afd_core::history::BinaryTrace;
use afd_core::time::Timestamp;

/// The QoS metrics of one run, in seconds where dimensional.
///
/// Metrics that require an event that never happened are `None` — e.g.
/// `mistake_recurrence` needs at least two mistakes, `detection_time`
/// needs a crash that was permanently detected within the trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QosReport {
    /// T_D: crash → permanent suspicion, seconds.
    pub detection_time: Option<f64>,
    /// Number of wrong S-transitions (mistakes) while the process was alive.
    pub mistakes: u64,
    /// T_MR: mean seconds between consecutive mistakes.
    pub mistake_recurrence: Option<f64>,
    /// T_M: mean seconds a mistake lasted.
    pub mistake_duration: Option<f64>,
    /// λ_M: mistakes per second of alive time.
    pub mistake_rate: f64,
    /// P_A: fraction of queries (≈ time, on an even schedule) with correct
    /// output while the process was alive.
    pub query_accuracy: f64,
    /// T_G: mean seconds of a good period (T-transition → next
    /// S-transition).
    pub good_period: Option<f64>,
    /// Length of the alive (accuracy) observation window, seconds.
    pub observed_alive: f64,
}

/// Computes the QoS metrics of `trace` for a monitored process that
/// crashes at `crash` (or never, if `None`).
///
/// Queries at or after the crash time are judged for completeness
/// (detection); queries strictly before it are judged for accuracy.
///
/// Returns a default (all-`None`/zero) report for an empty trace.
pub fn analyze(trace: &BinaryTrace, crash: Option<Timestamp>) -> QosReport {
    let samples = trace.samples();
    if samples.is_empty() {
        return QosReport::default();
    }

    let start = samples[0].at;
    let end = samples[samples.len() - 1].at;
    let alive_end = crash.map_or(end, |c| c.min(end));

    // --- Accuracy metrics over the alive window ---------------------------
    let alive: Vec<_> = samples
        .iter()
        .take_while(|s| s.at < alive_end || crash.is_none())
        .collect();
    let mut s_times: Vec<Timestamp> = Vec::new();
    let mut t_times: Vec<Timestamp> = Vec::new();
    {
        let mut det = afd_core::binary::TransitionDetector::new();
        for s in &alive {
            match det.observe(s.status) {
                Some(Transition::Suspect) => s_times.push(s.at),
                Some(Transition::Trust) => t_times.push(s.at),
                None => {}
            }
        }
    }

    let observed_alive = if alive.is_empty() {
        0.0
    } else {
        (alive[alive.len() - 1].at.saturating_duration_since(start)).as_secs_f64()
    };

    let mistakes = s_times.len() as u64;
    let mistake_rate = if observed_alive > 0.0 {
        mistakes as f64 / observed_alive
    } else {
        0.0
    };

    let mistake_recurrence = if s_times.len() >= 2 {
        let total: f64 = s_times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .sum();
        Some(total / (s_times.len() - 1) as f64)
    } else {
        None
    };

    // Pair each S-transition with the next T-transition after it.
    let mut durations = Vec::new();
    let mut good_periods = Vec::new();
    {
        let mut ti = 0;
        for &s_at in &s_times {
            while ti < t_times.len() && t_times[ti] <= s_at {
                ti += 1;
            }
            if ti < t_times.len() {
                durations.push((t_times[ti] - s_at).as_secs_f64());
            }
        }
        // Good periods: T-transition → next S-transition.
        let mut si = 0;
        for &t_at in &t_times {
            while si < s_times.len() && s_times[si] <= t_at {
                si += 1;
            }
            if si < s_times.len() {
                good_periods.push((s_times[si] - t_at).as_secs_f64());
            }
        }
    }
    let mistake_duration = mean(&durations);
    let good_period = mean(&good_periods);

    let correct_queries = alive.iter().filter(|s| s.status.is_trusted()).count();
    let query_accuracy = if alive.is_empty() {
        1.0
    } else {
        correct_queries as f64 / alive.len() as f64
    };

    // --- Completeness: detection time -------------------------------------
    let detection_time = crash.and_then(|c| {
        if c > end {
            return None; // crash outside the trace
        }
        // Find the final S-transition over the WHOLE trace; detection
        // requires the trace to end suspected.
        trace.permanent_suspicion_start().map(|at| {
            // Suspicion that predates the crash means the detector was
            // already (rightly or wrongly) suspecting at crash time:
            // detection is instantaneous from the crash onward.
            at.saturating_duration_since(c).as_secs_f64()
        })
    });

    QosReport {
        detection_time,
        mistakes,
        mistake_recurrence,
        mistake_duration,
        mistake_rate,
        query_accuracy,
        good_period,
        observed_alive,
    }
}

fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Converts a suspicion-level history into QoS metrics through a constant
/// threshold (the detector `D_T` of Equation 2).
///
/// Convenience for experiments: `analyze(trace.threshold(T), crash)`.
pub fn analyze_at_threshold(
    levels: &afd_core::history::SuspicionTrace,
    threshold: afd_core::suspicion::SuspicionLevel,
    crash: Option<Timestamp>,
) -> QosReport {
    analyze(&levels.threshold(threshold), crash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_core::binary::Status;

    fn ts(s: f64) -> Timestamp {
        Timestamp::from_secs_f64(s)
    }

    /// Builds a trace with one query per second; `suspect_at` lists the
    /// (whole) seconds at which the detector output "suspected".
    fn trace(horizon: u64, suspected: &[u64]) -> BinaryTrace {
        let mut t = BinaryTrace::new();
        for s in 1..=horizon {
            let status = if suspected.contains(&s) {
                Status::Suspected
            } else {
                Status::Trusted
            };
            t.push(Timestamp::from_secs(s), status);
        }
        t
    }

    #[test]
    fn empty_trace_gives_default() {
        assert_eq!(analyze(&BinaryTrace::new(), None), QosReport::default());
    }

    #[test]
    fn perfect_run_has_full_accuracy() {
        let r = analyze(&trace(100, &[]), None);
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.query_accuracy, 1.0);
        assert_eq!(r.mistake_rate, 0.0);
        assert_eq!(r.mistake_recurrence, None);
        assert_eq!(r.mistake_duration, None);
        assert_eq!(r.detection_time, None);
        assert!((r.observed_alive - 99.0).abs() < 1e-9);
    }

    #[test]
    fn single_mistake_metrics() {
        // Suspected during seconds 10–12 → S at 10, T at 13.
        let r = analyze(&trace(100, &[10, 11, 12]), None);
        assert_eq!(r.mistakes, 1);
        assert_eq!(r.mistake_recurrence, None); // needs two mistakes
        assert_eq!(r.mistake_duration, Some(3.0));
        assert!((r.query_accuracy - 0.97).abs() < 1e-9);
        assert!((r.mistake_rate - 1.0 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn recurrence_and_good_periods() {
        // Mistakes at 10 and 50 (each 1 s long).
        let r = analyze(&trace(100, &[10, 50]), None);
        assert_eq!(r.mistakes, 2);
        assert_eq!(r.mistake_recurrence, Some(40.0));
        assert_eq!(r.mistake_duration, Some(1.0));
        // Good period: T at 11 → S at 50 = 39 s.
        assert_eq!(r.good_period, Some(39.0));
    }

    #[test]
    fn detection_time_measured_from_crash() {
        // Crash at t = 60; detector suspects permanently from t = 63.
        let suspected: Vec<u64> = (63..=100).collect();
        let r = analyze(&trace(100, &suspected), Some(ts(60.0)));
        assert_eq!(r.detection_time, Some(3.0));
        // No mistakes before the crash.
        assert_eq!(r.mistakes, 0);
        assert_eq!(r.query_accuracy, 1.0);
    }

    #[test]
    fn detection_requires_permanence() {
        // Suspects at 63 but trusts again at 80: the FINAL S-transition is
        // what counts (at 90 here).
        let mut suspected: Vec<u64> = (63..80).collect();
        suspected.extend(90..=100);
        let r = analyze(&trace(100, &suspected), Some(ts(60.0)));
        assert_eq!(r.detection_time, Some(30.0));
    }

    #[test]
    fn undetected_crash_has_no_detection_time() {
        let r = analyze(&trace(100, &[]), Some(ts(60.0)));
        assert_eq!(r.detection_time, None);
    }

    #[test]
    fn crash_beyond_trace_is_ignored() {
        let r = analyze(
            &trace(100, &(40..=100).collect::<Vec<_>>()),
            Some(ts(500.0)),
        );
        assert_eq!(r.detection_time, None);
    }

    #[test]
    fn pre_crash_mistakes_do_not_count_against_detection() {
        // A mistake at 20, recovery, then crash at 60 detected at 64.
        let mut suspected = vec![20, 21];
        suspected.extend(64..=100);
        let r = analyze(&trace(100, &suspected), Some(ts(60.0)));
        assert_eq!(r.mistakes, 1);
        assert_eq!(r.detection_time, Some(4.0));
        assert!(r.query_accuracy < 1.0);
    }

    #[test]
    fn suspicion_already_active_at_crash_gives_zero_detection() {
        // Wrongly suspecting from t=50 onward; crash at 60. The final
        // S-transition (50) predates the crash → detection time 0.
        let suspected: Vec<u64> = (50..=100).collect();
        let r = analyze(&trace(100, &suspected), Some(ts(60.0)));
        assert_eq!(r.detection_time, Some(0.0));
    }

    #[test]
    fn threshold_helper_matches_manual_analysis() {
        use afd_core::history::SuspicionTrace;
        use afd_core::suspicion::SuspicionLevel;

        let mut levels = SuspicionTrace::new();
        for s in 1..=10u64 {
            let v = if s >= 5 { 3.0 } else { 0.5 };
            levels.push(Timestamp::from_secs(s), SuspicionLevel::new(v).unwrap());
        }
        let thr = SuspicionLevel::new(1.0).unwrap();
        let direct = analyze(&levels.threshold(thr), Some(ts(4.0)));
        let helper = analyze_at_threshold(&levels, thr, Some(ts(4.0)));
        assert_eq!(direct, helper);
        assert_eq!(helper.detection_time, Some(1.0));
    }
}
