//! Choosing interpretation thresholds from observed behaviour.
//!
//! The paper leaves interpretation to applications; these helpers are the
//! pragmatic toolkit an application uses to *pick* its threshold:
//!
//! - [`quantile_threshold`]: the classical recipe — set the threshold
//!   above the `q`-quantile of levels observed while the peer was healthy
//!   (e.g. `q = 0.999` ⇒ roughly one wrong suspicion per thousand
//!   queries, assuming stationarity).
//! - [`sweep_thresholds`]: evaluate a threshold grid against a recorded
//!   level history, yielding the full QoS report per candidate.
//! - [`smallest_threshold_meeting_rate`]: the aggressive end of the §4.4
//!   tradeoff — the lowest (fastest-detecting) threshold whose mistake
//!   rate on the calibration trace stays within budget.

use afd_core::history::SuspicionTrace;
use afd_core::stats::quantile;
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::Timestamp;

use crate::metrics::{analyze_at_threshold, QosReport};

/// The threshold sitting at the `q`-quantile of the observed levels.
///
/// Returns `None` if the trace is empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile_threshold(levels: &SuspicionTrace, q: f64) -> Option<SuspicionLevel> {
    let values: Vec<f64> = levels
        .iter()
        .map(|s| s.level.value())
        .filter(|v| v.is_finite())
        .collect();
    quantile(&values, q).map(SuspicionLevel::clamped)
}

/// Evaluates each candidate threshold against the recorded history.
///
/// `crash` is forwarded to the QoS analysis (pass `None` for a healthy
/// calibration trace).
pub fn sweep_thresholds(
    levels: &SuspicionTrace,
    candidates: &[SuspicionLevel],
    crash: Option<Timestamp>,
) -> Vec<(SuspicionLevel, QosReport)> {
    candidates
        .iter()
        .map(|&thr| (thr, analyze_at_threshold(levels, thr, crash)))
        .collect()
}

/// The smallest candidate whose mistake rate on the (healthy) calibration
/// trace is at most `max_rate` mistakes per second.
///
/// Returns `None` if no candidate qualifies. Candidates are tried in
/// ascending order, so the result is the most aggressive acceptable
/// threshold (fastest detection by Corollary 2).
pub fn smallest_threshold_meeting_rate(
    levels: &SuspicionTrace,
    candidates: &[SuspicionLevel],
    max_rate: f64,
) -> Option<SuspicionLevel> {
    let mut sorted = candidates.to_vec();
    sorted.sort();
    sorted
        .into_iter()
        .find(|&thr| analyze_at_threshold(levels, thr, None).mistake_rate <= max_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sl(v: f64) -> SuspicionLevel {
        SuspicionLevel::new(v).unwrap()
    }

    /// A sawtooth level trace: ramps 0..peak repeatedly, one query per
    /// second.
    fn sawtooth(peaks: &[f64]) -> SuspicionTrace {
        let mut trace = SuspicionTrace::new();
        let mut t = 1u64;
        for &peak in peaks {
            let steps = (peak * 2.0) as u64 + 1;
            for k in 0..steps {
                trace.push(Timestamp::from_secs(t), sl((k as f64 * 0.5).min(peak)));
                t += 1;
            }
        }
        trace
    }

    #[test]
    fn quantile_threshold_bounds_levels() {
        let trace = sawtooth(&[2.0, 3.0, 2.5]);
        let t100 = quantile_threshold(&trace, 1.0).unwrap();
        assert_eq!(t100, sl(3.0));
        let t50 = quantile_threshold(&trace, 0.5).unwrap();
        assert!(t50 < t100);
        assert_eq!(quantile_threshold(&SuspicionTrace::new(), 0.5), None);
    }

    #[test]
    fn sweep_reports_monotone_accuracy() {
        let trace = sawtooth(&[2.0, 4.0, 3.0]);
        let grid: Vec<SuspicionLevel> = [0.5, 1.5, 2.5, 3.5, 4.5].iter().map(|&v| sl(v)).collect();
        let sweep = sweep_thresholds(&trace, &grid, None);
        assert_eq!(sweep.len(), 5);
        for pair in sweep.windows(2) {
            assert!(pair[1].1.query_accuracy >= pair[0].1.query_accuracy - 1e-12);
        }
        // Above every level: no mistakes at all.
        assert_eq!(sweep[4].1.mistakes, 0);
    }

    #[test]
    fn smallest_threshold_is_aggressive_but_compliant() {
        let trace = sawtooth(&[2.0; 20]);
        let grid: Vec<SuspicionLevel> = (0..10).map(|k| sl(k as f64 * 0.5)).collect();
        // Demand zero mistakes: only thresholds ≥ 2.0 qualify.
        let thr = smallest_threshold_meeting_rate(&trace, &grid, 0.0).unwrap();
        assert_eq!(thr, sl(2.0));
        // A lenient budget admits a lower threshold.
        let lenient = smallest_threshold_meeting_rate(&trace, &grid, 1.0).unwrap();
        assert!(lenient < thr);
        // An impossible budget with an inadequate grid yields None.
        let low_grid = [sl(0.1)];
        assert_eq!(
            smallest_threshold_meeting_rate(&trace, &low_grid, 0.0),
            None
        );
    }

    #[test]
    fn unsorted_candidates_are_handled() {
        let trace = sawtooth(&[2.0; 5]);
        let grid = [sl(5.0), sl(2.0), sl(9.0)];
        let thr = smallest_threshold_meeting_rate(&trace, &grid, 0.0).unwrap();
        assert_eq!(thr, sl(2.0));
    }
}
