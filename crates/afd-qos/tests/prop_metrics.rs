//! Property-based tests for the QoS metric computations: invariants that
//! must hold for *any* binary history, checked against independent
//! recomputations.

// Exact float equality is intentional in test assertions.
#![allow(clippy::float_cmp)]

use afd_core::binary::{Status, TransitionDetector};
use afd_core::history::BinaryTrace;
use afd_core::time::Timestamp;
use afd_qos::metrics::analyze;
use proptest::prelude::*;

/// Builds a one-query-per-second trace from booleans (true = suspected).
fn trace_from(bits: &[bool]) -> BinaryTrace {
    let mut t = BinaryTrace::new();
    for (i, &b) in bits.iter().enumerate() {
        t.push(
            Timestamp::from_secs(i as u64 + 1),
            if b {
                Status::Suspected
            } else {
                Status::Trusted
            },
        );
    }
    t
}

proptest! {
    /// Invariants on runs without a crash.
    #[test]
    fn healthy_run_invariants(bits in prop::collection::vec(any::<bool>(), 1..300)) {
        let trace = trace_from(&bits);
        let report = analyze(&trace, None);

        // P_A is a probability and equals the trusted fraction.
        prop_assert!((0.0..=1.0).contains(&report.query_accuracy));
        let trusted = bits.iter().filter(|&&b| !b).count();
        prop_assert!((report.query_accuracy - trusted as f64 / bits.len() as f64).abs() < 1e-12);

        // Mistakes equal S-transitions counted independently.
        let mut td = TransitionDetector::new();
        let s_count = bits
            .iter()
            .filter(|&&b| {
                matches!(
                    td.observe(if b { Status::Suspected } else { Status::Trusted }),
                    Some(afd_core::binary::Transition::Suspect)
                )
            })
            .count() as u64;
        prop_assert_eq!(report.mistakes, s_count);

        // Rate is mistakes per observed second.
        if report.observed_alive > 0.0 {
            prop_assert!(
                (report.mistake_rate - report.mistakes as f64 / report.observed_alive).abs()
                    < 1e-12
            );
        }

        // No crash ⇒ no detection time.
        prop_assert_eq!(report.detection_time, None);

        // Durations are non-negative when present.
        for v in [report.mistake_recurrence, report.mistake_duration, report.good_period]
            .into_iter()
            .flatten()
        {
            prop_assert!(v >= 0.0);
        }
    }

    /// Invariants on crash runs.
    #[test]
    fn crash_run_invariants(
        prefix in prop::collection::vec(any::<bool>(), 1..100),
        crash_offset in 1usize..50,
        detect_lag in 0usize..20,
    ) {
        // Build: prefix (alive), then trusted until detection, then
        // suspected forever.
        let crash_idx = prefix.len() + crash_offset;
        let total = crash_idx + detect_lag + 30;
        let mut bits = prefix.clone();
        bits.resize(crash_idx + detect_lag, false);
        bits.resize(total, true);
        let trace = trace_from(&bits);
        let crash = Timestamp::from_secs(crash_idx as u64 + 1);
        let report = analyze(&trace, Some(crash));

        // Detection happened and is measured from the crash.
        let td = report.detection_time.expect("trace ends suspected");
        prop_assert!(td >= 0.0);
        prop_assert!((td - detect_lag as f64) <= 1e-9, "td {td} lag {detect_lag}");

        // Accuracy metrics only use the pre-crash portion.
        let alive_report = analyze(&trace_from(&prefix), None);
        // (prefix may end mid-mistake; mistake counts still agree because
        // both analyses see the same pre-crash samples)
        prop_assert_eq!(report.mistakes, alive_report.mistakes);
    }

    /// Analysis is insensitive to appending more suspected samples after
    /// permanent detection (the metrics are already determined).
    #[test]
    fn extending_permanent_suspicion_changes_nothing(
        prefix in prop::collection::vec(any::<bool>(), 1..60),
        extra in 1usize..50,
    ) {
        let crash_idx = prefix.len();
        let mut bits = prefix;
        bits.resize(crash_idx + 10, true);
        let crash = Timestamp::from_secs(crash_idx as u64 + 1);

        let short = analyze(&trace_from(&bits), Some(crash));
        bits.resize(bits.len() + extra, true);
        let long = analyze(&trace_from(&bits), Some(crash));

        prop_assert_eq!(short.detection_time, long.detection_time);
        prop_assert_eq!(short.mistakes, long.mistakes);
        prop_assert_eq!(short.query_accuracy, long.query_accuracy);
    }
}
