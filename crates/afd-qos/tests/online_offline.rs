//! Property-style check that the streaming `OnlineQos` estimator agrees
//! with the offline `analyze` on replayed traces — not just at the end of
//! a run, but at *every prefix*: an operator polling live estimates
//! mid-run must see exactly what a post-hoc analysis of the trace so far
//! would report.

use afd_core::binary::Status;
use afd_core::history::BinaryTrace;
use afd_core::time::Timestamp;
use afd_obs::OnlineQos;
use afd_qos::metrics::analyze;
use proptest::prelude::*;

fn status(bit: bool) -> Status {
    if bit {
        Status::Suspected
    } else {
        Status::Trusted
    }
}

proptest! {
    /// Every prefix of the live stream reports the same metrics as an
    /// offline analysis of the same prefix.
    #[test]
    fn online_matches_offline_at_every_prefix(
        bits in prop::collection::vec(any::<bool>(), 1..120),
        crash_at in prop::option::of(1u64..150),
    ) {
        let crash = crash_at.map(Timestamp::from_secs);
        let mut online = OnlineQos::new(crash);
        let mut trace = BinaryTrace::new();
        for (i, &b) in bits.iter().enumerate() {
            let at = Timestamp::from_secs(i as u64 + 1);
            online.observe(at, status(b));
            trace.push(at, status(b));
            let live = online.report();
            let offline = analyze(&trace, crash);
            prop_assert_eq!(live, offline, "diverged after {} samples", i + 1);
        }
    }

    /// Irregular (but monotone) query schedules agree too — nothing in the
    /// estimator assumes evenly spaced queries.
    #[test]
    fn online_matches_offline_on_irregular_schedules(
        steps in prop::collection::vec((1u64..5_000_000_000, any::<bool>()), 1..80),
        crash_at in prop::option::of(1u64..200),
    ) {
        let crash = crash_at.map(Timestamp::from_secs);
        let mut online = OnlineQos::new(crash);
        let mut trace = BinaryTrace::new();
        let mut now = Timestamp::ZERO;
        for &(step, b) in &steps {
            now += afd_core::time::Duration::from_nanos(step);
            online.observe(now, status(b));
            trace.push(now, status(b));
        }
        prop_assert_eq!(online.report(), analyze(&trace, crash));
    }
}
