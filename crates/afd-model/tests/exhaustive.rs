//! The checker's headline guarantees, end to end:
//!
//! 1. The real system is violation-free at every canonical state the
//!    smoke bounds reach, for all six zoo detectors.
//! 2. Every seeded mutant is caught, the counterexample minimizes to a
//!    1-minimal schedule, and that schedule replays through the *real*
//!    sender/monitor pipeline as a `ChaosScript`.
//! 3. On clean schedules the model and the runtime agree on every
//!    suspicion level after every event — the model is a faithful
//!    abstraction, not a parallel implementation drifting on its own.

use afd_core::process::ProcessId;
use afd_model::{
    explore, find_counterexample, minimize, model_trace, replay, to_script, DetectorKind,
    ModelBounds, ModelEvent, Mutant, Property, ZooDetector,
};
use afd_runtime::run_chaos_script;

#[test]
fn real_system_is_clean_and_smoke_bounds_are_nontrivial() {
    let bounds = ModelBounds::smoke();
    let mut total_states = 0u64;
    for kind in DetectorKind::ALL {
        let report = explore(kind, Mutant::None, bounds);
        assert!(
            report.counterexample.is_none(),
            "{}: the real system violated a property: {:?}",
            kind.name(),
            report.counterexample
        );
        assert!(
            report.states > 10_000,
            "{}: suspiciously small search ({} states) — bounds degenerated",
            kind.name(),
            report.states
        );
        total_states += report.states;
    }
    assert!(
        total_states >= 100_000,
        "smoke exploration covered only {total_states} canonical states"
    );
}

#[test]
fn every_mutant_is_caught_minimized_and_replayable() {
    let bounds = ModelBounds::mutant_hunt();
    let kind = DetectorKind::Simple;
    for mutant in Mutant::ALL {
        let cex = find_counterexample(kind, mutant, bounds)
            .unwrap_or_else(|| panic!("{}: mutant escaped the checker", mutant.name()));

        let expected_property = match mutant {
            Mutant::None => unreachable!("ALL excludes None"),
            Mutant::NonMonotoneAccrual => Property::Accruement,
            Mutant::DroppedSeqCheck => Property::Alg4Freshness,
            Mutant::HysteresisOffByOne => Property::HysteresisSpec,
            Mutant::Alg1NoThresholdRaise => Property::Alg1Threshold,
            Mutant::Alg2NoReset => Property::Alg2Accrual,
        };
        assert_eq!(
            cex.violation.property,
            expected_property,
            "{}: caught, but by the wrong property",
            mutant.name()
        );

        let min = minimize(kind, mutant, bounds, &cex);
        assert!(min.path.len() <= cex.path.len());
        assert!(
            replay(kind, mutant, bounds, &min.path).is_some(),
            "{}: minimized schedule no longer violates",
            mutant.name()
        );
        for i in 0..min.path.len() {
            let mut shorter = min.path.clone();
            shorter.remove(i);
            assert!(
                replay(kind, mutant, bounds, &shorter).is_none(),
                "{}: not 1-minimal, event {i} is removable",
                mutant.name()
            );
        }

        // The minimized schedule is a runnable artifact: convert it to a
        // ChaosScript and drive the real SenderCore/RuntimeMonitor stack
        // with it. The real stack has no mutants, so the run must be
        // clean — but every event must execute (no index drift between
        // model and runtime in-flight pools).
        let script = to_script(&bounds, &min.path);
        let interval = script.heartbeat_interval;
        let report = run_chaos_script(&script, move |_| ZooDetector::new(kind, interval));
        assert_eq!(
            report.trace.len(),
            min.path.len(),
            "{}: runtime replay diverged from the model schedule",
            mutant.name()
        );
    }
}

#[test]
fn model_and_runtime_agree_level_by_level_on_a_clean_schedule() {
    use ModelEvent as E;
    let bounds = ModelBounds::smoke();
    let p1 = ProcessId::new(1);
    // Two senders; exercise delivery, deferral, loss, and a crash.
    let path = [
        E::Deliver(0),
        E::Deliver(0),
        E::Tick,
        E::Tick,
        E::Deliver(1),
        E::Drop(0),
        E::Tick,
        E::Tick,
        E::Crash(p1),
        E::Deliver(0),
        E::Deliver(0),
        E::Tick,
        E::Tick,
        E::Deliver(0),
    ];
    for kind in DetectorKind::ALL {
        let trace = model_trace(kind, bounds, &path);
        let script = to_script(&bounds, &path);
        let interval = script.heartbeat_interval;
        let report = run_chaos_script(&script, move |_| ZooDetector::new(kind, interval));
        assert_eq!(report.trace.len(), trace.len());
        for (sample, model_levels) in report.trace.iter().zip(&trace) {
            assert_eq!(sample.levels.len(), model_levels.len());
            for ((proc, runtime_level), model_level) in sample.levels.iter().zip(model_levels) {
                assert!(
                    (runtime_level.value() - model_level).abs() < 1e-9,
                    "{}: divergence at event {} for {proc}: runtime {} vs model {}",
                    kind.name(),
                    sample.event_index,
                    runtime_level.value(),
                    model_level
                );
            }
        }
    }
}

#[test]
fn exhaustive_bounds_subsume_smoke_bounds() {
    // Same shape, longer horizon: anything smoke explores, exhaustive
    // explores too, so a clean exhaustive run implies a clean smoke run.
    let smoke = ModelBounds::smoke();
    let full = ModelBounds::exhaustive();
    assert_eq!(smoke.processes, full.processes);
    assert_eq!(smoke.max_in_flight, full.max_in_flight);
    assert_eq!(smoke.heartbeat_every, full.heartbeat_every);
    assert!(smoke.max_ticks < full.max_ticks);
    assert_eq!(smoke.max_losses, full.max_losses);
    assert_eq!(smoke.max_duplicates, full.max_duplicates);
    assert_eq!(smoke.max_crashes, full.max_crashes);
}
