//! Bounded exhaustive model checking for the paper's algorithms.
//!
//! The simulator (`afd-sim`) and chaos harness (`afd-runtime`) sample the
//! schedule space; this crate *enumerates* it. The heartbeat system —
//! senders pacing Algorithm 4's sequence-numbered frames, a lossy
//! duplicating network, the monitor's freshness filter, a zoo detector,
//! and the full Algorithm 1/2/3 interpreter stack — is modeled as a
//! finite transition system whose alphabet is
//!
//! > tick · deliver(i) · drop(i) · duplicate(i) · crash(p)
//!
//! and every interleaving within [`ModelBounds`] is explored by
//! depth-first search with canonical-state merging
//! ([`afd_core::canonical`]). At **every** transition the checker
//! verifies, as state-local invariants:
//!
//! - **Accruement** (Property 1, §3): after a crash, once nothing is left
//!   in flight, the suspicion level never decreases.
//! - **Upper bound** (Property 2's mechanism, §3): an accepted fresh
//!   heartbeat never *raises* the level.
//! - **Algorithm 1** (§4.1): S-transitions raise `SL_susp` to the
//!   triggering level and are bounded by `SL_susp/ε + 1`.
//! - **Algorithm 2** (§4.2): ε accrual per suspected verdict, reset on
//!   trusted.
//! - **Algorithm 3** (§4.4): the hysteresis implementation matches the
//!   paper's transition spec exactly (strict `>` high, `≤` low).
//! - **QoS orderings** (§4.4): conservative interpreters' suspect sets
//!   are contained in aggressive ones', threshold in hysteresis.
//! - **Algorithm 4** (§5.1): non-fresh frames leave the detector
//!   untouched.
//!
//! A violation comes back as a [`Counterexample`]: the event path from
//! the initial state, shrinkable to a 1-minimal schedule
//! ([`replay::minimize`]) and convertible to a replayable
//! [`afd_runtime::ChaosScript`] ([`replay::to_script`]) so the finding
//! can be confirmed against the real sender/monitor stack.
//!
//! Soundness is demonstrated, not assumed: [`Mutant`] plants one defect
//! at a time (a saw-toothing level, a dropped sequence check, an
//! off-by-one hysteresis, a missing threshold raise, a missing reset),
//! and the test suite asserts every mutant is caught.
//!
//! Everything here is deterministic by construction — `BTreeSet` instead
//! of hash sets (enforced by afd-lint's `determinism-discipline` rule),
//! no clocks, no randomness — so a state count from one run is
//! reproducible anywhere.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod bounds;
pub mod explore;
pub mod mutants;
pub mod replay;
pub mod state;
pub mod zoo;

pub use bounds::ModelBounds;
pub use explore::{explore, find_counterexample, Counterexample, ExploreReport};
pub use mutants::Mutant;
pub use replay::{minimize, model_trace, replay, to_script};
pub use state::{Frame, ModelEvent, ModelState, Property, Violation};
pub use zoo::{DetectorKind, ZooDetector};
