//! Counterexample replay and minimization.
//!
//! A raw counterexample from the explorer is an event path. This module
//! (a) replays paths against a fresh model to validate them, (b) shrinks
//! them by greedy event removal to a locally-minimal violating schedule,
//! and (c) converts them into [`afd_runtime::ChaosScript`]s, so a model
//! finding is a *runnable artifact*: the same schedule can be driven
//! through the real sender/monitor stack via
//! [`afd_runtime::run_chaos_script`].

use afd_runtime::{ChaosScript, ScriptEvent};

use crate::bounds::ModelBounds;
use crate::explore::Counterexample;
use crate::mutants::Mutant;
use crate::state::{ModelEvent, ModelState, Violation};
use crate::zoo::DetectorKind;

/// Replays `path` from the initial state of `(kind, mutant, bounds)`.
/// Returns the violation and the index of the event that fired it, or
/// `None` if the path runs clean (or an event is disabled mid-way, which
/// means the candidate schedule is invalid and cannot witness anything).
pub fn replay(
    kind: DetectorKind,
    mutant: Mutant,
    bounds: ModelBounds,
    path: &[ModelEvent],
) -> Option<(usize, Violation)> {
    let mut state = ModelState::initial(kind, mutant, bounds);
    for (i, &event) in path.iter().enumerate() {
        if !state.is_enabled(event) {
            return None;
        }
        if let Err(violation) = state.apply(event) {
            return Some((i, violation));
        }
    }
    None
}

/// Greedily minimizes a counterexample: repeatedly try dropping each
/// single event; keep any shorter schedule that still violates (the same
/// property is not required — any violation is a finding), truncated at
/// its violation. Loops to a fixed point, so the result is 1-minimal: no
/// single event can be removed without losing the violation.
pub fn minimize(
    kind: DetectorKind,
    mutant: Mutant,
    bounds: ModelBounds,
    cex: &Counterexample,
) -> Counterexample {
    let mut best_path = cex.path.clone();
    let mut best_violation = cex.violation.clone();
    // The explorer's path ends at the violating event; still, normalize by
    // replaying so minimization starts from a validated baseline.
    if let Some((i, v)) = replay(kind, mutant, bounds, &best_path) {
        best_path.truncate(i + 1);
        best_violation = v;
    }
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best_path.len() {
            let mut candidate = best_path.clone();
            candidate.remove(i);
            if let Some((j, v)) = replay(kind, mutant, bounds, &candidate) {
                candidate.truncate(j + 1);
                best_path = candidate;
                best_violation = v;
                shrunk = true;
                // Restart scanning: indices shifted.
                i = 0;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
    Counterexample {
        violation: best_violation,
        path: best_path,
    }
}

/// Converts a model event path into a replayable chaos script. The
/// mapping is one-to-one: model frame indices are in-flight pool indices
/// in the harness too, and both remove frames with stable ordering, so
/// index `i` refers to the same frame on both sides.
pub fn to_script(bounds: &ModelBounds, path: &[ModelEvent]) -> ChaosScript {
    let mut script = ChaosScript::new(bounds.processes);
    script.tick = bounds.tick;
    script.heartbeat_interval = bounds.tick.mul_f64(f64::from(bounds.heartbeat_every));
    script.events = path
        .iter()
        .map(|&e| match e {
            ModelEvent::Tick => ScriptEvent::Tick,
            ModelEvent::Deliver(i) => ScriptEvent::Deliver(i),
            ModelEvent::Drop(i) => ScriptEvent::Drop(i),
            ModelEvent::Duplicate(i) => ScriptEvent::Duplicate(i),
            ModelEvent::Crash(p) => ScriptEvent::Crash(p),
        })
        .collect();
    script
}

/// Replays `path` on a fresh model, sampling every process's suspicion
/// level after each event — the model-side mirror of the trace
/// [`afd_runtime::run_chaos_script`] collects, used by the
/// model-vs-runtime equivalence tests.
///
/// # Panics
///
/// Panics if the path is invalid or violates — trace extraction is for
/// clean schedules.
pub fn model_trace(kind: DetectorKind, bounds: ModelBounds, path: &[ModelEvent]) -> Vec<Vec<f64>> {
    let mut state = ModelState::initial(kind, Mutant::None, bounds);
    let mut trace = Vec::with_capacity(path.len());
    for &event in path {
        assert!(state.is_enabled(event), "trace path disabled at {event:?}");
        state.apply(event).expect("trace path must run clean");
        trace.push(state.levels());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::find_counterexample;
    use crate::state::Property;

    #[test]
    fn replay_reproduces_an_explorer_finding() {
        let bounds = ModelBounds::mutant_hunt();
        let cex = find_counterexample(DetectorKind::Simple, Mutant::HysteresisOffByOne, bounds)
            .expect("mutant must be caught");
        let (i, v) = replay(
            DetectorKind::Simple,
            Mutant::HysteresisOffByOne,
            bounds,
            &cex.path,
        )
        .expect("explorer path must replay to a violation");
        assert_eq!(i, cex.path.len() - 1, "violation fires on the last event");
        assert_eq!(v.property, cex.violation.property);
    }

    #[test]
    fn minimize_only_shrinks_and_still_violates() {
        let bounds = ModelBounds::mutant_hunt();
        let cex = find_counterexample(DetectorKind::Simple, Mutant::HysteresisOffByOne, bounds)
            .expect("mutant must be caught");
        let min = minimize(
            DetectorKind::Simple,
            Mutant::HysteresisOffByOne,
            bounds,
            &cex,
        );
        assert!(min.path.len() <= cex.path.len());
        let (_, v) = replay(
            DetectorKind::Simple,
            Mutant::HysteresisOffByOne,
            bounds,
            &min.path,
        )
        .expect("minimized path must still violate");
        assert_eq!(v.property, min.violation.property);
        // 1-minimality: removing any single event loses the violation.
        for i in 0..min.path.len() {
            let mut candidate = min.path.clone();
            candidate.remove(i);
            assert!(
                replay(
                    DetectorKind::Simple,
                    Mutant::HysteresisOffByOne,
                    bounds,
                    &candidate
                )
                .is_none(),
                "dropping event {i} still violates; not 1-minimal"
            );
        }
    }

    #[test]
    fn script_conversion_is_one_to_one() {
        let bounds = ModelBounds::mutant_hunt();
        let path = [
            ModelEvent::Deliver(0),
            ModelEvent::Tick,
            ModelEvent::Drop(0),
            ModelEvent::Tick,
        ];
        let script = to_script(&bounds, &path);
        assert_eq!(script.senders, bounds.processes);
        assert_eq!(script.events.len(), path.len());
        assert_eq!(script.events[0], ScriptEvent::Deliver(0));
        assert_eq!(script.events[2], ScriptEvent::Drop(0));
        assert_eq!(
            script.heartbeat_interval.as_nanos(),
            bounds.tick.as_nanos() * u64::from(bounds.heartbeat_every)
        );
    }

    #[test]
    fn model_trace_samples_after_every_event() {
        let bounds = ModelBounds::mutant_hunt();
        let path = [ModelEvent::Deliver(0), ModelEvent::Tick, ModelEvent::Tick];
        let trace = model_trace(DetectorKind::Simple, bounds, &path);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].len(), 1, "one process per sample");
        // Simple detector: elapsed/interval == 0 right after delivery at
        // t=0, then grows tick by tick.
        assert!(trace[2][0] > trace[1][0]);
    }

    #[test]
    fn accruement_sawtooth_is_caught_and_minimizes() {
        let bounds = ModelBounds::mutant_hunt();
        let cex = find_counterexample(DetectorKind::Simple, Mutant::NonMonotoneAccrual, bounds)
            .expect("sawtooth mutant must be caught");
        assert_eq!(cex.violation.property, Property::Accruement);
        let min = minimize(
            DetectorKind::Simple,
            Mutant::NonMonotoneAccrual,
            bounds,
            &cex,
        );
        assert!(replay(
            DetectorKind::Simple,
            Mutant::NonMonotoneAccrual,
            bounds,
            &min.path
        )
        .is_some());
    }
}
