//! Seeded mutants: deliberately broken variants of the algorithms under
//! check, used to demonstrate the checker's *soundness* — a checker that
//! cannot flag a planted off-by-one is vacuous no matter how many states
//! it explores.
//!
//! Each mutant is a faithful copy of the real component with exactly one
//! defect, selected by [`Mutant`] when the model's initial state is built.
//! The exhaustive tests assert that the real system passes every property
//! at every reachable state AND that each mutant is caught with a
//! minimized, replayable counterexample.

use afd_core::accrual::AccrualFailureDetector;
use afd_core::binary::{BinaryFailureDetector, Status};
use afd_core::canonical::{CanonicalState, StateDigest};
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::Timestamp;
use afd_core::transform::{AccrualToBinary, BinaryToAccrual, HysteresisInterpreter, Interpreter};
use afd_runtime::seq::{classify, SeqVerdict};

use crate::zoo::ZooDetector;

/// Which planted defect (if any) the model run carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// The real system: every property must hold at every state.
    None,
    /// The detector's level saw-tooths between queries instead of accruing
    /// monotonically — violates Property 1 (Accruement) after a crash.
    NonMonotoneAccrual,
    /// The monitor's Algorithm 4 sequence check is dropped: duplicated and
    /// stale frames reach the detector.
    DroppedSeqCheck,
    /// Algorithm 3 hysteresis with off-by-one comparisons: S-transition at
    /// `level ≥ T` instead of `level > T`, T-transition at `level < T₀`
    /// instead of `level ≤ T₀`.
    HysteresisOffByOne,
    /// Algorithm 1 without the `SL_susp := sl` raise on S-transitions —
    /// wrong suspicions never cease, breaking Lemma 8.
    Alg1NoThresholdRaise,
    /// Algorithm 2 without the reset-to-zero on trusted verdicts —
    /// breaking Lemma 11's bound for correct processes.
    Alg2NoReset,
}

impl Mutant {
    /// Every seeded mutant (excluding [`Mutant::None`]).
    pub const ALL: [Mutant; 5] = [
        Mutant::NonMonotoneAccrual,
        Mutant::DroppedSeqCheck,
        Mutant::HysteresisOffByOne,
        Mutant::Alg1NoThresholdRaise,
        Mutant::Alg2NoReset,
    ];

    /// Short display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::None => "none",
            Mutant::NonMonotoneAccrual => "non-monotone-accrual",
            Mutant::DroppedSeqCheck => "dropped-seq-check",
            Mutant::HysteresisOffByOne => "hysteresis-off-by-one",
            Mutant::Alg1NoThresholdRaise => "alg1-no-threshold-raise",
            Mutant::Alg2NoReset => "alg2-no-reset",
        }
    }
}

/// The detector under test: the real zoo detector, or the saw-tooth
/// mutant whose reported level alternates between the true value and a
/// quarter of it.
#[derive(Debug, Clone)]
pub enum DetectorSut {
    /// Unmodified zoo detector.
    Real(ZooDetector),
    /// Saw-tooth level: every other query reports `level / 4`.
    Sawtooth {
        /// The real detector underneath.
        inner: ZooDetector,
        /// Queries answered so far (drives the parity).
        queries: u64,
    },
}

impl DetectorSut {
    /// Builds the real or mutated detector.
    pub fn new(detector: ZooDetector, mutant: Mutant) -> Self {
        match mutant {
            Mutant::NonMonotoneAccrual => DetectorSut::Sawtooth {
                inner: detector,
                queries: 0,
            },
            _ => DetectorSut::Real(detector),
        }
    }

    /// Feeds a heartbeat to the underlying detector.
    pub fn record_heartbeat(&mut self, arrival: Timestamp) {
        match self {
            DetectorSut::Real(d) => d.record_heartbeat(arrival),
            DetectorSut::Sawtooth { inner, .. } => inner.record_heartbeat(arrival),
        }
    }

    /// The suspicion level the system under test reports.
    pub fn suspicion_level(&mut self, now: Timestamp) -> SuspicionLevel {
        match self {
            DetectorSut::Real(d) => d.suspicion_level(now),
            DetectorSut::Sawtooth { inner, queries } => {
                let level = inner.suspicion_level(now);
                *queries += 1;
                if *queries % 2 == 1 {
                    level
                } else {
                    SuspicionLevel::clamped(level.value() * 0.25)
                }
            }
        }
    }

    /// Digest of the *underlying* detector only, excluding mutant
    /// bookkeeping — this is what the Algorithm 4 safety check compares
    /// before and after a non-fresh delivery.
    pub fn core_digest(&self) -> u128 {
        match self {
            DetectorSut::Real(d) => afd_core::canonical::digest_of(d),
            DetectorSut::Sawtooth { inner, .. } => afd_core::canonical::digest_of(inner),
        }
    }
}

impl CanonicalState for DetectorSut {
    fn canonical_state(&self, digest: &mut StateDigest) {
        match self {
            DetectorSut::Real(d) => {
                digest.push_u64(0);
                d.canonical_state(digest);
            }
            DetectorSut::Sawtooth { inner, queries } => {
                digest.push_u64(1);
                digest.push_u64(*queries);
                inner.canonical_state(digest);
            }
        }
    }
}

/// Algorithm 1 without the threshold raise: identical to
/// [`AccrualToBinary`] except that an S-transition leaves `SL_susp`
/// untouched.
#[derive(Debug, Clone)]
pub struct NoRaiseAlg1 {
    epsilon: f64,
    status: Status,
    sl_susp: Option<SuspicionLevel>,
    run_length: u64,
    l_trust: u64,
    sl_prev: Option<SuspicionLevel>,
    s_transitions: u64,
}

impl NoRaiseAlg1 {
    fn new(epsilon: f64) -> Self {
        NoRaiseAlg1 {
            epsilon,
            status: Status::Trusted,
            sl_susp: None,
            run_length: 1,
            l_trust: 1,
            sl_prev: None,
            s_transitions: 0,
        }
    }

    fn observe(&mut self, level: SuspicionLevel) -> Status {
        let sl = level.quantize(self.epsilon);
        let sl_prev = *self.sl_prev.get_or_insert(sl);
        let sl_susp = *self.sl_susp.get_or_insert(sl);
        if sl != sl_prev {
            self.run_length = 0;
        }
        self.run_length += 1;
        if sl > sl_susp && self.status == Status::Trusted {
            self.status = Status::Suspected;
            // BUG (the mutation): `self.sl_susp = Some(sl)` is missing.
            self.s_transitions += 1;
        }
        if (sl < sl_prev || self.run_length > self.l_trust) && self.status == Status::Suspected {
            self.status = Status::Trusted;
            self.l_trust += 1;
        }
        self.sl_prev = Some(sl);
        self.status
    }
}

/// Algorithm 1 under test: real or the no-raise mutant.
#[derive(Debug, Clone)]
pub enum Alg1Sut {
    /// The real [`AccrualToBinary`].
    Real(AccrualToBinary),
    /// The no-threshold-raise mutant.
    NoRaise(NoRaiseAlg1),
}

impl Alg1Sut {
    /// Builds the variant `mutant` selects, with resolution `epsilon`.
    pub fn new(epsilon: f64, mutant: Mutant) -> Self {
        match mutant {
            Mutant::Alg1NoThresholdRaise => Alg1Sut::NoRaise(NoRaiseAlg1::new(epsilon)),
            _ => Alg1Sut::Real(AccrualToBinary::new(epsilon)),
        }
    }

    /// One observation step.
    pub fn observe(&mut self, at: Timestamp, level: SuspicionLevel) -> Status {
        match self {
            Alg1Sut::Real(a) => a.observe(at, level),
            Alg1Sut::NoRaise(a) => a.observe(level),
        }
    }

    /// The resolution ε.
    pub fn epsilon(&self) -> f64 {
        match self {
            Alg1Sut::Real(a) => a.epsilon(),
            Alg1Sut::NoRaise(a) => a.epsilon,
        }
    }

    /// S-transitions so far.
    pub fn s_transitions(&self) -> u64 {
        match self {
            Alg1Sut::Real(a) => a.s_transitions(),
            Alg1Sut::NoRaise(a) => a.s_transitions,
        }
    }

    /// The dynamic threshold `SL_susp`.
    pub fn suspicion_threshold(&self) -> Option<SuspicionLevel> {
        match self {
            Alg1Sut::Real(a) => a.suspicion_threshold(),
            Alg1Sut::NoRaise(a) => a.sl_susp,
        }
    }
}

impl CanonicalState for Alg1Sut {
    fn canonical_state(&self, digest: &mut StateDigest) {
        match self {
            Alg1Sut::Real(a) => {
                digest.push_u64(0);
                a.canonical_state(digest);
            }
            Alg1Sut::NoRaise(a) => {
                digest.push_u64(1);
                digest.push_f64(a.epsilon);
                a.status.canonical_state(digest);
                a.sl_susp.canonical_state(digest);
                digest.push_u64(a.run_length);
                digest.push_u64(a.l_trust);
                a.sl_prev.canonical_state(digest);
                digest.push_u64(a.s_transitions);
            }
        }
    }
}

/// A binary "detector" whose verdict is set from outside: the adapter
/// that lets the model feed Algorithm 1's output into the real
/// [`BinaryToAccrual`] (Algorithm 2) one verdict at a time.
#[derive(Debug, Clone)]
pub struct StatusFeed {
    /// The verdict the next query returns.
    pub status: Status,
}

impl BinaryFailureDetector for StatusFeed {
    fn query(&mut self, _now: Timestamp) -> Status {
        self.status
    }
}

impl CanonicalState for StatusFeed {
    fn canonical_state(&self, digest: &mut StateDigest) {
        self.status.canonical_state(digest);
    }
}

/// Algorithm 2 under test: the real transformer, or the no-reset mutant
/// that keeps accruing after a trusted verdict.
#[derive(Debug, Clone)]
pub enum Alg2Sut {
    /// The real [`BinaryToAccrual`] over a [`StatusFeed`] oracle.
    Real(BinaryToAccrual<StatusFeed>),
    /// The no-reset mutant: `level` only ever grows.
    NoReset {
        /// ε accrued per suspected verdict.
        epsilon: f64,
        /// Current level.
        level: f64,
    },
}

impl Alg2Sut {
    /// Builds the variant `mutant` selects.
    pub fn new(epsilon: f64, mutant: Mutant) -> Self {
        match mutant {
            Mutant::Alg2NoReset => Alg2Sut::NoReset {
                epsilon,
                level: 0.0,
            },
            _ => Alg2Sut::Real(BinaryToAccrual::new(
                StatusFeed {
                    status: Status::Trusted,
                },
                epsilon,
            )),
        }
    }

    /// Feeds one binary verdict, returning the accrued level.
    pub fn observe(&mut self, status: Status, at: Timestamp) -> f64 {
        match self {
            Alg2Sut::Real(a) => {
                a.binary_mut().status = status;
                a.suspicion_level(at).value()
            }
            Alg2Sut::NoReset { epsilon, level } => {
                if status.is_suspected() {
                    *level += *epsilon;
                }
                // BUG (the mutation): the trusted branch's reset to zero
                // is missing.
                *level
            }
        }
    }

    /// The current accrued level.
    pub fn level(&self) -> f64 {
        match self {
            Alg2Sut::Real(a) => a.level().value(),
            Alg2Sut::NoReset { level, .. } => *level,
        }
    }
}

impl CanonicalState for Alg2Sut {
    fn canonical_state(&self, digest: &mut StateDigest) {
        match self {
            Alg2Sut::Real(a) => {
                digest.push_u64(0);
                a.canonical_state(digest);
            }
            Alg2Sut::NoReset { epsilon, level } => {
                digest.push_u64(1);
                digest.push_f64(*epsilon);
                digest.push_f64(*level);
            }
        }
    }
}

/// Algorithm 3 under test: the real hysteresis interpreter, or the
/// off-by-one mutant.
#[derive(Debug, Clone)]
pub enum HystSut {
    /// The real [`HysteresisInterpreter`] with constant thresholds.
    Real(HysteresisInterpreter<SuspicionLevel, SuspicionLevel>),
    /// Off-by-one comparisons: `≥ high` to suspect, `< low` to trust.
    OffByOne {
        /// S-transition threshold.
        high: f64,
        /// T-transition threshold.
        low: f64,
        /// Current status.
        status: Status,
    },
}

impl HystSut {
    /// Builds the variant `mutant` selects with thresholds `(high, low)`.
    pub fn new(high: f64, low: f64, mutant: Mutant) -> Self {
        match mutant {
            Mutant::HysteresisOffByOne => HystSut::OffByOne {
                high,
                low,
                status: Status::Trusted,
            },
            _ => HystSut::Real(HysteresisInterpreter::new(
                SuspicionLevel::clamped(high),
                SuspicionLevel::clamped(low),
            )),
        }
    }

    /// The current status.
    pub fn status(&self) -> Status {
        match self {
            HystSut::Real(h) => h.status(),
            HystSut::OffByOne { status, .. } => *status,
        }
    }

    /// The constant `(high, low)` threshold pair.
    pub fn thresholds(&self) -> (f64, f64) {
        match self {
            HystSut::Real(h) => (h.high_fn().value(), h.low_fn().value()),
            HystSut::OffByOne { high, low, .. } => (*high, *low),
        }
    }

    /// One observation step.
    pub fn observe(&mut self, at: Timestamp, level: SuspicionLevel) -> Status {
        match self {
            HystSut::Real(h) => h.observe(at, level),
            HystSut::OffByOne { high, low, status } => {
                // BUG (the mutation): Algorithm 3 requires strict `>` for
                // the S-transition and `≤` for the T-transition.
                match *status {
                    Status::Trusted if level.value() >= *high => *status = Status::Suspected,
                    Status::Suspected if level.value() < *low => *status = Status::Trusted,
                    _ => {}
                }
                *status
            }
        }
    }
}

impl CanonicalState for HystSut {
    fn canonical_state(&self, digest: &mut StateDigest) {
        match self {
            HystSut::Real(h) => {
                digest.push_u64(0);
                h.canonical_state(digest);
            }
            HystSut::OffByOne { high, low, status } => {
                digest.push_u64(1);
                digest.push_f64(*high);
                digest.push_f64(*low);
                status.canonical_state(digest);
            }
        }
    }
}

/// The Algorithm 4 freshness filter under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqSut {
    /// The real serial-number filter ([`afd_runtime::seq::classify`]).
    Real,
    /// The dropped-check mutant: every frame counts as fresh.
    AlwaysFresh,
}

impl SeqSut {
    /// Builds the variant `mutant` selects.
    pub fn new(mutant: Mutant) -> Self {
        match mutant {
            Mutant::DroppedSeqCheck => SeqSut::AlwaysFresh,
            _ => SeqSut::Real,
        }
    }

    /// Does the monitor under test accept a frame with `seq`, given the
    /// highest sequence accepted so far? Mirrors `RuntimeMonitor::accept`:
    /// the first frame from a sender is always accepted.
    pub fn accepts(self, seq: u64, highest: Option<u64>) -> bool {
        match self {
            SeqSut::AlwaysFresh => true,
            SeqSut::Real => match highest {
                None => true,
                Some(h) => classify(seq, h) == SeqVerdict::Fresh,
            },
        }
    }
}

/// The ground-truth freshness verdict, independent of the system under
/// test — what the checker compares mutated behavior against.
pub fn really_fresh(seq: u64, highest: Option<u64>) -> bool {
    match highest {
        None => true,
        Some(h) => classify(seq, h) == SeqVerdict::Fresh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sawtooth_alternates() {
        let zoo = ZooDetector::new(
            crate::zoo::DetectorKind::Simple,
            afd_core::time::Duration::from_secs(1),
        );
        let mut sut = DetectorSut::new(zoo, Mutant::NonMonotoneAccrual);
        let t = Timestamp::from_secs(4);
        let a = sut.suspicion_level(t).value();
        let b = sut.suspicion_level(t).value();
        assert_eq!(a, 4.0);
        assert_eq!(b, 1.0, "every other query reports a quarter");
    }

    #[test]
    fn always_fresh_accepts_duplicates() {
        assert!(!SeqSut::Real.accepts(5, Some(5)));
        assert!(SeqSut::AlwaysFresh.accepts(5, Some(5)));
        assert!(SeqSut::Real.accepts(6, Some(5)));
        assert!(really_fresh(1, None));
        assert!(!really_fresh(4, Some(5)));
    }

    #[test]
    fn off_by_one_differs_exactly_at_the_boundary() {
        let mut real = HystSut::new(2.0, 1.0, Mutant::None);
        let mut bug = HystSut::new(2.0, 1.0, Mutant::HysteresisOffByOne);
        let t = Timestamp::ZERO;
        let at_high = SuspicionLevel::clamped(2.0);
        assert_eq!(real.observe(t, at_high), Status::Trusted);
        assert_eq!(bug.observe(t, at_high), Status::Suspected);
    }

    #[test]
    fn no_reset_keeps_accruing() {
        let mut real = Alg2Sut::new(0.5, Mutant::None);
        let mut bug = Alg2Sut::new(0.5, Mutant::Alg2NoReset);
        let t = Timestamp::ZERO;
        for sut in [&mut real, &mut bug] {
            sut.observe(Status::Suspected, t);
            sut.observe(Status::Suspected, t);
        }
        assert_eq!(real.observe(Status::Trusted, t), 0.0);
        assert_eq!(bug.observe(Status::Trusted, t), 1.0);
    }

    #[test]
    fn no_raise_leaves_threshold_at_initial_level() {
        let mut real = Alg1Sut::new(1.0, Mutant::None);
        let mut bug = Alg1Sut::new(1.0, Mutant::Alg1NoThresholdRaise);
        let t = Timestamp::ZERO;
        for sut in [&mut real, &mut bug] {
            sut.observe(t, SuspicionLevel::ZERO);
            sut.observe(t, SuspicionLevel::clamped(3.0));
        }
        assert_eq!(
            real.suspicion_threshold(),
            Some(SuspicionLevel::clamped(3.0))
        );
        assert_eq!(bug.suspicion_threshold(), Some(SuspicionLevel::ZERO));
    }
}
