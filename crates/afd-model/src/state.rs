//! The transition system: model states, the event alphabet, the enabled
//! relation, and the transition function with the paper's properties
//! checked on every edge.
//!
//! # Soundness under canonical-state merging
//!
//! The explorer prunes a state whose canonical digest was already seen.
//! That is only sound if every property is either (a) an invariant of the
//! transition `(state, event, state′)` alone, or (b) a predicate over
//! aggregates that *live in the canonical state* (transition counters,
//! last observed levels, quiet-since-crash flags). Nothing here consults
//! the path taken to reach a state, so merging two histories that agree
//! on the digest can never hide a violation: any violating continuation
//! of one is a violating continuation of the other.

use afd_core::binary::Status;
use afd_core::canonical::{CanonicalState, StateDigest};
use afd_core::process::ProcessId;
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::Timestamp;
use afd_core::transform::{Interpreter, ThresholdInterpreter};

use crate::bounds::ModelBounds;
use crate::mutants::{really_fresh, Alg1Sut, Alg2Sut, DetectorSut, HystSut, Mutant, SeqSut};
use crate::zoo::{DetectorKind, ZooDetector};

/// One event of the model's alphabet. Mirrors
/// [`afd_runtime::ScriptEvent`] one-to-one (minus `Recover`, which the
/// bounded model does not explore), so a model path converts directly
/// into a replayable script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelEvent {
    /// Advance virtual time one tick; due heartbeats are emitted and
    /// every process is queried.
    Tick,
    /// Deliver in-flight frame `i` to the monitor.
    Deliver(usize),
    /// Lose in-flight frame `i` (spends loss budget).
    Drop(usize),
    /// Duplicate in-flight frame `i` (spends duplication budget).
    Duplicate(usize),
    /// Permanently crash a sender (spends crash budget).
    Crash(ProcessId),
}

/// Which checked property a violation is against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// Property 1 (§3): after a crash, with no heartbeat left in flight,
    /// the suspicion level must not decrease.
    Accruement,
    /// Upper-bound discipline (§3, Property 2's mechanism): an accepted
    /// fresh heartbeat must not *increase* the suspicion level.
    UpperBoundReset,
    /// Algorithm 1 (§4.1): an S-transition must raise `SL_susp` to the
    /// triggering level, and S-transitions are bounded by `SL_susp/ε + 1`.
    Alg1Threshold,
    /// Algorithm 2 (§4.2): suspected verdicts accrue exactly ε, trusted
    /// verdicts reset to zero.
    Alg2Accrual,
    /// Algorithm 3 (§4.4): the hysteresis interpreter must match the
    /// paper's transition spec exactly (strict `>` high, `≤` low).
    HysteresisSpec,
    /// §4.4 ordering theorems: conservative interpreters' suspect sets are
    /// contained in aggressive ones'.
    QosOrdering,
    /// Algorithm 4 (§5.1): a non-fresh frame must leave the detector
    /// untouched.
    Alg4Freshness,
}

impl Property {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Property::Accruement => "accruement",
            Property::UpperBoundReset => "upper-bound-reset",
            Property::Alg1Threshold => "alg1-threshold",
            Property::Alg2Accrual => "alg2-accrual",
            Property::HysteresisSpec => "hysteresis-spec",
            Property::QosOrdering => "qos-ordering",
            Property::Alg4Freshness => "alg4-freshness",
        }
    }
}

/// A property violation found on a transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The property violated.
    pub property: Property,
    /// The process it concerns.
    pub process: ProcessId,
    /// Model tick at which it fired.
    pub tick: u32,
    /// Human-readable evidence.
    pub detail: String,
}

/// One in-flight heartbeat frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Originating sender.
    pub sender: ProcessId,
    /// Its sequence number (Algorithm 4's monotone counter).
    pub seq: u64,
    /// Tick at which it was emitted.
    pub emitted_tick: u32,
}

/// Per-process state: the sender's pacing, the monitor's freshness
/// watermark, the detector under test, and the full interpreter stack
/// whose cross-checks encode the paper's theorems.
#[derive(Debug, Clone)]
struct ProcState {
    id: ProcessId,
    crashed: bool,
    /// Next tick a heartbeat is due (SenderCore: first due at start).
    next_due: u32,
    /// Last emitted sequence number (SenderCore pre-increments: first
    /// frame carries 1).
    last_seq: u64,
    /// Monitor's highest accepted sequence (None before the first).
    highest_seq: Option<u64>,
    detector: DetectorSut,
    alg1: Alg1Sut,
    alg2: Alg2Sut,
    hyst: HystSut,
    thr_t1: ThresholdInterpreter<SuspicionLevel>,
    thr_t2: ThresholdInterpreter<SuspicionLevel>,
    hyst_t1: HystSut,
    hyst_t2: HystSut,
    /// Level at the most recent query (state-resident aggregate: the
    /// Accruement check is a transition invariant, not a path property).
    last_level: f64,
    /// Was the process crashed-and-quiet at the previous query?
    prev_quiet: bool,
}

impl CanonicalState for ProcState {
    fn canonical_state(&self, digest: &mut StateDigest) {
        digest.push_usize(self.id.index());
        digest.push_bool(self.crashed);
        digest.push_u64(u64::from(self.next_due));
        digest.push_u64(self.last_seq);
        digest.push_opt_u64(self.highest_seq);
        self.detector.canonical_state(digest);
        self.alg1.canonical_state(digest);
        self.alg2.canonical_state(digest);
        self.hyst.canonical_state(digest);
        self.thr_t1.canonical_state(digest);
        self.thr_t2.canonical_state(digest);
        self.hyst_t1.canonical_state(digest);
        self.hyst_t2.canonical_state(digest);
        digest.push_f64(self.last_level);
        digest.push_bool(self.prev_quiet);
    }
}

/// A full model state.
#[derive(Debug, Clone)]
pub struct ModelState {
    bounds: ModelBounds,
    kind: DetectorKind,
    mutant: Mutant,
    seq_filter: SeqSut,
    tick: u32,
    frames: Vec<Frame>,
    procs: Vec<ProcState>,
    losses_used: u32,
    dups_used: u32,
    crashes_used: u32,
    deferrals_used: u32,
}

impl ModelState {
    /// The initial state: every sender emits its t = 0 heartbeat into the
    /// in-flight pool (SenderCore's first frame is due at start), and
    /// every process is queried once to seed the interpreter stack.
    pub fn initial(kind: DetectorKind, mutant: Mutant, bounds: ModelBounds) -> Self {
        let interval = bounds.tick.mul_f64(f64::from(bounds.heartbeat_every));
        let t1 = kind.threshold();
        let t2 = kind.threshold_high();
        let t0 = kind.threshold_low();
        let epsilon = kind.model_epsilon();
        let procs = (1..=bounds.processes)
            .map(|i| ProcState {
                id: ProcessId::new(i),
                crashed: false,
                next_due: 0,
                last_seq: 0,
                highest_seq: None,
                detector: DetectorSut::new(ZooDetector::new(kind, interval), mutant),
                alg1: Alg1Sut::new(epsilon, mutant),
                alg2: Alg2Sut::new(epsilon, mutant),
                hyst: HystSut::new(t1, t0, mutant),
                thr_t1: ThresholdInterpreter::new(SuspicionLevel::clamped(t1)),
                thr_t2: ThresholdInterpreter::new(SuspicionLevel::clamped(t2)),
                hyst_t1: HystSut::new(t1, t0, Mutant::None),
                hyst_t2: HystSut::new(t2, t0, Mutant::None),
                last_level: 0.0,
                prev_quiet: false,
            })
            .collect();
        let mut state = ModelState {
            bounds,
            kind,
            mutant,
            seq_filter: SeqSut::new(mutant),
            tick: 0,
            frames: Vec::new(),
            procs,
            losses_used: 0,
            dups_used: 0,
            crashes_used: 0,
            deferrals_used: 0,
        };
        state.emit_due();
        // Seed the interpreter stack at t = 0. The real system cannot
        // violate anything this early; a mutant conceivably could, but the
        // explorer only checks transitions, so fold seeding violations
        // into the first Tick instead of erroring from a constructor.
        for i in 0..state.procs.len() {
            let _ = state.query_checks(i);
        }
        state
    }

    /// The virtual time of the current tick.
    pub fn time(&self) -> Timestamp {
        Timestamp::from_nanos(u64::from(self.tick) * self.bounds.tick.as_nanos())
    }

    /// Current tick index.
    pub fn tick(&self) -> u32 {
        self.tick
    }

    /// The in-flight pool (frames awaiting delivery, loss, or aging).
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The exploration bounds this state was built with.
    pub fn bounds(&self) -> &ModelBounds {
        &self.bounds
    }

    /// The detector kind under exploration.
    pub fn kind(&self) -> DetectorKind {
        self.kind
    }

    /// The planted mutant (or [`Mutant::None`] for the real system).
    pub fn mutant(&self) -> Mutant {
        self.mutant
    }

    /// Suspicion levels of every process at the current time, in id
    /// order — the model-side counterpart of the replay harness's
    /// per-event samples. Queries mutate mutant bookkeeping, so this is
    /// only used by the replay-trace path, never by the explorer.
    pub fn levels(&mut self) -> Vec<f64> {
        let t = self.time();
        self.procs
            .iter_mut()
            .map(|p| p.detector.suspicion_level(t).value())
            .collect()
    }

    fn emit_due(&mut self) {
        let tick = self.tick;
        for p in &mut self.procs {
            if !p.crashed && p.next_due <= tick {
                while p.next_due <= tick {
                    p.next_due += self.bounds.heartbeat_every;
                }
                p.last_seq += 1;
                self.frames.push(Frame {
                    sender: p.id,
                    seq: p.last_seq,
                    emitted_tick: tick,
                });
            }
        }
    }

    fn due_emissions_after_tick(&self) -> usize {
        let next = self.tick + 1;
        self.procs
            .iter()
            .filter(|p| !p.crashed && p.next_due <= next)
            .count()
    }

    fn oldest_frame_age(&self) -> u32 {
        self.frames
            .iter()
            .map(|f| self.tick - f.emitted_tick)
            .max()
            .unwrap_or(0)
    }

    /// Is `event` enabled in this state?
    pub fn is_enabled(&self, event: ModelEvent) -> bool {
        match event {
            ModelEvent::Tick => {
                self.tick < self.bounds.max_ticks
                    && (self.frames.is_empty() || self.deferrals_used < self.bounds.max_deferrals)
                    && self.oldest_frame_age() < self.bounds.max_frame_age
                    && self.frames.len() + self.due_emissions_after_tick()
                        <= self.bounds.max_in_flight
            }
            ModelEvent::Deliver(i) => i < self.frames.len(),
            ModelEvent::Drop(i) => {
                i < self.frames.len() && self.losses_used < self.bounds.max_losses
            }
            ModelEvent::Duplicate(i) => {
                i < self.frames.len()
                    && self.dups_used < self.bounds.max_duplicates
                    && self.frames.len() < self.bounds.max_in_flight
            }
            ModelEvent::Crash(p) => {
                self.crashes_used < self.bounds.max_crashes
                    && self.procs.iter().any(|proc| proc.id == p && !proc.crashed)
            }
        }
    }

    /// Every enabled event, in a fixed deterministic order.
    pub fn enabled_events(&self) -> Vec<ModelEvent> {
        let mut events = Vec::new();
        for i in 0..self.frames.len() {
            events.push(ModelEvent::Deliver(i));
        }
        if self.is_enabled(ModelEvent::Tick) {
            events.push(ModelEvent::Tick);
        }
        if self.losses_used < self.bounds.max_losses {
            for i in 0..self.frames.len() {
                events.push(ModelEvent::Drop(i));
            }
        }
        if self.dups_used < self.bounds.max_duplicates
            && self.frames.len() < self.bounds.max_in_flight
        {
            for i in 0..self.frames.len() {
                events.push(ModelEvent::Duplicate(i));
            }
        }
        if self.crashes_used < self.bounds.max_crashes {
            for p in &self.procs {
                if !p.crashed {
                    events.push(ModelEvent::Crash(p.id));
                }
            }
        }
        events
    }

    /// Applies `event` (which must be enabled), checking every property
    /// the transition touches. Returns the violation if one fired.
    pub fn apply(&mut self, event: ModelEvent) -> Result<(), Violation> {
        debug_assert!(self.is_enabled(event), "apply of a disabled event");
        match event {
            ModelEvent::Tick => {
                if !self.frames.is_empty() {
                    self.deferrals_used += 1;
                }
                self.tick += 1;
                self.emit_due();
                for i in 0..self.procs.len() {
                    self.query_checks(i)?;
                }
                Ok(())
            }
            ModelEvent::Deliver(i) => {
                let frame = self.frames.remove(i);
                self.deliver_checks(frame)
            }
            ModelEvent::Drop(i) => {
                self.frames.remove(i);
                self.losses_used += 1;
                Ok(())
            }
            ModelEvent::Duplicate(i) => {
                let copy = self.frames[i];
                self.frames.push(copy);
                self.dups_used += 1;
                Ok(())
            }
            ModelEvent::Crash(p) => {
                self.crashes_used += 1;
                for proc in &mut self.procs {
                    if proc.id == p {
                        proc.crashed = true;
                    }
                }
                Ok(())
            }
        }
    }

    /// Delivery of one frame: the Algorithm 4 freshness check and the
    /// accepted-heartbeat level discipline.
    fn deliver_checks(&mut self, frame: Frame) -> Result<(), Violation> {
        let t = self.time();
        let tick = self.tick;
        let seq_filter = self.seq_filter;
        let p = self
            .procs
            .iter_mut()
            .find(|p| p.id == frame.sender)
            .expect("frame from unknown sender");

        let fresh = really_fresh(frame.seq, p.highest_seq);
        let accepts = seq_filter.accepts(frame.seq, p.highest_seq);
        let pre_digest = p.detector.core_digest();
        let pre_level = p.detector.suspicion_level(t).value();
        if accepts {
            p.detector.record_heartbeat(t);
            // Mirrors `RuntimeMonitor::accept`: the watermark is set to
            // the accepted frame's sequence unconditionally.
            p.highest_seq = Some(frame.seq);
        }
        let post_digest = p.detector.core_digest();

        if !fresh && post_digest != pre_digest {
            return Err(Violation {
                property: Property::Alg4Freshness,
                process: frame.sender,
                tick,
                detail: format!(
                    "non-fresh frame seq={} (highest {:?}) mutated the detector",
                    frame.seq, p.highest_seq
                ),
            });
        }
        if accepts && fresh {
            // Property 2's mechanism: a fresh heartbeat drives the level
            // decisively below every interpretation threshold. Detectors
            // with bootstrap priors (adaptive) legitimately report a tiny
            // positive level at elapsed 0, so an increase only counts when
            // it also clears the floor (half the lowest threshold T₀).
            let floor = self.kind.threshold_low() * 0.5;
            let post_level = p.detector.suspicion_level(t).value();
            if post_level > pre_level + 1e-9 && post_level > floor {
                return Err(Violation {
                    property: Property::UpperBoundReset,
                    process: frame.sender,
                    tick,
                    detail: format!(
                        "accepted heartbeat left the level high: {pre_level} -> {post_level} (floor {floor})"
                    ),
                });
            }
        }
        Ok(())
    }

    /// The per-query property battery: Accruement, Algorithms 1–3, and
    /// the §4.4 orderings, all as transition invariants.
    fn query_checks(&mut self, index: usize) -> Result<(), Violation> {
        let t = self.time();
        let tick = self.tick;
        let quiet = {
            let p = &self.procs[index];
            p.crashed && !self.frames.iter().any(|f| f.sender == p.id)
        };
        let p = &mut self.procs[index];
        let level = p.detector.suspicion_level(t);
        let lv = level.value();

        // Property 1 (Accruement regime): crashed and quiet for two
        // consecutive queries means the level may not decrease.
        if quiet && p.prev_quiet && lv < p.last_level - 1e-12 {
            return Err(Violation {
                property: Property::Accruement,
                process: p.id,
                tick,
                detail: format!(
                    "level decreased after crash with nothing in flight: {} -> {lv}",
                    p.last_level
                ),
            });
        }
        p.prev_quiet = quiet;
        p.last_level = lv;

        // Algorithm 1: S-transitions must raise SL_susp to the level, and
        // their count is bounded by SL_susp/ε + 1 (Lemma 8's mechanism).
        let eps = p.alg1.epsilon();
        let pre_s = p.alg1.s_transitions();
        let status1 = p.alg1.observe(t, level);
        if p.alg1.s_transitions() > pre_s {
            let threshold = p
                .alg1
                .suspicion_threshold()
                .expect("threshold initialized by first observation");
            let expect = level.quantize(eps);
            if (threshold.value() - expect.value()).abs() > 1e-12 {
                return Err(Violation {
                    property: Property::Alg1Threshold,
                    process: p.id,
                    tick,
                    detail: format!(
                        "S-transition left SL_susp at {} instead of {}",
                        threshold.value(),
                        expect.value()
                    ),
                });
            }
        }
        if let Some(threshold) = p.alg1.suspicion_threshold() {
            let bound = threshold.value() / eps + 1.5;
            if p.alg1.s_transitions() as f64 > bound {
                return Err(Violation {
                    property: Property::Alg1Threshold,
                    process: p.id,
                    tick,
                    detail: format!(
                        "{} S-transitions exceeds SL_susp/ε + 1 = {bound}",
                        p.alg1.s_transitions()
                    ),
                });
            }
        }

        // Algorithm 2 on Algorithm 1's verdicts: ε per suspected query,
        // reset on trusted (the round-trip of Theorems 9 + 12).
        let prev2 = p.alg2.level();
        let lvl2 = p.alg2.observe(status1, t);
        let expect2 = if status1.is_suspected() {
            prev2 + eps
        } else {
            0.0
        };
        if (lvl2 - expect2).abs() > 1e-9 {
            return Err(Violation {
                property: Property::Alg2Accrual,
                process: p.id,
                tick,
                detail: format!("alg2 level {lvl2} after {status1:?} verdict, expected {expect2}"),
            });
        }

        // Algorithm 3: the implementation must match the paper's
        // transition spec exactly.
        let prev_status = p.hyst.status();
        let (high, low) = p.hyst.thresholds();
        let got = p.hyst.observe(t, level);
        let expected = match prev_status {
            Status::Trusted if lv > high => Status::Suspected,
            Status::Suspected if lv <= low => Status::Trusted,
            other => other,
        };
        if got != expected {
            return Err(Violation {
                property: Property::HysteresisSpec,
                process: p.id,
                tick,
                detail: format!(
                    "hysteresis({high}, {low}) reported {got:?} from {prev_status:?} at level {lv}, spec says {expected:?}"
                ),
            });
        }

        // §4.4 orderings: T₂ > T₁ means the conservative interpreter's
        // suspect set is contained in the aggressive one's; the plain
        // threshold's suspicions are contained in the hysteresis ones.
        let s1 = p.thr_t1.observe(t, level);
        let s2 = p.thr_t2.observe(t, level);
        let h1 = p.hyst_t1.observe(t, level);
        let h2 = p.hyst_t2.observe(t, level);
        let ordering_broken = (s2.is_suspected() && !s1.is_suspected())
            || (h2.is_suspected() && !h1.is_suspected())
            || (s1.is_suspected() && !h1.is_suspected());
        if ordering_broken {
            return Err(Violation {
                property: Property::QosOrdering,
                process: p.id,
                tick,
                detail: format!(
                    "suspect-set containment broke at level {lv}: thr {s1:?}/{s2:?}, hyst {h1:?}/{h2:?}"
                ),
            });
        }
        Ok(())
    }

    /// The canonical digest the explorer merges on.
    pub fn digest(&self) -> u128 {
        let mut d = StateDigest::new();
        d.push_u64(u64::from(self.tick));
        d.push_u64(u64::from(self.losses_used));
        d.push_u64(u64::from(self.dups_used));
        d.push_u64(u64::from(self.crashes_used));
        d.push_u64(u64::from(self.deferrals_used));
        d.push_usize(self.frames.len());
        for f in &self.frames {
            d.push_usize(f.sender.index());
            d.push_u64(f.seq);
            d.push_u64(u64::from(f.emitted_tick));
        }
        for p in &self.procs {
            p.canonical_state(&mut d);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afd_core::time::Duration;

    fn state() -> ModelState {
        ModelState::initial(
            DetectorKind::Simple,
            Mutant::None,
            ModelBounds::mutant_hunt(),
        )
    }

    #[test]
    fn initial_state_has_the_first_heartbeat_in_flight() {
        let s = state();
        assert_eq!(s.frames().len(), 1);
        assert_eq!(s.frames()[0].seq, 1);
        assert_eq!(s.frames()[0].emitted_tick, 0);
    }

    #[test]
    fn deliver_then_ticks_accrue_on_the_real_system() {
        let mut s = state();
        s.apply(ModelEvent::Deliver(0)).unwrap();
        s.apply(ModelEvent::Tick).unwrap();
        s.apply(ModelEvent::Tick).unwrap();
        // Heartbeat due at tick 2 was emitted but not delivered.
        assert_eq!(s.frames().len(), 1);
        assert_eq!(s.tick(), 2);
    }

    #[test]
    fn independent_event_orders_converge_to_the_same_digest() {
        let bounds = ModelBounds {
            processes: 2,
            ..ModelBounds::mutant_hunt()
        };
        let mut a = ModelState::initial(DetectorKind::Simple, Mutant::None, bounds);
        let mut b = a.clone();
        // Two frames in flight (one per sender); delivery order must not
        // matter once both are delivered.
        a.apply(ModelEvent::Deliver(0)).unwrap();
        a.apply(ModelEvent::Deliver(0)).unwrap();
        b.apply(ModelEvent::Deliver(1)).unwrap();
        b.apply(ModelEvent::Deliver(0)).unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_distinguishes_delivered_from_dropped() {
        let mut a = state();
        let mut b = a.clone();
        a.apply(ModelEvent::Deliver(0)).unwrap();
        b.apply(ModelEvent::Drop(0)).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn tick_is_gated_by_frame_age() {
        let mut s = state();
        // Age the initial frame to the cap by deferring twice.
        s.apply(ModelEvent::Tick).unwrap();
        s.apply(ModelEvent::Tick).unwrap();
        assert!(
            !s.is_enabled(ModelEvent::Tick),
            "over-age frame blocks tick"
        );
        assert!(s.is_enabled(ModelEvent::Deliver(0)));
    }

    #[test]
    fn time_is_tick_times_duration() {
        let mut s = state();
        s.apply(ModelEvent::Deliver(0)).unwrap();
        s.apply(ModelEvent::Tick).unwrap();
        assert_eq!(s.time(), Timestamp::from_secs(1));
        assert_eq!(s.bounds().tick, Duration::from_secs(1));
    }
}
