//! The bounded-exhaustive explorer: iterative depth-first search over the
//! transition system with canonical-state merging.
//!
//! The search keeps an explicit stack (a model state easily survives a
//! 60-tick horizon, but the recursion depth would not), clones the state
//! per transition, and prunes any successor whose canonical digest is
//! already in the seen set. The seen set is a `BTreeSet<u128>` — ordered,
//! deterministic iteration, and no hashing randomness; `std` hash maps are
//! banned from this crate by afd-lint's `determinism-discipline` rule.

use std::collections::BTreeSet;

use crate::bounds::ModelBounds;
use crate::mutants::Mutant;
use crate::state::{ModelEvent, ModelState, Violation};
use crate::zoo::DetectorKind;

/// A violation plus the event path that reaches it from the initial state.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The property that failed and its evidence.
    pub violation: Violation,
    /// The events from the initial state up to and including the one whose
    /// application fired the violation.
    pub path: Vec<ModelEvent>,
}

/// What one exhaustive run saw.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct canonical states expanded (the seen-set size).
    pub states: u64,
    /// Transitions applied, including ones into already-seen states.
    pub transitions: u64,
    /// Deepest event path reached.
    pub max_depth: usize,
    /// The first violation found, with its path — `None` on a clean run.
    pub counterexample: Option<Counterexample>,
}

/// Exhaustively explores every schedule within `bounds` for `kind` under
/// `mutant`, stopping at the first violation.
pub fn explore(kind: DetectorKind, mutant: Mutant, bounds: ModelBounds) -> ExploreReport {
    let initial = ModelState::initial(kind, mutant, bounds);
    let mut seen: BTreeSet<u128> = BTreeSet::new();
    seen.insert(initial.digest());

    // Each stack entry: the state, its enabled events, and the index of
    // the next event to try.
    let mut stack: Vec<(ModelState, Vec<ModelEvent>, usize)> = Vec::new();
    let enabled = initial.enabled_events();
    stack.push((initial, enabled, 0));
    let mut path: Vec<ModelEvent> = Vec::new();

    let mut transitions = 0u64;
    let mut max_depth = 0usize;

    while let Some((state, events, next)) = stack.last_mut() {
        if *next >= events.len() {
            stack.pop();
            path.pop();
            continue;
        }
        let event = events[*next];
        *next += 1;

        let mut successor = state.clone();
        transitions += 1;
        if let Err(violation) = successor.apply(event) {
            path.push(event);
            return ExploreReport {
                states: seen.len() as u64,
                transitions,
                max_depth: max_depth.max(path.len()),
                counterexample: Some(Counterexample {
                    violation,
                    path: path.clone(),
                }),
            };
        }
        if seen.insert(successor.digest()) {
            path.push(event);
            max_depth = max_depth.max(path.len());
            let enabled = successor.enabled_events();
            stack.push((successor, enabled, 0));
        }
    }

    ExploreReport {
        states: seen.len() as u64,
        transitions,
        max_depth,
        counterexample: None,
    }
}

/// Searches for a counterexample with iterative deepening over the tick
/// horizon: explore with `max_ticks = 2, 3, …, bounds.max_ticks` and
/// return the first hit. Because a shorter horizon is a subset of a longer
/// one, the first hit is minimal in horizon length, which keeps the raw
/// counterexample short before [`crate::replay::minimize`] shrinks it
/// further.
pub fn find_counterexample(
    kind: DetectorKind,
    mutant: Mutant,
    bounds: ModelBounds,
) -> Option<Counterexample> {
    for horizon in 2..=bounds.max_ticks {
        let staged = ModelBounds {
            max_ticks: horizon,
            ..bounds
        };
        let report = explore(kind, mutant, staged);
        if report.counterexample.is_some() {
            return report.counterexample;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Property;

    #[test]
    fn clean_system_has_no_counterexample_at_tiny_bounds() {
        let bounds = ModelBounds {
            max_ticks: 6,
            ..ModelBounds::mutant_hunt()
        };
        let report = explore(DetectorKind::Simple, Mutant::None, bounds);
        assert!(
            report.counterexample.is_none(),
            "violation on the real system: {:?}",
            report.counterexample
        );
        assert!(report.states > 10, "search degenerated: {report:?}");
        assert!(report.transitions >= report.states);
    }

    #[test]
    fn merging_actually_merges() {
        // With two processes the diamond (deliver A then B vs B then A)
        // must collapse, so transitions strictly exceed states.
        let bounds = ModelBounds {
            processes: 2,
            max_ticks: 6,
            ..ModelBounds::mutant_hunt()
        };
        let report = explore(DetectorKind::Simple, Mutant::None, bounds);
        assert!(report.counterexample.is_none());
        assert!(
            report.transitions > report.states,
            "no state merging happened: {report:?}"
        );
    }

    #[test]
    fn hysteresis_off_by_one_is_caught() {
        let cex = find_counterexample(
            DetectorKind::Simple,
            Mutant::HysteresisOffByOne,
            ModelBounds::mutant_hunt(),
        )
        .expect("mutant must be caught");
        assert_eq!(cex.violation.property, Property::HysteresisSpec);
        assert!(!cex.path.is_empty());
    }
}
