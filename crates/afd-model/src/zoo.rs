//! The detector zoo as the model checker sees it: every detector this
//! repository implements, constructed with *tiny* windows so its state
//! space collapses quickly under canonical-state merging, and wrapped in
//! one `Clone` enum so snapshot/restore is a plain copy.

use afd_core::accrual::AccrualFailureDetector;
use afd_core::canonical::{CanonicalState, StateDigest};
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::{Duration, Timestamp};
use afd_detectors::adaptive::{AdaptiveAccrual, AdaptiveConfig};
use afd_detectors::akka::{AkkaPhi, AkkaPhiConfig};
use afd_detectors::bertier::{BertierAccrual, BertierConfig};
use afd_detectors::chen::{ChenAccrual, ChenConfig};
use afd_detectors::phi::{PhiAccrual, PhiConfig, PhiModel};
use afd_detectors::simple::SimpleAccrual;

/// Which zoo inhabitant a model run explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// The elapsed-time detector (§5.1 / Algorithm 4).
    Simple,
    /// Chen's expected-arrival estimator (§5.2).
    Chen,
    /// Bertier's Jacobson-margin estimator.
    Bertier,
    /// The φ detector (§5.3) under the normal model.
    Phi,
    /// The Akka/Cassandra production φ variant.
    Akka,
    /// The Satzger adaptive (histogram CDF) detector.
    Adaptive,
}

impl DetectorKind {
    /// Every kind, in the zoo's canonical order.
    pub const ALL: [DetectorKind; 6] = [
        DetectorKind::Simple,
        DetectorKind::Chen,
        DetectorKind::Bertier,
        DetectorKind::Phi,
        DetectorKind::Akka,
        DetectorKind::Adaptive,
    ];

    /// The kind's display name (matches the runtime zoo's member names).
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Simple => "simple",
            DetectorKind::Chen => "chen",
            DetectorKind::Bertier => "bertier",
            DetectorKind::Phi => "phi",
            DetectorKind::Akka => "akka",
            DetectorKind::Adaptive => "adaptive",
        }
    }

    /// The interpretation threshold `T₁` for this kind's suspicion scale,
    /// matching `DetectorZoo::standard` for a 1 s heartbeat cadence.
    pub fn threshold(self) -> f64 {
        match self {
            DetectorKind::Simple => 2.0,
            DetectorKind::Chen => 1.0,
            DetectorKind::Bertier => 1.0,
            DetectorKind::Phi => 2.0,
            DetectorKind::Akka => 2.0,
            DetectorKind::Adaptive => 0.9,
        }
    }

    /// A strictly larger threshold `T₂ > T₁` on the same scale, used to
    /// check the §4.4 ordering theorems (conservative vs aggressive).
    pub fn threshold_high(self) -> f64 {
        match self {
            // The adaptive level is a probability in [0, 1), so doubling
            // would leave its reachable range.
            DetectorKind::Adaptive => 0.95,
            kind => kind.threshold() * 2.0,
        }
    }

    /// The shared hysteresis low threshold `T₀ < T₁` (§4.4 requires the
    /// *same* `T₀` across interpreters for the orderings to hold).
    pub fn threshold_low(self) -> f64 {
        self.threshold() / 2.0
    }

    /// The Algorithm 1/2 quantization resolution ε for this kind's scale.
    /// Coarse enough that the transformers' discrete state stays tiny,
    /// fine enough that levels near the thresholds still distinguish.
    pub fn model_epsilon(self) -> f64 {
        match self {
            // Adaptive levels live in [0, 1), so the grid must be finer.
            DetectorKind::Adaptive => 0.05,
            _ => 0.25,
        }
    }
}

/// One zoo detector with model-sized windows, cloneable for cheap
/// snapshot/restore during the search.
///
/// Window capacities are deliberately tiny (4 samples) and the adaptive
/// histogram coarse (16 bins): the checker's canonical-state set merges
/// states exactly, so the smaller the detector's memory, the sooner
/// interleavings that differ only in dead history collapse.
#[derive(Debug, Clone)]
pub enum ZooDetector {
    /// §5.1 elapsed-time.
    Simple(SimpleAccrual),
    /// §5.2 Chen.
    Chen(ChenAccrual),
    /// Bertier.
    Bertier(BertierAccrual),
    /// §5.3 φ.
    Phi(PhiAccrual),
    /// Akka φ.
    Akka(AkkaPhi),
    /// Satzger adaptive.
    Adaptive(AdaptiveAccrual),
}

impl ZooDetector {
    /// Builds the model-sized detector for `kind`, assuming a heartbeat
    /// interval of `interval`.
    ///
    /// # Panics
    ///
    /// Panics if the model-sized configurations are rejected — they are
    /// constants, so that would be a bug here, not in the caller.
    pub fn new(kind: DetectorKind, interval: Duration) -> Self {
        match kind {
            DetectorKind::Simple => ZooDetector::Simple(SimpleAccrual::new(Timestamp::ZERO)),
            DetectorKind::Chen => ZooDetector::Chen(
                ChenAccrual::new(ChenConfig {
                    window_size: 4,
                    initial_interval: interval,
                })
                .expect("model chen config is valid"),
            ),
            DetectorKind::Bertier => ZooDetector::Bertier(
                BertierAccrual::new(BertierConfig {
                    initial_interval: interval,
                    ..BertierConfig::default()
                })
                .expect("model bertier config is valid"),
            ),
            DetectorKind::Phi => ZooDetector::Phi(
                PhiAccrual::new(PhiConfig {
                    window_size: 4,
                    min_samples: 2,
                    min_std_dev: Duration::from_millis(100),
                    initial_interval: interval,
                    model: PhiModel::Normal,
                })
                .expect("model phi config is valid"),
            ),
            DetectorKind::Akka => ZooDetector::Akka(
                AkkaPhi::new(AkkaPhiConfig {
                    window_size: 4,
                    first_heartbeat_estimate: interval,
                    acceptable_heartbeat_pause: Duration::ZERO,
                    min_std_dev: Duration::from_millis(100),
                })
                .expect("model akka config is valid"),
            ),
            DetectorKind::Adaptive => ZooDetector::Adaptive(
                AdaptiveAccrual::new(AdaptiveConfig {
                    window_size: 4,
                    bins: 16,
                    max_intervals: 8.0,
                    min_samples: 2,
                    initial_interval: interval,
                })
                .expect("model adaptive config is valid"),
            ),
        }
    }
}

impl AccrualFailureDetector for ZooDetector {
    fn record_heartbeat(&mut self, arrival: Timestamp) {
        match self {
            ZooDetector::Simple(d) => d.record_heartbeat(arrival),
            ZooDetector::Chen(d) => d.record_heartbeat(arrival),
            ZooDetector::Bertier(d) => d.record_heartbeat(arrival),
            ZooDetector::Phi(d) => d.record_heartbeat(arrival),
            ZooDetector::Akka(d) => d.record_heartbeat(arrival),
            ZooDetector::Adaptive(d) => d.record_heartbeat(arrival),
        }
    }

    fn suspicion_level(&mut self, now: Timestamp) -> SuspicionLevel {
        match self {
            ZooDetector::Simple(d) => d.suspicion_level(now),
            ZooDetector::Chen(d) => d.suspicion_level(now),
            ZooDetector::Bertier(d) => d.suspicion_level(now),
            ZooDetector::Phi(d) => d.suspicion_level(now),
            ZooDetector::Akka(d) => d.suspicion_level(now),
            ZooDetector::Adaptive(d) => d.suspicion_level(now),
        }
    }
}

impl CanonicalState for ZooDetector {
    fn canonical_state(&self, digest: &mut StateDigest) {
        match self {
            ZooDetector::Simple(d) => {
                digest.push_u64(0);
                d.canonical_state(digest);
            }
            ZooDetector::Chen(d) => {
                digest.push_u64(1);
                d.canonical_state(digest);
            }
            ZooDetector::Bertier(d) => {
                digest.push_u64(2);
                d.canonical_state(digest);
            }
            ZooDetector::Phi(d) => {
                digest.push_u64(3);
                d.canonical_state(digest);
            }
            ZooDetector::Akka(d) => {
                digest.push_u64(4);
                d.canonical_state(digest);
            }
            ZooDetector::Adaptive(d) => {
                digest.push_u64(5);
                d.canonical_state(digest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs_and_accrues() {
        for kind in DetectorKind::ALL {
            let mut d = ZooDetector::new(kind, Duration::from_secs(1));
            for k in 1..=5u64 {
                d.record_heartbeat(Timestamp::from_secs(k));
            }
            let near = d.suspicion_level(Timestamp::from_secs(5));
            let far = d.suspicion_level(Timestamp::from_secs(60));
            assert!(
                far.value() > near.value(),
                "{}: no accrual ({near} vs {far})",
                kind.name()
            );
        }
    }

    #[test]
    fn thresholds_are_ordered() {
        for kind in DetectorKind::ALL {
            assert!(kind.threshold_low() < kind.threshold());
            assert!(kind.threshold() < kind.threshold_high());
        }
    }

    #[test]
    fn clone_is_a_faithful_snapshot() {
        for kind in DetectorKind::ALL {
            let mut d = ZooDetector::new(kind, Duration::from_secs(1));
            d.record_heartbeat(Timestamp::from_secs(1));
            d.record_heartbeat(Timestamp::from_secs(2));
            let snap = d.clone();
            assert_eq!(
                afd_core::canonical::digest_of(&d),
                afd_core::canonical::digest_of(&snap),
                "{}: clone digest differs",
                kind.name()
            );
        }
    }
}
