//! Exploration bounds: the knobs that keep the bounded-exhaustive search
//! finite and fast.
//!
//! Every source of branching carries a budget. Ticks are bounded by
//! `max_ticks`; losses, duplicates, and crashes by their own counters; and
//! *delivery delay* by the pair (`max_deferrals`, `max_frame_age`): a tick
//! may only happen while frames are still in flight by spending a deferral
//! token, and never while a frame has already aged `max_frame_age` ticks —
//! an over-age frame forces resolution (delivery or a budgeted loss)
//! first. Without the delay budget the state space is exponential in the
//! horizon; with it, the search is dominated by *where* the few faults
//! land, which is exactly the space the paper's properties quantify over.

use afd_core::time::Duration;

/// Bounds for one exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelBounds {
    /// Number of monitored sender processes (ids `1..=processes`).
    pub processes: u32,
    /// Virtual-time horizon, in ticks.
    pub max_ticks: u32,
    /// Cap on simultaneously in-flight frames; a tick that would emit past
    /// the cap is disabled until the pool drains.
    pub max_in_flight: usize,
    /// Heartbeat cadence, in ticks (Algorithm 4's Δ_i).
    pub heartbeat_every: u32,
    /// Wall-time meaning of one tick (only matters for replay scripts and
    /// the absolute level values; the search itself is tick-indexed).
    pub tick: Duration,
    /// How many frames may be lost across the whole run.
    pub max_losses: u32,
    /// How many frames may be duplicated across the whole run.
    pub max_duplicates: u32,
    /// How many processes may crash (crashes are permanent in the model;
    /// the replay script format also supports recovery).
    pub max_crashes: u32,
    /// How many ticks may pass while frames are still undelivered — the
    /// total delivery-delay budget of the schedule.
    pub max_deferrals: u32,
    /// Oldest a frame may grow, in ticks, before the schedule must resolve
    /// it; ticking past this age is disabled.
    pub max_frame_age: u32,
}

impl ModelBounds {
    /// The e17 exhaustive bounds: 2 processes, 30 ticks, 4 in-flight.
    /// One loss, one duplicate, one crash, one deferral — every fault
    /// class present at every schedule position, ~4.9 million canonical
    /// states per detector-kind sextet in ~20 s of release-mode search.
    pub fn exhaustive() -> Self {
        ModelBounds {
            processes: 2,
            max_ticks: 30,
            max_in_flight: 4,
            heartbeat_every: 2,
            tick: Duration::from_secs(1),
            max_losses: 1,
            max_duplicates: 1,
            max_crashes: 1,
            max_deferrals: 1,
            max_frame_age: 1,
        }
    }

    /// Reduced bounds for CI smoke runs: same shape, shorter horizon
    /// (~400 k canonical states across the six kinds, seconds even in
    /// debug builds).
    pub fn smoke() -> Self {
        ModelBounds {
            max_ticks: 12,
            ..ModelBounds::exhaustive()
        }
    }

    /// Tiny single-process bounds for mutation hunting: counterexamples to
    /// the seeded bugs live within a handful of ticks, and the iterative
    /// deepening loop wants cheap rounds.
    pub fn mutant_hunt() -> Self {
        ModelBounds {
            processes: 1,
            max_ticks: 10,
            max_in_flight: 3,
            heartbeat_every: 2,
            tick: Duration::from_secs(1),
            max_losses: 1,
            max_duplicates: 1,
            max_crashes: 1,
            max_deferrals: 2,
            max_frame_age: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for b in [
            ModelBounds::exhaustive(),
            ModelBounds::smoke(),
            ModelBounds::mutant_hunt(),
        ] {
            assert!(b.processes >= 1);
            assert!(b.max_in_flight >= b.processes as usize);
            assert!(b.heartbeat_every >= 1);
            assert!(b.max_frame_age >= 1);
            assert!(!b.tick.is_zero());
        }
    }
}
