//! The Bag-of-Tasks master/worker simulation (§1.3 of the paper).
//!
//! One master holds a bag of independent tasks and a pool of workers. Each
//! worker heartbeats the master over a jittery, lossy network; some workers
//! crash. The master dispatches tasks, monitors workers through an accrual
//! detector, and applies a [`MasterPolicy`] to decide (a) which idle worker
//! gets the next task and (b) when to give up on a worker and reschedule
//! its task — losing the invested CPU time.
//!
//! The simulation is time-stepped at a fixed tick (the master's query
//! cadence), which matches how a real master would poll its failure
//! detection service.

use afd_core::accrual::AccrualFailureDetector;
use afd_core::process::ProcessId;
use afd_core::suspicion::SuspicionLevel;
use afd_core::time::{Duration, Timestamp};
use afd_sim::loss::LossModel;
use afd_sim::rng::SimRng;
use afd_sim::scenario::LossKind;

use crate::policy::MasterPolicy;

/// Configuration of a Bag-of-Tasks run.
#[derive(Debug, Clone, PartialEq)]
pub struct BotConfig {
    /// Number of worker processes.
    pub workers: u32,
    /// Number of independent tasks in the bag.
    pub tasks: u32,
    /// Mean task duration, seconds (uniform in ±50% around the mean).
    pub mean_task_secs: f64,
    /// Fraction of workers that crash during the run.
    pub crash_fraction: f64,
    /// Crashes are sampled uniformly inside this window, seconds.
    pub crash_window_secs: (f64, f64),
    /// Worker heartbeat interval.
    pub heartbeat_interval: Duration,
    /// Mean one-way network delay for heartbeats, seconds.
    pub net_delay_mean: f64,
    /// Standard deviation of the network delay, seconds.
    pub net_delay_std: f64,
    /// The heartbeat loss model (independent or bursty).
    pub loss: LossKind,
    /// Master tick (query cadence).
    pub tick: Duration,
    /// Hard wall-clock cap on the simulation, seconds.
    pub max_secs: f64,
}

impl Default for BotConfig {
    fn default() -> Self {
        BotConfig {
            workers: 32,
            tasks: 200,
            mean_task_secs: 30.0,
            crash_fraction: 0.25,
            crash_window_secs: (20.0, 200.0),
            heartbeat_interval: Duration::from_secs(1),
            net_delay_mean: 0.05,
            net_delay_std: 0.02,
            loss: LossKind::Bernoulli(afd_sim::loss::BernoulliLoss::new(0.01)),
            tick: Duration::from_millis(250),
            max_secs: 3_600.0,
        }
    }
}

/// The outcome of one Bag-of-Tasks run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BotOutcome {
    /// Wall-clock time until every task completed, seconds (`max_secs` if
    /// the run hit the cap).
    pub makespan_secs: f64,
    /// `true` if every task completed within the cap.
    pub completed: bool,
    /// CPU seconds thrown away because the master aborted tasks on workers
    /// that were actually alive (wrong suspicions).
    pub wasted_cpu_wrong_aborts: f64,
    /// CPU seconds lost to genuine worker crashes (unavoidable).
    pub wasted_cpu_crashes: f64,
    /// Tasks aborted on live workers.
    pub wrong_aborts: u64,
    /// Tasks lost to crashes and rescheduled.
    pub crash_reschedules: u64,
    /// Workers that crashed.
    pub crashed_workers: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WorkerState {
    Idle,
    /// Running a task: (task id, global start time, task duration).
    Running {
        task: u32,
        started: Timestamp,
        duration: f64,
    },
    /// The master has written this worker off.
    Retired,
}

/// Runs one Bag-of-Tasks simulation.
///
/// `detector_factory` builds the master's per-worker accrual monitor (use
/// [`afd_detectors::simple::SimpleAccrual`] for the classical baseline and
/// [`afd_detectors::phi::PhiAccrual`] for the accrual policy, so each
/// policy consumes the representation it was designed for).
///
/// # Panics
///
/// Panics if the configuration is degenerate (no workers, no tasks, zero
/// tick, or an inverted crash window).
pub fn run_bot<D, F, P>(
    config: &BotConfig,
    mut detector_factory: F,
    policy: &P,
    seed: u64,
) -> BotOutcome
where
    D: AccrualFailureDetector,
    F: FnMut(ProcessId) -> D,
    P: MasterPolicy + ?Sized,
{
    assert!(config.workers > 0, "need at least one worker");
    assert!(config.tasks > 0, "need at least one task");
    assert!(!config.tick.is_zero(), "tick must be positive");
    assert!(
        config.crash_window_secs.0 <= config.crash_window_secs.1,
        "crash window must be ordered"
    );

    let mut rng = SimRng::derive(seed, 0xB07);
    let n = config.workers as usize;

    // --- Worker fates ------------------------------------------------------
    let crash_count = ((config.workers as f64) * config.crash_fraction).round() as usize;
    let mut crash_times: Vec<Option<Timestamp>> = vec![None; n];
    // Deterministically crash the first `crash_count` worker ids at random
    // times (which ids crash is immaterial; times are random).
    for slot in crash_times.iter_mut().take(crash_count) {
        let at = rng.uniform_in(config.crash_window_secs.0, config.crash_window_secs.1);
        *slot = Some(Timestamp::from_secs_f64(at));
    }

    // --- Heartbeat arrival streams ------------------------------------------
    // Precompute each worker's heartbeat arrival times at the master.
    let mut arrivals: Vec<Vec<Timestamp>> = Vec::with_capacity(n);
    let hb = config.heartbeat_interval.as_secs_f64();
    for crash in crash_times.iter() {
        // Each worker's link gets its own loss process (so bursts on one
        // link do not synchronize with another's).
        let mut loss = config.loss;
        let mut stream = Vec::new();
        let mut t = hb;
        let mut last_arrival = 0.0f64;
        while t < config.max_secs {
            if crash.is_some_and(|c| t >= c.as_secs_f64()) {
                break;
            }
            if !loss.is_lost(&mut rng) {
                let delay = rng
                    .normal(config.net_delay_mean, config.net_delay_std)
                    .max(config.net_delay_mean / 10.0);
                let arrival = (t + delay).max(last_arrival + 1e-9);
                stream.push(Timestamp::from_secs_f64(arrival));
                last_arrival = arrival;
            }
            t += hb;
        }
        arrivals.push(stream);
    }

    // --- Master state --------------------------------------------------------
    let mut detectors: Vec<D> = (0..config.workers)
        .map(|i| detector_factory(ProcessId::new(i)))
        .collect();
    let mut next_arrival = vec![0usize; n];
    let mut states = vec![WorkerState::Idle; n];
    let mut pending: Vec<u32> = (0..config.tasks).rev().collect(); // pop() takes lowest id
    let mut task_durations: Vec<f64> = (0..config.tasks)
        .map(|_| rng.uniform_in(config.mean_task_secs * 0.5, config.mean_task_secs * 1.5))
        .collect();
    // Deterministic but varied; reuse the same durations on reschedule.
    task_durations.shrink_to_fit();

    let mut completed_tasks = 0u32;
    let mut outcome = BotOutcome {
        makespan_secs: config.max_secs,
        completed: false,
        wasted_cpu_wrong_aborts: 0.0,
        wasted_cpu_crashes: 0.0,
        wrong_aborts: 0,
        crash_reschedules: 0,
        crashed_workers: crash_count as u32,
    };

    let tick = config.tick;
    let mut now = Timestamp::ZERO + tick;
    let horizon = Timestamp::from_secs_f64(config.max_secs);

    while now <= horizon {
        // 1. Deliver heartbeats that arrived before this tick.
        for w in 0..n {
            let stream = &arrivals[w];
            while next_arrival[w] < stream.len() && stream[next_arrival[w]] <= now {
                detectors[w].record_heartbeat(stream[next_arrival[w]]);
                next_arrival[w] += 1;
            }
        }

        // 2. Query suspicion levels.
        let levels: Vec<SuspicionLevel> = detectors
            .iter_mut()
            .map(|d| d.suspicion_level(now))
            .collect();

        // 3. Task completions and crash handling.
        for w in 0..n {
            let crashed = crash_times[w].is_some_and(|c| now >= c);
            if let WorkerState::Running {
                task,
                started,
                duration,
            } = states[w]
            {
                if crashed {
                    // Work stops at the crash instant; the master does not
                    // know yet — it will learn through the detector.
                    let crash_at = crash_times[w].expect("crashed");
                    let done = (crash_at.saturating_duration_since(started)).as_secs_f64();
                    if policy.should_abort(levels[w], done.min(duration)) {
                        outcome.wasted_cpu_crashes += done.min(duration);
                        outcome.crash_reschedules += 1;
                        pending.push(task);
                        states[w] = WorkerState::Retired;
                    }
                } else {
                    let done = (now.saturating_duration_since(started)).as_secs_f64();
                    if done >= duration {
                        completed_tasks += 1;
                        states[w] = WorkerState::Idle;
                    } else if policy.should_abort(levels[w], done) {
                        // Wrong abort: the worker is alive.
                        outcome.wasted_cpu_wrong_aborts += done;
                        outcome.wrong_aborts += 1;
                        pending.push(task);
                        // The worker is shunned until it looks alive again.
                        states[w] = WorkerState::Idle;
                    }
                }
            } else if states[w] == WorkerState::Idle && crashed {
                states[w] = WorkerState::Retired;
            }
        }

        if completed_tasks == config.tasks {
            outcome.makespan_secs = (now - Timestamp::ZERO).as_secs_f64();
            outcome.completed = true;
            break;
        }

        // 4. Dispatch pending tasks to eligible idle workers, best first.
        if !pending.is_empty() {
            let candidates: Vec<(ProcessId, SuspicionLevel)> = (0..n)
                .filter(|&w| states[w] == WorkerState::Idle && policy.allow_dispatch(levels[w]))
                .map(|w| (ProcessId::new(w as u32), levels[w]))
                .collect();
            for worker in policy.rank_for_dispatch(&candidates) {
                let Some(task) = pending.pop() else { break };
                states[worker.index()] = WorkerState::Running {
                    task,
                    started: now,
                    duration: task_durations[task as usize],
                };
            }
        }

        now += tick;
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AccrualPolicy, BinaryTimeoutPolicy};
    use afd_detectors::kappa::{KappaAccrual, KappaConfig, PhiContribution};
    use afd_detectors::simple::SimpleAccrual;
    use afd_sim::loss::{BernoulliLoss, GilbertElliottLoss};

    fn sl(v: f64) -> SuspicionLevel {
        SuspicionLevel::new(v).unwrap()
    }

    fn small_config() -> BotConfig {
        BotConfig {
            workers: 8,
            tasks: 24,
            mean_task_secs: 10.0,
            crash_fraction: 0.25,
            crash_window_secs: (10.0, 60.0),
            max_secs: 1_200.0,
            ..BotConfig::default()
        }
    }

    #[test]
    fn completes_without_crashes() {
        let config = BotConfig {
            crash_fraction: 0.0,
            ..small_config()
        };
        let policy = BinaryTimeoutPolicy::new(sl(5.0));
        let out = run_bot(&config, |_| SimpleAccrual::new(Timestamp::ZERO), &policy, 1);
        assert!(out.completed, "all tasks should finish: {out:?}");
        assert_eq!(out.crashed_workers, 0);
        assert_eq!(out.crash_reschedules, 0);
        // Lower bound: 24 tasks × ≥5 s over 8 workers ⇒ ≥ 15 s.
        assert!(out.makespan_secs >= 15.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let config = small_config();
        let policy = BinaryTimeoutPolicy::new(sl(5.0));
        let a = run_bot(&config, |_| SimpleAccrual::new(Timestamp::ZERO), &policy, 9);
        let b = run_bot(&config, |_| SimpleAccrual::new(Timestamp::ZERO), &policy, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn crashes_force_reschedules_but_run_still_completes() {
        // Long tasks and an early crash window guarantee the crashing
        // workers die mid-task.
        let config = BotConfig {
            mean_task_secs: 60.0,
            crash_window_secs: (5.0, 15.0),
            ..small_config()
        };
        let policy = BinaryTimeoutPolicy::new(sl(5.0));
        let out = run_bot(&config, |_| SimpleAccrual::new(Timestamp::ZERO), &policy, 3);
        assert!(out.completed, "{out:?}");
        assert_eq!(out.crashed_workers, 2);
        assert!(out.crash_reschedules >= 1, "{out:?}");
        assert!(out.wasted_cpu_crashes > 0.0);
    }

    #[test]
    fn aggressive_timeout_wastes_cpu_on_wrong_aborts() {
        // A 1.5 s timeout against 1 s heartbeats with 5% loss: a single
        // lost heartbeat aborts live work.
        let config = BotConfig {
            loss: LossKind::Bernoulli(BernoulliLoss::new(0.05)),
            ..small_config()
        };
        let policy = BinaryTimeoutPolicy::new(sl(1.5));
        let out = run_bot(&config, |_| SimpleAccrual::new(Timestamp::ZERO), &policy, 5);
        assert!(out.wrong_aborts > 0, "{out:?}");
        assert!(out.wasted_cpu_wrong_aborts > 0.0);
    }

    #[test]
    fn accrual_policy_with_kappa_survives_loss_bursts() {
        // Bursty loss (bursts of ~4 heartbeats): a 3 s binary timeout
        // aborts live work on every burst; κ with a cost-aware threshold
        // rides bursts out on invested tasks.
        let config = BotConfig {
            mean_task_secs: 40.0,
            loss: LossKind::GilbertElliott(GilbertElliottLoss::bursts(0.02, 4.0)),
            ..small_config()
        };
        let binary = BinaryTimeoutPolicy::new(sl(3.0));
        let out_b = run_bot(&config, |_| SimpleAccrual::new(Timestamp::ZERO), &binary, 5);

        let accrual = AccrualPolicy::new(sl(1.0), sl(2.5), 6.0);
        let out_a = run_bot(
            &config,
            |_| KappaAccrual::new(KappaConfig::default(), PhiContribution).unwrap(),
            &accrual,
            5,
        );
        assert!(out_a.completed, "{out_a:?}");
        assert!(
            out_a.wasted_cpu_wrong_aborts < out_b.wasted_cpu_wrong_aborts,
            "accrual should waste less: {out_a:?} vs {out_b:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_workers() {
        let config = BotConfig {
            workers: 0,
            ..BotConfig::default()
        };
        let policy = BinaryTimeoutPolicy::new(sl(5.0));
        let _ = run_bot(&config, |_| SimpleAccrual::new(Timestamp::ZERO), &policy, 0);
    }
}
