//! Master-side failure-handling policies.
//!
//! §1.3 of the paper identifies two places the master consumes failure
//! information, and why binary detectors serve both poorly:
//!
//! 1. **Dispatch** — tasks should go to the workers *most likely alive*,
//!    which needs an ordering, not a bit.
//! 2. **Abort** — restarting a task wastes all CPU already invested, and
//!    that cost *grows with time*, so the confidence required to abort
//!    should grow with the investment.
//!
//! [`AccrualPolicy`] implements both ideas directly on suspicion levels.
//! [`BinaryTimeoutPolicy`] is the classical baseline: a single timeout
//! drives both decisions, with no ordering and no cost awareness.

use afd_core::process::ProcessId;
use afd_core::suspicion::SuspicionLevel;

/// A master policy: how suspicion levels turn into dispatch and abort
/// decisions.
pub trait MasterPolicy {
    /// `true` if a new task may be assigned to a worker whose current
    /// suspicion level is `level`.
    fn allow_dispatch(&self, level: SuspicionLevel) -> bool;

    /// Orders idle candidate workers for dispatch, best first.
    fn rank_for_dispatch(&self, candidates: &[(ProcessId, SuspicionLevel)]) -> Vec<ProcessId>;

    /// `true` if the task running on a worker with suspicion `level` and
    /// `invested_secs` of completed work should be aborted and rescheduled.
    fn should_abort(&self, level: SuspicionLevel, invested_secs: f64) -> bool;

    /// A short display name for experiment tables.
    fn name(&self) -> &'static str;
}

/// The classical baseline: one timeout (in suspicion-level units) decides
/// everything. Workers are not ranked (dispatch in id order), and the abort
/// decision ignores how much work would be lost.
///
/// Pair it with the elapsed-time detector
/// ([`afd_detectors::simple::SimpleAccrual`]) so the threshold is literally
/// a heartbeat timeout in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryTimeoutPolicy {
    threshold: SuspicionLevel,
}

impl BinaryTimeoutPolicy {
    /// Creates the baseline with the given timeout threshold.
    pub fn new(threshold: SuspicionLevel) -> Self {
        BinaryTimeoutPolicy { threshold }
    }
}

impl MasterPolicy for BinaryTimeoutPolicy {
    fn allow_dispatch(&self, level: SuspicionLevel) -> bool {
        level <= self.threshold
    }

    fn rank_for_dispatch(&self, candidates: &[(ProcessId, SuspicionLevel)]) -> Vec<ProcessId> {
        // A binary detector offers no ordering: id order.
        let mut ids: Vec<ProcessId> = candidates.iter().map(|&(p, _)| p).collect();
        ids.sort();
        ids
    }

    fn should_abort(&self, level: SuspicionLevel, _invested_secs: f64) -> bool {
        level > self.threshold
    }

    fn name(&self) -> &'static str {
        "binary-timeout"
    }
}

/// The accrual policy of §1.3: suspicion-ranked dispatch plus cost-aware
/// aborts.
///
/// - Dispatch is allowed below `dispatch_threshold` and candidates are
///   ordered by ascending suspicion (most-alive first).
/// - A running task is aborted when the suspicion level exceeds
///   `abort_base + cost_slope · log₁₀(1 + invested_secs)`: the more work a
///   task has accumulated, the more confidence the master demands before
///   discarding it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccrualPolicy {
    /// Suspicion level above which no new work is assigned.
    pub dispatch_threshold: SuspicionLevel,
    /// Abort threshold for a task with zero invested work.
    pub abort_base: SuspicionLevel,
    /// How much the abort threshold grows per decade of invested seconds.
    pub cost_slope: f64,
    /// Whether dispatch candidates are ordered by suspicion level
    /// (usage pattern 1 of §1.3). Disable for the ablation that isolates
    /// the cost-aware abort rule.
    pub ranked_dispatch: bool,
}

impl AccrualPolicy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `cost_slope` is negative or not finite.
    pub fn new(
        dispatch_threshold: SuspicionLevel,
        abort_base: SuspicionLevel,
        cost_slope: f64,
    ) -> Self {
        assert!(
            cost_slope.is_finite() && cost_slope >= 0.0,
            "cost slope must be non-negative"
        );
        AccrualPolicy {
            dispatch_threshold,
            abort_base,
            cost_slope,
            ranked_dispatch: true,
        }
    }

    /// Returns a copy with suspicion-ranked dispatch disabled (candidates
    /// are taken in id order, like the binary baseline) — the ablation of
    /// §1.3's first usage pattern.
    pub fn without_ranking(mut self) -> Self {
        self.ranked_dispatch = false;
        self
    }

    /// The abort threshold in force for a task with `invested_secs` of
    /// completed work.
    pub fn abort_threshold(&self, invested_secs: f64) -> SuspicionLevel {
        SuspicionLevel::clamped(
            self.abort_base.value() + self.cost_slope * (1.0 + invested_secs.max(0.0)).log10(),
        )
    }
}

impl MasterPolicy for AccrualPolicy {
    fn allow_dispatch(&self, level: SuspicionLevel) -> bool {
        level <= self.dispatch_threshold
    }

    fn rank_for_dispatch(&self, candidates: &[(ProcessId, SuspicionLevel)]) -> Vec<ProcessId> {
        let mut sorted: Vec<_> = candidates.to_vec();
        if self.ranked_dispatch {
            sorted.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        } else {
            sorted.sort_by_key(|a| a.0);
        }
        sorted.into_iter().map(|(p, _)| p).collect()
    }

    fn should_abort(&self, level: SuspicionLevel, invested_secs: f64) -> bool {
        level > self.abort_threshold(invested_secs)
    }

    fn name(&self) -> &'static str {
        "accrual-cost-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sl(v: f64) -> SuspicionLevel {
        SuspicionLevel::new(v).unwrap()
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn binary_policy_is_a_single_timeout() {
        let pol = BinaryTimeoutPolicy::new(sl(5.0));
        assert!(pol.allow_dispatch(sl(5.0)));
        assert!(!pol.allow_dispatch(sl(5.1)));
        assert!(!pol.should_abort(sl(5.0), 1_000.0));
        assert!(pol.should_abort(sl(5.1), 0.0));
        assert_eq!(pol.name(), "binary-timeout");
    }

    #[test]
    fn binary_policy_ignores_suspicion_ordering() {
        let pol = BinaryTimeoutPolicy::new(sl(5.0));
        let ranked = pol.rank_for_dispatch(&[(p(2), sl(0.1)), (p(1), sl(4.0))]);
        assert_eq!(ranked, vec![p(1), p(2)], "id order, not suspicion order");
    }

    #[test]
    fn accrual_policy_ranks_by_suspicion() {
        let pol = AccrualPolicy::new(sl(1.0), sl(3.0), 2.0);
        let ranked = pol.rank_for_dispatch(&[(p(1), sl(0.9)), (p(2), sl(0.1)), (p(3), sl(0.5))]);
        assert_eq!(ranked, vec![p(2), p(3), p(1)]);
    }

    #[test]
    fn accrual_abort_threshold_grows_with_investment() {
        let pol = AccrualPolicy::new(sl(1.0), sl(3.0), 2.0);
        let fresh = pol.abort_threshold(0.0);
        let hour = pol.abort_threshold(3600.0);
        assert_eq!(fresh.value(), 3.0);
        assert!((hour.value() - (3.0 + 2.0 * 3601f64.log10())).abs() < 1e-9);
        // A level that aborts a fresh task spares a long-running one.
        let level = sl(4.0);
        assert!(pol.should_abort(level, 0.0));
        assert!(!pol.should_abort(level, 3600.0));
    }

    #[test]
    fn unranked_ablation_dispatches_in_id_order() {
        let pol = AccrualPolicy::new(sl(1.0), sl(3.0), 2.0).without_ranking();
        assert!(!pol.ranked_dispatch);
        let ranked = pol.rank_for_dispatch(&[(p(2), sl(0.1)), (p(1), sl(0.9))]);
        assert_eq!(ranked, vec![p(1), p(2)]);
        // Abort rule is unchanged by the ablation.
        assert!(pol.should_abort(sl(4.0), 0.0));
    }

    #[test]
    fn accrual_zero_slope_reduces_to_constant_threshold() {
        let pol = AccrualPolicy::new(sl(1.0), sl(3.0), 0.0);
        assert_eq!(pol.abort_threshold(0.0), pol.abort_threshold(1e6));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_slope_rejected() {
        let _ = AccrualPolicy::new(sl(1.0), sl(3.0), -1.0);
    }
}
