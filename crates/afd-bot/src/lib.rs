//! The Bag-of-Tasks (BoT) application of §1.3, built on accrual failure
//! detection.
//!
//! The paper motivates accrual detectors with a master/worker grid
//! computation (the OurGrid example): the master must (1) *rank* workers by
//! how likely they are alive when assigning tasks, and (2) decide when to
//! abort a task, knowing that the cost of a wrong abort *grows with the
//! work already invested*. Both usage patterns fall naturally out of a
//! real-valued suspicion level and are awkward with a binary trust/suspect
//! bit.
//!
//! - [`policy`]: the [`policy::MasterPolicy`] trait with the classical
//!   [`policy::BinaryTimeoutPolicy`] baseline and the suspicion-ranked,
//!   cost-aware [`policy::AccrualPolicy`].
//! - [`sim`]: a deterministic master/worker simulation with crashing
//!   workers and a lossy, jittery heartbeat network; reports makespan and
//!   wasted CPU.
//!
//! Experiment E10 sweeps both policies over loss rates and crash fractions
//! to regenerate the paper's qualitative claim.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod policy;
pub mod sim;

pub use policy::{AccrualPolicy, BinaryTimeoutPolicy, MasterPolicy};
pub use sim::{run_bot, BotConfig, BotOutcome};
