//! Feeding recorded arrival traces to detectors.
//!
//! [`replay`] merges a trace's heartbeat deliveries with a periodic query
//! schedule and drives any [`AccrualFailureDetector`] through them,
//! producing the [`SuspicionTrace`] (the failure-detector history of §2).
//! Stale heartbeats — ones overtaken in the network — are discarded by
//! sequence number exactly as Algorithm 4 lines 8–10 prescribe.
//!
//! Because a trace can be replayed any number of times, every detector and
//! every threshold in an experiment sees the *same* network behaviour,
//! which is what makes QoS comparisons across detectors fair.

use afd_core::accrual::AccrualFailureDetector;
use afd_core::history::SuspicionTrace;
use afd_core::time::{Duration, Timestamp};

use crate::clock::DriftingClock;
use crate::trace::ArrivalTrace;

/// The query schedule for a replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Time between consecutive queries (the monitor's step cadence), in
    /// global time.
    pub query_interval: Duration,
    /// Time of the first query, in global time.
    pub first_query: Timestamp,
    /// The monitor's local clock. The detector lives entirely in local
    /// time — heartbeat arrivals are recorded in it, and each query
    /// instant is translated onto it — while the returned history stays
    /// indexed by *global* time (the `t` of `H(p, t)` in §2), which is
    /// what QoS analysis compares against global crash times.
    pub monitor_clock: DriftingClock,
}

impl ReplayConfig {
    /// Queries every `query_interval`, starting one interval in.
    ///
    /// # Panics
    ///
    /// Panics if `query_interval` is zero.
    pub fn every(query_interval: Duration) -> Self {
        assert!(!query_interval.is_zero(), "query interval must be positive");
        ReplayConfig {
            query_interval,
            first_query: Timestamp::ZERO + query_interval,
            monitor_clock: DriftingClock::perfect(),
        }
    }

    /// Returns a copy with a different first-query time.
    pub fn starting_at(mut self, first_query: Timestamp) -> Self {
        self.first_query = first_query;
        self
    }

    /// Returns a copy using the given monitor clock (use the scenario's
    /// `monitor_clock` when replaying drifting-clock runs).
    pub fn with_clock(mut self, monitor_clock: DriftingClock) -> Self {
        self.monitor_clock = monitor_clock;
        self
    }
}

/// Replays `trace` through `detector`, querying on the given schedule until
/// the trace horizon; returns the resulting suspicion-level history.
///
/// Heartbeats are delivered in arrival order; a delivery whose sequence
/// number is not strictly greater than the highest seen so far is dropped
/// (Algorithm 4's freshness check), so reordered heartbeats never move the
/// detector's notion of "last heartbeat" backwards.
pub fn replay<D: AccrualFailureDetector + ?Sized>(
    trace: &ArrivalTrace,
    detector: &mut D,
    config: ReplayConfig,
) -> SuspicionTrace {
    let deliveries = trace.deliveries_in_arrival_order();
    let mut out = SuspicionTrace::new();
    let mut next_delivery = 0usize;
    let mut highest_seq = 0u64;
    let mut query_at = config.first_query;
    let horizon = trace.horizon();

    while query_at <= horizon {
        // The monitor's view of this instant.
        let local_now = config.monitor_clock.local_time(query_at);
        // Deliver every heartbeat that arrived (locally) before this query.
        while next_delivery < deliveries.len() && deliveries[next_delivery].1 <= local_now {
            let (seq, at) = deliveries[next_delivery];
            next_delivery += 1;
            if seq > highest_seq {
                highest_seq = seq;
                detector.record_heartbeat(at);
            }
        }
        out.push(query_at, detector.suspicion_level(local_now));
        query_at += config.query_interval;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::HeartbeatRecord;
    use afd_core::suspicion::SuspicionLevel;

    /// A minimal elapsed-time detector for exercising the replay loop
    /// (the real implementations live in `afd-detectors`).
    #[derive(Debug, Default)]
    struct Elapsed {
        last: Option<Timestamp>,
    }

    impl AccrualFailureDetector for Elapsed {
        fn record_heartbeat(&mut self, arrival: Timestamp) {
            if let Some(prev) = self.last {
                assert!(arrival >= prev, "replay must deliver in arrival order");
            }
            self.last = Some(arrival);
        }
        fn suspicion_level(&mut self, now: Timestamp) -> SuspicionLevel {
            match self.last {
                None => SuspicionLevel::ZERO,
                Some(t) => SuspicionLevel::clamped(now.saturating_duration_since(t).as_secs_f64()),
            }
        }
    }

    fn record(seq: u64, sent_s: f64, delivered_s: Option<f64>) -> HeartbeatRecord {
        HeartbeatRecord {
            seq,
            sent_at: Timestamp::from_secs_f64(sent_s),
            delivered_at: delivered_s.map(Timestamp::from_secs_f64),
            delivered_local: delivered_s.map(Timestamp::from_secs_f64),
        }
    }

    #[test]
    fn queries_follow_schedule() {
        let trace = ArrivalTrace::new(
            vec![record(1, 1.0, Some(1.1))],
            None,
            Timestamp::from_secs(5),
            Duration::from_secs(1),
        );
        let out = replay(
            &trace,
            &mut Elapsed::default(),
            ReplayConfig::every(Duration::from_secs(1)),
        );
        let times: Vec<u64> = out
            .iter()
            .map(|s| s.at.as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn suspicion_resets_on_heartbeat_and_grows_after() {
        let trace = ArrivalTrace::new(
            vec![record(1, 1.0, Some(1.0)), record(2, 2.0, Some(2.0))],
            None,
            Timestamp::from_secs(6),
            Duration::from_secs(1),
        );
        let out = replay(
            &trace,
            &mut Elapsed::default(),
            ReplayConfig::every(Duration::from_secs(1)),
        );
        let levels: Vec<f64> = out.iter().map(|s| s.level.value()).collect();
        // t=1: hb@1 arrived → 0; t=2: hb@2 → 0; then grows 1, 2, 3, 4.
        assert_eq!(levels, vec![0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stale_heartbeats_are_dropped() {
        // seq 2 arrives first (overtaking); seq 1 arrives later and must be
        // ignored, not rewind the detector.
        let trace = ArrivalTrace::new(
            vec![record(1, 1.0, Some(3.5)), record(2, 2.0, Some(2.2))],
            None,
            Timestamp::from_secs(6),
            Duration::from_secs(1),
        );
        let mut d = Elapsed::default();
        let out = replay(&trace, &mut d, ReplayConfig::every(Duration::from_secs(1)));
        // Last heartbeat the detector saw must be 2.2 (seq 2), not 3.5 (seq 1).
        assert_eq!(d.last, Some(Timestamp::from_secs_f64(2.2)));
        let levels: Vec<f64> = out.iter().map(|s| s.level.value()).collect();
        assert_eq!(levels, vec![0.0, 0.0, 0.8, 1.8, 2.8, 3.8]);
    }

    #[test]
    fn empty_trace_yields_zero_levels() {
        let trace = ArrivalTrace::new(
            Vec::new(),
            None,
            Timestamp::from_secs(3),
            Duration::from_secs(1),
        );
        let out = replay(
            &trace,
            &mut Elapsed::default(),
            ReplayConfig::every(Duration::from_secs(1)),
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|s| s.level.is_zero()));
    }

    #[test]
    fn custom_start_time() {
        let trace = ArrivalTrace::new(
            Vec::new(),
            None,
            Timestamp::from_secs(5),
            Duration::from_secs(1),
        );
        let cfg = ReplayConfig::every(Duration::from_secs(2)).starting_at(Timestamp::from_secs(3));
        let out = replay(&trace, &mut Elapsed::default(), cfg);
        let times: Vec<u64> = out
            .iter()
            .map(|s| s.at.as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(times, vec![3, 5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_query_interval_rejected() {
        let _ = ReplayConfig::every(Duration::ZERO);
    }
}
