//! Message-delay models.
//!
//! The paper's adaptive detectors (§5.2–5.3) exist because real networks
//! jitter; the κ framework (§5.4) exists because they also lose messages in
//! bursts. The delay models here generate the transmission-time processes
//! those sections reason about: constant (the idealized LAN), uniform and
//! normal jitter (the φ paper's assumed shapes), and shifted-exponential
//! (a common WAN heavy-ish tail).

use afd_core::time::Duration;

use crate::error::ModelError;
use crate::rng::SimRng;

/// A model of per-message network transmission delay.
///
/// Implementations are object-safe; the channel samples one delay per sent
/// message.
pub trait DelayModel {
    /// Samples the delay for the next message.
    fn sample(&mut self, rng: &mut SimRng) -> Duration;
}

impl<D: DelayModel + ?Sized> DelayModel for Box<D> {
    fn sample(&mut self, rng: &mut SimRng) -> Duration {
        (**self).sample(rng)
    }
}

/// Every message takes exactly the same time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantDelay {
    delay: Duration,
}

impl ConstantDelay {
    /// Creates a constant-delay model.
    pub fn new(delay: Duration) -> Self {
        ConstantDelay { delay }
    }
}

impl DelayModel for ConstantDelay {
    fn sample(&mut self, _rng: &mut SimRng) -> Duration {
        self.delay
    }
}

/// Delay uniformly distributed in `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformDelay {
    min: Duration,
    max: Duration,
}

impl UniformDelay {
    /// Creates a uniform-delay model over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`; use [`try_new`](Self::try_new) to handle that
    /// as a value instead.
    pub fn new(min: Duration, max: Duration) -> Self {
        Self::try_new(min, max).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a uniform-delay model, rejecting an inverted range with a
    /// typed error.
    pub fn try_new(min: Duration, max: Duration) -> Result<Self, ModelError> {
        if min > max {
            return Err(ModelError::InvertedDelayRange { min, max });
        }
        Ok(UniformDelay { min, max })
    }
}

impl DelayModel for UniformDelay {
    fn sample(&mut self, rng: &mut SimRng) -> Duration {
        let secs = rng.uniform_in(self.min.as_secs_f64(), self.max.as_secs_f64());
        Duration::from_secs_f64(secs)
    }
}

/// Delay normally distributed around `mean` with deviation `std`,
/// truncated below at `floor` (a physical propagation minimum).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalDelay {
    mean: Duration,
    std: Duration,
    floor: Duration,
}

impl NormalDelay {
    /// Creates a truncated-normal delay model.
    ///
    /// # Panics
    ///
    /// Panics if `floor > mean` (the truncation would dominate the shape);
    /// use [`try_new`](Self::try_new) to handle that as a value instead.
    pub fn new(mean: Duration, std: Duration, floor: Duration) -> Self {
        Self::try_new(mean, std, floor).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a truncated-normal delay model, rejecting a floor above the
    /// mean with a typed error.
    pub fn try_new(mean: Duration, std: Duration, floor: Duration) -> Result<Self, ModelError> {
        if floor > mean {
            return Err(ModelError::FloorAboveMean { floor, mean });
        }
        Ok(NormalDelay { mean, std, floor })
    }
}

impl DelayModel for NormalDelay {
    fn sample(&mut self, rng: &mut SimRng) -> Duration {
        let secs = rng.normal(self.mean.as_secs_f64(), self.std.as_secs_f64());
        Duration::from_secs_f64(secs.max(self.floor.as_secs_f64()))
    }
}

/// Delay with a fixed base plus an exponentially distributed excess —
/// a simple heavy-ish tail for WAN-like conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftedExponentialDelay {
    base: Duration,
    mean_excess: Duration,
}

impl ShiftedExponentialDelay {
    /// Creates the model: `delay = base + Exp(mean_excess)`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_excess` is zero; use [`try_new`](Self::try_new) to
    /// handle that as a value instead.
    pub fn new(base: Duration, mean_excess: Duration) -> Self {
        Self::try_new(base, mean_excess).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates the model, rejecting a zero mean excess with a typed error.
    pub fn try_new(base: Duration, mean_excess: Duration) -> Result<Self, ModelError> {
        if mean_excess.is_zero() {
            return Err(ModelError::ZeroMeanExcess);
        }
        Ok(ShiftedExponentialDelay { base, mean_excess })
    }
}

impl DelayModel for ShiftedExponentialDelay {
    fn sample(&mut self, rng: &mut SimRng) -> Duration {
        let excess = rng.exponential(self.mean_excess.as_secs_f64());
        self.base + Duration::from_secs_f64(excess)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(5)
    }

    #[test]
    fn constant_is_constant() {
        let mut d = ConstantDelay::new(Duration::from_millis(10));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), Duration::from_millis(10));
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let (lo, hi) = (Duration::from_millis(5), Duration::from_millis(15));
        let mut d = UniformDelay::new(lo, hi);
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!(s >= lo && s <= hi);
        }
    }

    #[test]
    #[should_panic(expected = "min ≤ max")]
    fn uniform_rejects_inverted_range() {
        let _ = UniformDelay::new(Duration::from_secs(2), Duration::from_secs(1));
    }

    #[test]
    fn try_constructors_surface_typed_errors() {
        use crate::error::ModelError;

        assert!(matches!(
            UniformDelay::try_new(Duration::from_secs(2), Duration::from_secs(1)),
            Err(ModelError::InvertedDelayRange { .. })
        ));
        assert!(UniformDelay::try_new(Duration::from_secs(1), Duration::from_secs(1)).is_ok());

        assert!(matches!(
            NormalDelay::try_new(
                Duration::from_millis(50),
                Duration::from_millis(10),
                Duration::from_millis(100),
            ),
            Err(ModelError::FloorAboveMean { .. })
        ));
        assert!(NormalDelay::try_new(
            Duration::from_millis(100),
            Duration::from_millis(10),
            Duration::from_millis(100),
        )
        .is_ok());

        assert!(matches!(
            ShiftedExponentialDelay::try_new(Duration::from_secs(1), Duration::ZERO),
            Err(ModelError::ZeroMeanExcess)
        ));
    }

    #[test]
    fn normal_respects_floor_and_mean() {
        let mut d = NormalDelay::new(
            Duration::from_millis(100),
            Duration::from_millis(20),
            Duration::from_millis(50),
        );
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000)
            .map(|_| d.sample(&mut r).as_secs_f64())
            .collect();
        assert!(samples.iter().all(|&s| s >= 0.05));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.1).abs() < 0.003, "mean = {mean}");
    }

    #[test]
    fn shifted_exponential_exceeds_base() {
        let base = Duration::from_millis(30);
        let mut d = ShiftedExponentialDelay::new(base, Duration::from_millis(10));
        let mut r = rng();
        let samples: Vec<Duration> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&s| s >= base));
        let mean = samples.iter().map(|s| s.as_secs_f64()).sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.04).abs() < 0.002, "mean = {mean}");
    }

    #[test]
    fn boxed_model_forwards() {
        let mut d: Box<dyn DelayModel> = Box::new(ConstantDelay::new(Duration::from_secs(1)));
        assert_eq!(d.sample(&mut rng()), Duration::from_secs(1));
    }
}
