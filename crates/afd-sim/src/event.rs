//! A deterministic discrete-event queue.
//!
//! The simulation engine advances global time by popping events in
//! timestamp order. Ties are broken by insertion sequence, which keeps runs
//! fully deterministic regardless of payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use afd_core::time::Timestamp;

/// A scheduled event with its firing time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Timestamp,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by time, with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use afd_core::time::Timestamp;
/// use afd_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(Timestamp::from_secs(2), "second");
/// q.schedule(Timestamp::from_secs(1), "first");
/// assert_eq!(q.pop(), Some((Timestamp::from_secs(1), "first")));
/// assert_eq!(q.pop(), Some((Timestamp::from_secs(2), "second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Timestamp,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Timestamp::ZERO,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time (events
    /// cannot fire in the past).
    pub fn schedule(&mut self, at: Timestamp, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at} before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the simulation
    /// clock to its firing time.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// The firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.at)
    }

    /// The current simulation time (the time of the last popped event).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(ts(3), 'c');
        q.schedule(ts(1), 'a');
        q.schedule(ts(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(ts(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(ts(4), ());
        assert_eq!(q.now(), Timestamp::ZERO);
        assert_eq!(q.peek_time(), Some(ts(4)));
        q.pop();
        assert_eq!(q.now(), ts(4));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(ts(5), ());
        q.pop();
        q.schedule(ts(4), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(ts(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(ts(1), 1);
        q.schedule(ts(10), 3);
        assert_eq!(q.pop(), Some((ts(1), 1)));
        q.schedule(ts(5), 2); // between the popped and the pending event
        assert_eq!(q.pop(), Some((ts(5), 2)));
        assert_eq!(q.pop(), Some((ts(10), 3)));
    }
}
