//! Deterministic random sampling for the simulator.
//!
//! Every run is driven by a [`SimRng`] seeded explicitly, so experiments
//! are exactly reproducible: the same scenario and seed always produce the
//! same heartbeat arrival process. `rand`'s `StdRng` provides the stream;
//! the shaped samplers (normal, exponential) are implemented here because
//! the simulator deliberately depends only on the sanctioned `rand` crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the samplers the network models need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second output of the Marsaglia polar transform.
    spare_gaussian: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Derives an independent generator for a sub-stream (e.g. one per
    /// channel), keyed by `stream`.
    ///
    /// Uses a SplitMix64 mix of the seed and stream id so sub-streams do
    /// not overlap for practical run lengths.
    pub fn derive(seed: u64, stream: u64) -> Self {
        let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "need finite lo ≤ hi"
        );
        #[allow(clippy::float_cmp)]
        // lint:allow(no-float-eq, degenerate range: gen_range rejects an empty lo..hi)
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// A Bernoulli trial with success probability `p` (clamped to [0, 1]).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// A standard normal sample (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare_gaussian = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or either parameter is not finite.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        assert!(
            mean.is_finite() && std.is_finite() && std >= 0.0,
            "bad normal parameters"
        );
        mean + std * self.standard_normal()
    }

    /// An exponential sample with the given mean (inverse-CDF method).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        let u = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        self.inner.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn derive_gives_reproducible_substreams() {
        let mut a = SimRng::derive(7, 3);
        let mut b = SimRng::derive(7, 3);
        let mut c = SimRng::derive(7, 4);
        assert_eq!(a.uniform(), b.uniform());
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn exponential_moments_are_plausible() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.exponential(3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.08, "mean = {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut rng = SimRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..1000 {
            let x = rng.uniform_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform_in(5.0, 5.0), 5.0);
    }

    #[test]
    fn index_in_range() {
        let mut rng = SimRng::seed_from_u64(19);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }
}
