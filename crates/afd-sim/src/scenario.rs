//! Declarative run configurations.
//!
//! A [`Scenario`] fully describes one monitored pair's environment: the
//! heartbeat protocol, the network (delay + loss + optional pre-GST chaos),
//! the two local clocks, the query schedule, and an optional crash. Being a
//! plain value, it can be swept by the experiment harness and reproduced
//! exactly from `(scenario, seed)`.

use afd_core::time::{Duration, Timestamp};

use crate::channel::PartialSynchrony;
use crate::clock::DriftingClock;
use crate::delay::{ConstantDelay, DelayModel, NormalDelay, ShiftedExponentialDelay, UniformDelay};
use crate::loss::{BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss};
use crate::rng::SimRng;

/// The delay model choices a scenario can name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayKind {
    /// Fixed delay.
    Constant(ConstantDelay),
    /// Uniform jitter.
    Uniform(UniformDelay),
    /// Truncated-normal jitter.
    Normal(NormalDelay),
    /// Base plus exponential excess.
    ShiftedExponential(ShiftedExponentialDelay),
}

impl DelayModel for DelayKind {
    fn sample(&mut self, rng: &mut SimRng) -> Duration {
        match self {
            DelayKind::Constant(m) => m.sample(rng),
            DelayKind::Uniform(m) => m.sample(rng),
            DelayKind::Normal(m) => m.sample(rng),
            DelayKind::ShiftedExponential(m) => m.sample(rng),
        }
    }
}

/// The loss model choices a scenario can name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossKind {
    /// No loss.
    None(NoLoss),
    /// Independent loss.
    Bernoulli(BernoulliLoss),
    /// Bursty (Gilbert–Elliott) loss.
    GilbertElliott(GilbertElliottLoss),
}

impl LossModel for LossKind {
    fn is_lost(&mut self, rng: &mut SimRng) -> bool {
        match self {
            LossKind::None(m) => m.is_lost(rng),
            LossKind::Bernoulli(m) => m.is_lost(rng),
            LossKind::GilbertElliott(m) => m.is_lost(rng),
        }
    }
}

/// A complete monitored-pair run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Nominal heartbeat interval (on the sender's clock).
    pub heartbeat_interval: Duration,
    /// Standard deviation of normal jitter on heartbeat *send* times.
    pub send_jitter_std: Duration,
    /// The network delay model.
    pub delay: DelayKind,
    /// The network loss model.
    pub loss: LossKind,
    /// Pre-GST chaos, if modelling partial synchrony explicitly.
    pub partial_synchrony: Option<PartialSynchrony>,
    /// The sender's local clock.
    pub sender_clock: DriftingClock,
    /// The monitor's local clock.
    pub monitor_clock: DriftingClock,
    /// Global time at which the sender crashes, if it does.
    pub crash_at: Option<Timestamp>,
    /// End of the run (global time).
    pub horizon: Timestamp,
}

impl Scenario {
    /// A quiet LAN: 100 ms heartbeats, ~1 ms delay with small jitter, no
    /// loss, perfect clocks, 60 s horizon.
    pub fn lan() -> Self {
        Scenario {
            heartbeat_interval: Duration::from_millis(100),
            send_jitter_std: Duration::from_millis(1),
            delay: DelayKind::Normal(NormalDelay::new(
                Duration::from_millis(1),
                Duration::from_micros(200),
                Duration::from_micros(100),
            )),
            loss: LossKind::None(NoLoss),
            partial_synchrony: None,
            sender_clock: DriftingClock::perfect(),
            monitor_clock: DriftingClock::perfect(),
            crash_at: None,
            horizon: Timestamp::from_secs(60),
        }
    }

    /// A jittery WAN: 1 s heartbeats, 100 ms mean delay with 40 ms normal
    /// jitter, 1% independent loss, 10-minute horizon. This is the regime
    /// where the adaptive detectors of §5.2–5.3 earn their keep.
    pub fn wan_jitter() -> Self {
        Scenario {
            heartbeat_interval: Duration::from_secs(1),
            send_jitter_std: Duration::from_millis(5),
            delay: DelayKind::Normal(NormalDelay::new(
                Duration::from_millis(100),
                Duration::from_millis(40),
                Duration::from_millis(20),
            )),
            loss: LossKind::Bernoulli(BernoulliLoss::new(0.01)),
            partial_synchrony: None,
            sender_clock: DriftingClock::perfect(),
            monitor_clock: DriftingClock::perfect(),
            crash_at: None,
            horizon: Timestamp::from_secs(600),
        }
    }

    /// A WAN with bursty loss: like [`Scenario::wan_jitter`] but messages
    /// are dropped in Gilbert–Elliott bursts (~1% of messages start a
    /// burst; bursts last 5 heartbeats on average). The regime motivating
    /// the κ framework (§5.4).
    pub fn bursty_loss() -> Self {
        Scenario {
            loss: LossKind::GilbertElliott(GilbertElliottLoss::bursts(0.01, 5.0)),
            ..Scenario::wan_jitter()
        }
    }

    /// A partially synchronous run (Appendix A.4): chaotic delays and loss
    /// until GST at 20% of the horizon, drifting clocks on both sides.
    pub fn partially_synchronous() -> Self {
        let horizon = Timestamp::from_secs(600);
        Scenario {
            partial_synchrony: Some(PartialSynchrony::new(
                Timestamp::from_secs(120),
                Duration::from_secs(3),
                0.2,
            )),
            sender_clock: DriftingClock::new(Duration::from_millis(40), 1.0005),
            monitor_clock: DriftingClock::new(Duration::from_millis(15), 0.9995),
            horizon,
            ..Scenario::wan_jitter()
        }
    }

    /// Returns a copy in which the sender crashes at `at`.
    pub fn with_crash_at(mut self, at: Timestamp) -> Self {
        self.crash_at = Some(at);
        self
    }

    /// Returns a copy with a different horizon.
    pub fn with_horizon(mut self, horizon: Timestamp) -> Self {
        self.horizon = horizon;
        self
    }

    /// Returns a copy with a different heartbeat interval.
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = interval;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for s in [
            Scenario::lan(),
            Scenario::wan_jitter(),
            Scenario::bursty_loss(),
            Scenario::partially_synchronous(),
        ] {
            assert!(!s.heartbeat_interval.is_zero());
            assert!(s.horizon > Timestamp::ZERO);
            assert!(s.crash_at.is_none());
        }
    }

    #[test]
    fn builders_override_fields() {
        let s = Scenario::lan()
            .with_crash_at(Timestamp::from_secs(30))
            .with_horizon(Timestamp::from_secs(90))
            .with_heartbeat_interval(Duration::from_millis(250));
        assert_eq!(s.crash_at, Some(Timestamp::from_secs(30)));
        assert_eq!(s.horizon, Timestamp::from_secs(90));
        assert_eq!(s.heartbeat_interval, Duration::from_millis(250));
    }

    #[test]
    fn kind_enums_delegate() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut d = DelayKind::Constant(ConstantDelay::new(Duration::from_millis(7)));
        assert_eq!(d.sample(&mut rng), Duration::from_millis(7));
        let mut l = LossKind::None(NoLoss);
        assert!(!l.is_lost(&mut rng));
        let mut lb = LossKind::Bernoulli(BernoulliLoss::new(1.0));
        assert!(lb.is_lost(&mut rng));
    }

    #[test]
    fn bursty_differs_from_wan_only_in_loss() {
        let a = Scenario::wan_jitter();
        let b = Scenario::bursty_loss();
        assert_eq!(a.delay, b.delay);
        assert_ne!(a.loss, b.loss);
    }
}
