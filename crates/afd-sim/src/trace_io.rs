//! Reading and writing arrival traces as CSV.
//!
//! The φ paper evaluated detectors on *recorded* heartbeat traces (a
//! week-long Japan–Switzerland WAN capture). This module gives the same
//! workflow to users of this crate: capture `(seq, sent, delivered)`
//! tuples from a real system, write them with [`write_csv`], and replay
//! them through any detector with [`crate::replay::replay`] — or export a
//! simulated trace for analysis elsewhere.
//!
//! The format is one header line, one comment line of metadata, then one
//! row per heartbeat:
//!
//! ```csv
//! # accrual-fd-trace v1 crash_ns=- horizon_ns=60000000000 interval_ns=1000000000
//! seq,sent_ns,delivered_ns,delivered_local_ns
//! 1,1000000000,1102000000,1102000000
//! 2,2000000000,,,
//! ```
//!
//! Empty delivery fields mean the heartbeat was lost.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use afd_core::time::{Duration, Timestamp};

use crate::trace::{ArrivalTrace, HeartbeatRecord};

/// A malformed trace file.
#[derive(Debug)]
pub enum TraceReadError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A syntactic problem, with the offending line number (1-based).
    Parse {
        /// Line number of the problem.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Writes `trace` as CSV.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn write_csv<W: Write>(trace: &ArrivalTrace, mut writer: W) -> io::Result<()> {
    let crash = trace
        .crash_time()
        .map_or_else(|| "-".to_string(), |t| t.as_nanos().to_string());
    writeln!(
        writer,
        "# accrual-fd-trace v1 crash_ns={} horizon_ns={} interval_ns={}",
        crash,
        trace.horizon().as_nanos(),
        trace.interval().as_nanos(),
    )?;
    writeln!(writer, "seq,sent_ns,delivered_ns,delivered_local_ns")?;
    for r in trace.records() {
        let d = r
            .delivered_at
            .map_or(String::new(), |t| t.as_nanos().to_string());
        let dl = r
            .delivered_local
            .map_or(String::new(), |t| t.as_nanos().to_string());
        writeln!(writer, "{},{},{},{}", r.seq, r.sent_at.as_nanos(), d, dl)?;
    }
    Ok(())
}

/// Reads a CSV trace produced by [`write_csv`] (or hand-assembled from a
/// real capture).
///
/// # Errors
///
/// Returns [`TraceReadError`] on I/O failure or malformed content.
pub fn read_csv<R: Read>(reader: R) -> Result<ArrivalTrace, TraceReadError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Metadata line.
    let meta = lines.next().ok_or_else(|| parse_err(1, "empty file"))?.1?;
    if !meta.starts_with("# accrual-fd-trace v1") {
        return Err(parse_err(1, "missing '# accrual-fd-trace v1' header"));
    }
    let mut crash = None;
    let mut horizon = None;
    let mut interval = None;
    for token in meta.split_whitespace() {
        if let Some(v) = token.strip_prefix("crash_ns=") {
            if v != "-" {
                crash = Some(Timestamp::from_nanos(parse_u64(v, 1)?));
            }
        } else if let Some(v) = token.strip_prefix("horizon_ns=") {
            horizon = Some(Timestamp::from_nanos(parse_u64(v, 1)?));
        } else if let Some(v) = token.strip_prefix("interval_ns=") {
            interval = Some(Duration::from_nanos(parse_u64(v, 1)?));
        }
    }
    let horizon = horizon.ok_or_else(|| parse_err(1, "missing horizon_ns"))?;
    let interval = interval.ok_or_else(|| parse_err(1, "missing interval_ns"))?;

    // Column header.
    let header = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing column header"))?
        .1?;
    if header.trim() != "seq,sent_ns,delivered_ns,delivered_local_ns" {
        return Err(parse_err(2, "unexpected column header"));
    }

    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(parse_err(
                line_no,
                format!("expected 4 fields, got {}", fields.len()),
            ));
        }
        let seq = parse_u64(fields[0], line_no)?;
        let sent_at = Timestamp::from_nanos(parse_u64(fields[1], line_no)?);
        let delivered_at = parse_opt(fields[2], line_no)?.map(Timestamp::from_nanos);
        let delivered_local = parse_opt(fields[3], line_no)?.map(Timestamp::from_nanos);
        records.push(HeartbeatRecord {
            seq,
            sent_at,
            delivered_at,
            delivered_local,
        });
    }
    if let Some(pair) = records.windows(2).find(|p| p[0].seq >= p[1].seq) {
        return Err(parse_err(
            0,
            format!(
                "sequence numbers not strictly ascending near seq {}",
                pair[0].seq
            ),
        ));
    }
    Ok(ArrivalTrace::new(records, crash, horizon, interval))
}

fn parse_err(line: usize, message: impl Into<String>) -> TraceReadError {
    TraceReadError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_u64(s: &str, line: usize) -> Result<u64, TraceReadError> {
    s.trim()
        .parse()
        .map_err(|_| parse_err(line, format!("invalid integer {s:?}")))
}

fn parse_opt(s: &str, line: usize) -> Result<Option<u64>, TraceReadError> {
    let s = s.trim();
    if s.is_empty() {
        Ok(None)
    } else {
        parse_u64(s, line).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::simulate;

    #[test]
    fn roundtrip_preserves_trace() {
        let scenario = Scenario::wan_jitter()
            .with_horizon(Timestamp::from_secs(30))
            .with_crash_at(Timestamp::from_secs(20));
        let trace = simulate(&scenario, 5);

        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let restored = read_csv(buf.as_slice()).unwrap();
        assert_eq!(restored, trace);
    }

    #[test]
    fn roundtrip_without_crash() {
        let trace = simulate(&Scenario::lan().with_horizon(Timestamp::from_secs(5)), 1);
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let restored = read_csv(buf.as_slice()).unwrap();
        assert_eq!(restored.crash_time(), None);
        assert_eq!(restored, trace);
    }

    #[test]
    fn lost_heartbeats_have_empty_fields() {
        let trace = ArrivalTrace::new(
            vec![HeartbeatRecord {
                seq: 1,
                sent_at: Timestamp::from_secs(1),
                delivered_at: None,
                delivered_local: None,
            }],
            None,
            Timestamp::from_secs(10),
            Duration::from_secs(1),
        );
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("1,1000000000,,"));
        assert_eq!(read_csv(buf.as_slice()).unwrap(), trace);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv("nonsense\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceReadError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_bad_field_count() {
        let text = "# accrual-fd-trace v1 crash_ns=- horizon_ns=10 interval_ns=1\n\
                    seq,sent_ns,delivered_ns,delivered_local_ns\n\
                    1,2,3\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceReadError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_bad_integer() {
        let text = "# accrual-fd-trace v1 crash_ns=- horizon_ns=10 interval_ns=1\n\
                    seq,sent_ns,delivered_ns,delivered_local_ns\n\
                    abc,2,3,4\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid integer"));
    }

    #[test]
    fn rejects_out_of_order_sequences() {
        let text = "# accrual-fd-trace v1 crash_ns=- horizon_ns=10 interval_ns=1\n\
                    seq,sent_ns,delivered_ns,delivered_local_ns\n\
                    2,2,,\n\
                    1,3,,\n";
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("ascending"));
    }

    #[test]
    fn hand_written_trace_replays() {
        use crate::replay::{replay, ReplayConfig};
        use afd_core::accrual::AccrualFailureDetector;
        use afd_core::suspicion::SuspicionLevel;

        struct Elapsed(Option<Timestamp>);
        impl AccrualFailureDetector for Elapsed {
            fn record_heartbeat(&mut self, a: Timestamp) {
                self.0 = Some(a);
            }
            fn suspicion_level(&mut self, now: Timestamp) -> SuspicionLevel {
                SuspicionLevel::clamped(
                    self.0
                        .map_or(0.0, |t| now.saturating_duration_since(t).as_secs_f64()),
                )
            }
        }

        let text =
            "# accrual-fd-trace v1 crash_ns=- horizon_ns=5000000000 interval_ns=1000000000\n\
                    seq,sent_ns,delivered_ns,delivered_local_ns\n\
                    1,1000000000,1100000000,1100000000\n\
                    2,2000000000,2100000000,2100000000\n";
        let trace = read_csv(text.as_bytes()).unwrap();
        let out = replay(
            &trace,
            &mut Elapsed(None),
            ReplayConfig::every(Duration::from_secs(1)),
        );
        assert_eq!(out.len(), 5);
        assert!((out.samples()[4].level.value() - 2.9).abs() < 1e-9);
    }
}
