//! Message-loss models.
//!
//! §5.4 of the paper motivates the κ framework with *bursts* of message
//! losses: independent (Bernoulli) loss and bursty loss behave very
//! differently for detectors that extrapolate from the last arrival. The
//! Gilbert–Elliott two-state chain is the standard burst-loss model and is
//! what experiment E8 sweeps.

use crate::error::{check_probability, ModelError};
use crate::rng::SimRng;

/// A model deciding, per message, whether the network drops it.
pub trait LossModel {
    /// `true` if the next message is lost.
    fn is_lost(&mut self, rng: &mut SimRng) -> bool;
}

impl<L: LossModel + ?Sized> LossModel for Box<L> {
    fn is_lost(&mut self, rng: &mut SimRng) -> bool {
        (**self).is_lost(rng)
    }
}

/// No message is ever lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn is_lost(&mut self, _rng: &mut SimRng) -> bool {
        false
    }
}

/// Each message is lost independently with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliLoss {
    p: f64,
}

impl BernoulliLoss {
    /// Creates an independent-loss model.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or not in `[0, 1]`; use [`try_new`](Self::try_new)
    /// to handle that as a value instead.
    pub fn new(p: f64) -> Self {
        Self::try_new(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an independent-loss model, rejecting NaN and out-of-range
    /// probabilities with a typed error.
    pub fn try_new(p: f64) -> Result<Self, ModelError> {
        Ok(BernoulliLoss {
            p: check_probability("loss probability", p)?,
        })
    }

    /// The per-message loss probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl LossModel for BernoulliLoss {
    fn is_lost(&mut self, rng: &mut SimRng) -> bool {
        rng.bernoulli(self.p)
    }
}

/// The channel state of a [`GilbertElliottLoss`] model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Low-loss state.
    Good,
    /// High-loss (burst) state.
    Bad,
}

/// The Gilbert–Elliott two-state burst-loss model.
///
/// The channel alternates between a *good* state (loss probability
/// `loss_good`, usually ≈ 0) and a *bad* state (loss probability
/// `loss_bad`, usually ≈ 1). Transitions happen per message with
/// probabilities `p_good_to_bad` and `p_bad_to_good`; the expected burst
/// length is `1 / p_bad_to_good` messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottLoss {
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    loss_good: f64,
    loss_bad: f64,
    state: ChannelState,
}

impl GilbertElliottLoss {
    /// Creates the model, starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is NaN or outside `[0, 1]`; use
    /// [`try_new`](Self::try_new) to handle that as a value instead.
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        Self::try_new(p_good_to_bad, p_bad_to_good, loss_good, loss_bad)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates the model, rejecting NaN and out-of-range probabilities with
    /// a typed error.
    pub fn try_new(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Result<Self, ModelError> {
        Ok(GilbertElliottLoss {
            p_good_to_bad: check_probability("p_good_to_bad", p_good_to_bad)?,
            p_bad_to_good: check_probability("p_bad_to_good", p_bad_to_good)?,
            loss_good: check_probability("loss_good", loss_good)?,
            loss_bad: check_probability("loss_bad", loss_bad)?,
            state: ChannelState::Good,
        })
    }

    /// A convenient burst parameterization: bursts begin with probability
    /// `burst_start` per message, last `mean_burst_len` messages on
    /// average, and drop everything while active.
    ///
    /// # Panics
    ///
    /// Panics if `burst_start` is NaN or outside `[0, 1]`, or if
    /// `mean_burst_len` is NaN or below 1; use
    /// [`try_bursts`](Self::try_bursts) to handle that as a value instead.
    pub fn bursts(burst_start: f64, mean_burst_len: f64) -> Self {
        Self::try_bursts(burst_start, mean_burst_len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The burst parameterization of [`bursts`](Self::bursts), rejecting bad
    /// parameters with a typed error.
    pub fn try_bursts(burst_start: f64, mean_burst_len: f64) -> Result<Self, ModelError> {
        if mean_burst_len.is_nan() || mean_burst_len < 1.0 {
            return Err(ModelError::BurstLengthTooShort {
                value: mean_burst_len,
            });
        }
        GilbertElliottLoss::try_new(burst_start, 1.0 / mean_burst_len, 0.0, 1.0)
    }

    /// The current channel state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// The stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        #[allow(clippy::float_cmp)]
        // lint:allow(no-float-eq, exact zero guard against division by zero)
        if denom == 0.0 {
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }
}

impl LossModel for GilbertElliottLoss {
    fn is_lost(&mut self, rng: &mut SimRng) -> bool {
        // Transition first, then apply the new state's loss probability.
        self.state = match self.state {
            ChannelState::Good if rng.bernoulli(self.p_good_to_bad) => ChannelState::Bad,
            ChannelState::Bad if rng.bernoulli(self.p_bad_to_good) => ChannelState::Good,
            s => s,
        };
        let p = match self.state {
            ChannelState::Good => self.loss_good,
            ChannelState::Bad => self.loss_bad,
        };
        rng.bernoulli(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(23)
    }

    #[test]
    fn no_loss_never_drops() {
        let mut m = NoLoss;
        let mut r = rng();
        assert!((0..100).all(|_| !m.is_lost(&mut r)));
    }

    #[test]
    fn bernoulli_matches_rate() {
        let mut m = BernoulliLoss::new(0.2);
        let mut r = rng();
        let losses = (0..50_000).filter(|_| m.is_lost(&mut r)).count();
        let rate = losses as f64 / 50_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate = {rate}");
        assert_eq!(m.probability(), 0.2);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bernoulli_rejects_bad_probability() {
        let _ = BernoulliLoss::new(1.5);
    }

    #[test]
    fn try_constructors_reject_nan_and_out_of_range() {
        use crate::error::ModelError;

        for bad in [f64::NAN, -0.5, 2.0] {
            assert!(matches!(
                BernoulliLoss::try_new(bad),
                Err(ModelError::ProbabilityOutOfRange {
                    name: "loss probability",
                    ..
                })
            ));
            assert!(matches!(
                GilbertElliottLoss::try_new(0.1, bad, 0.0, 1.0),
                Err(ModelError::ProbabilityOutOfRange {
                    name: "p_bad_to_good",
                    ..
                })
            ));
            assert!(matches!(
                GilbertElliottLoss::try_bursts(bad, 5.0),
                Err(ModelError::ProbabilityOutOfRange {
                    name: "p_good_to_bad",
                    ..
                })
            ));
        }
        for bad_len in [f64::NAN, 0.0, 0.99] {
            assert!(matches!(
                GilbertElliottLoss::try_bursts(0.1, bad_len),
                Err(ModelError::BurstLengthTooShort { .. })
            ));
        }
        assert!(BernoulliLoss::try_new(0.2).is_ok());
        assert!(GilbertElliottLoss::try_bursts(0.02, 1.0).is_ok());
    }

    #[test]
    fn gilbert_elliott_matches_stationary_rate() {
        let mut m = GilbertElliottLoss::new(0.05, 0.25, 0.0, 1.0);
        let expect = m.stationary_bad(); // 0.05 / 0.30 ≈ 0.1667 of messages lost
        let mut r = rng();
        let losses = (0..100_000).filter(|_| m.is_lost(&mut r)).count();
        let rate = losses as f64 / 100_000.0;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate = {rate}, expect {expect}"
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare run-length distribution against Bernoulli at the same
        // overall rate: mean loss-run length must be much larger.
        let mut ge = GilbertElliottLoss::bursts(0.02, 10.0);
        let rate = ge.stationary_bad();
        let mut be = BernoulliLoss::new(rate);
        let mut r1 = SimRng::seed_from_u64(31);
        let mut r2 = SimRng::seed_from_u64(37);

        fn mean_run(mut f: impl FnMut() -> bool, n: usize) -> f64 {
            let (mut runs, mut losses, mut in_run) = (0u64, 0u64, false);
            for _ in 0..n {
                let lost = f();
                if lost {
                    losses += 1;
                    if !in_run {
                        runs += 1;
                        in_run = true;
                    }
                } else {
                    in_run = false;
                }
            }
            if runs == 0 {
                0.0
            } else {
                losses as f64 / runs as f64
            }
        }

        let ge_run = mean_run(|| ge.is_lost(&mut r1), 200_000);
        let be_run = mean_run(|| be.is_lost(&mut r2), 200_000);
        assert!(
            ge_run > 3.0 * be_run,
            "expected bursty runs: GE {ge_run:.2} vs Bernoulli {be_run:.2}"
        );
    }

    #[test]
    fn burst_constructor_drops_everything_in_burst() {
        let m = GilbertElliottLoss::bursts(0.01, 5.0);
        assert_eq!(m.state(), ChannelState::Good);
        assert!((m.stationary_bad() - 0.01 / 0.21).abs() < 1e-12);
    }

    #[test]
    fn boxed_model_forwards() {
        let mut m: Box<dyn LossModel> = Box::new(NoLoss);
        assert!(!m.is_lost(&mut rng()));
    }
}
