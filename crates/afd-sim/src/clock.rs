//! Drifting local clocks (Appendix A.4 of the paper).
//!
//! The partially synchronous model assumes each process reads a *local*
//! clock whose drift relative to global time is bounded after GST:
//! `now(t′) − now(t) > θ·(t′ − t)` for some `θ > 0`. [`DriftingClock`]
//! models an affine local clock `local(t) = offset + rate·t`, which
//! satisfies that bound with `θ` slightly below `rate`.

use afd_core::time::{Duration, Timestamp};

/// An affine local clock: `local(t) = offset + rate·t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftingClock {
    offset: Duration,
    rate: f64,
}

impl DriftingClock {
    /// A clock that reads exactly global time.
    pub fn perfect() -> Self {
        DriftingClock {
            offset: Duration::ZERO,
            rate: 1.0,
        }
    }

    /// Creates a clock with the given initial `offset` and `rate`
    /// (1.0 = perfect, 1.001 = runs 0.1% fast, 0.999 = 0.1% slow).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and strictly positive (a stopped or
    /// backwards clock violates the model's progress assumption).
    pub fn new(offset: Duration, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "clock rate must be finite and positive, got {rate}"
        );
        DriftingClock { offset, rate }
    }

    /// The clock's rate relative to global time.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The clock's offset at global time zero.
    pub fn offset(&self) -> Duration {
        self.offset
    }

    /// Reads the local clock at global time `global`.
    pub fn local_time(&self, global: Timestamp) -> Timestamp {
        let scaled = Duration::from_nanos(global.as_nanos()).mul_f64(self.rate);
        Timestamp::ZERO + self.offset + scaled
    }

    /// Converts a local duration measurement back to global time units
    /// (what a `rate`-fast clock measures as `d` took `d / rate` globally).
    pub fn to_global_duration(&self, local: Duration) -> Duration {
        local.mul_f64(1.0 / self.rate)
    }
}

impl Default for DriftingClock {
    fn default() -> Self {
        DriftingClock::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn perfect_clock_is_identity() {
        let c = DriftingClock::perfect();
        assert_eq!(c.local_time(ts(5)), ts(5));
        assert_eq!(c.rate(), 1.0);
        assert_eq!(DriftingClock::default(), c);
    }

    #[test]
    fn fast_clock_runs_ahead() {
        let c = DriftingClock::new(Duration::ZERO, 1.01);
        let local = c.local_time(ts(100));
        assert_eq!(local, Timestamp::from_secs_f64(101.0));
    }

    #[test]
    fn slow_clock_lags() {
        let c = DriftingClock::new(Duration::ZERO, 0.99);
        assert_eq!(c.local_time(ts(100)), Timestamp::from_secs_f64(99.0));
    }

    #[test]
    fn offset_shifts_origin() {
        let c = DriftingClock::new(Duration::from_secs(7), 1.0);
        assert_eq!(c.local_time(Timestamp::ZERO), ts(7));
        assert_eq!(c.offset(), Duration::from_secs(7));
    }

    #[test]
    fn drift_bound_theta_holds() {
        // For any t' > t, local(t') − local(t) = rate·(t' − t) > θ·(t' − t)
        // for θ < rate.
        let c = DriftingClock::new(Duration::from_millis(3), 0.98);
        let (t1, t2) = (ts(10), ts(20));
        let elapsed_local = c.local_time(t2) - c.local_time(t1);
        let elapsed_global = t2 - t1;
        let theta = 0.97;
        assert!(elapsed_local.as_secs_f64() > theta * elapsed_global.as_secs_f64());
    }

    #[test]
    fn global_duration_roundtrip() {
        let c = DriftingClock::new(Duration::ZERO, 2.0);
        let local = Duration::from_secs(10);
        assert_eq!(c.to_global_duration(local), Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = DriftingClock::new(Duration::ZERO, 0.0);
    }
}
