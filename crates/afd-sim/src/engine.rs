//! The discrete-event simulation engine.
//!
//! [`simulate`] runs one monitored pair through a [`Scenario`]: the sender
//! broadcasts sequenced heartbeats on its local schedule until it crashes
//! (Algorithm 4's sender side), the channel delays or drops each message,
//! and every delivery is recorded with both global and monitor-local
//! timestamps. The output [`ArrivalTrace`] is the complete arrival process;
//! feeding it to detectors is the job of [`crate::replay()`].
//!
//! Separating *arrival generation* from *detector evaluation* mirrors how
//! the φ paper evaluates detectors on recorded traces, and guarantees every
//! detector/threshold in a comparison sees exactly the same network sample.

use afd_core::time::{Duration, Timestamp};

use crate::channel::Channel;
use crate::event::EventQueue;
use crate::rng::SimRng;
use crate::scenario::Scenario;
use crate::trace::{ArrivalTrace, HeartbeatRecord};

/// Engine events for the monitored-pair simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The sender attempts to broadcast the heartbeat with this sequence
    /// number.
    Send { seq: u64 },
    /// A heartbeat arrives at the monitor.
    Deliver { seq: u64 },
}

/// Runs `scenario` with the given `seed`, producing the heartbeat arrival
/// trace observed by the monitor.
///
/// Deterministic: the same `(scenario, seed)` always yields the same trace.
///
/// # Panics
///
/// Panics if the scenario's heartbeat interval is zero.
pub fn simulate(scenario: &Scenario, seed: u64) -> ArrivalTrace {
    assert!(
        !scenario.heartbeat_interval.is_zero(),
        "heartbeat interval must be positive"
    );

    // Independent random streams so that e.g. adding send jitter does not
    // perturb the channel's loss pattern.
    let mut send_rng = SimRng::derive(seed, 1);
    let mut net_rng = SimRng::derive(seed, 2);

    let mut channel = Channel::new(scenario.delay, scenario.loss);
    if let Some(ps) = scenario.partial_synchrony {
        channel = channel.with_partial_synchrony(ps);
    }

    // The nominal interval is defined on the sender's clock; convert to the
    // global spacing the rest of the system observes.
    let global_interval = scenario
        .sender_clock
        .to_global_duration(scenario.heartbeat_interval);

    let mut queue: EventQueue<Event> = EventQueue::new();
    // First heartbeat goes out after one interval (plus jitter).
    queue.schedule(
        jittered(Timestamp::ZERO + global_interval, scenario, &mut send_rng),
        Event::Send { seq: 1 },
    );

    let mut records: Vec<HeartbeatRecord> = Vec::new();

    while let Some((now, event)) = queue.pop() {
        match event {
            // Sends stop at the horizon; in-flight deliveries are allowed
            // to complete so they count as delivered, not lost.
            Event::Send { seq: _ } if now > scenario.horizon => continue,
            Event::Send { seq } => {
                let crashed = scenario.crash_at.is_some_and(|c| now >= c);
                if !crashed {
                    records.push(HeartbeatRecord {
                        seq,
                        sent_at: now,
                        delivered_at: None,
                        delivered_local: None,
                    });
                    if let Some(arrival) = channel.transmit(now, &mut net_rng) {
                        queue.schedule(arrival, Event::Deliver { seq });
                    }
                    // Schedule the next broadcast.
                    let next = jittered(now + global_interval, scenario, &mut send_rng);
                    let next = next.max(now + Duration::from_nanos(1));
                    if next <= scenario.horizon {
                        queue.schedule(next, Event::Send { seq: seq + 1 });
                    }
                }
            }
            Event::Deliver { seq } => {
                let idx = seq as usize - 1;
                let record = &mut records[idx];
                debug_assert_eq!(record.seq, seq);
                record.delivered_at = Some(now);
                record.delivered_local = Some(scenario.monitor_clock.local_time(now));
            }
        }
    }

    ArrivalTrace::new(
        records,
        scenario.crash_at,
        scenario.horizon,
        scenario.heartbeat_interval,
    )
}

/// Applies send jitter around the nominal broadcast time.
fn jittered(nominal: Timestamp, scenario: &Scenario, rng: &mut SimRng) -> Timestamp {
    let std = scenario.send_jitter_std.as_secs_f64();
    #[allow(clippy::float_cmp)]
    // lint:allow(no-float-eq, exact zero disables jitter; any nonzero std must sample)
    if std == 0.0 {
        return nominal;
    }
    let offset = rng.normal(0.0, std);
    if offset >= 0.0 {
        nominal + Duration::from_secs_f64(offset)
    } else {
        nominal
            .checked_sub(Duration::from_secs_f64(-offset))
            .unwrap_or(nominal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftingClock;
    use crate::delay::ConstantDelay;
    use crate::loss::{BernoulliLoss, NoLoss};
    use crate::scenario::{DelayKind, LossKind};

    fn quiet_scenario() -> Scenario {
        Scenario {
            send_jitter_std: Duration::ZERO,
            delay: DelayKind::Constant(ConstantDelay::new(Duration::from_millis(10))),
            loss: LossKind::None(NoLoss),
            ..Scenario::lan()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = Scenario::wan_jitter().with_horizon(Timestamp::from_secs(60));
        let a = simulate(&s, 42);
        let b = simulate(&s, 42);
        assert_eq!(a, b);
        let c = simulate(&s, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn quiet_run_delivers_everything_on_schedule() {
        let s = quiet_scenario().with_horizon(Timestamp::from_secs(10));
        let t = simulate(&s, 1);
        // 100 ms interval over 10 s → ~99 heartbeats (first at t=0.1).
        assert!(
            t.sent_count() >= 98 && t.sent_count() <= 100,
            "{}",
            t.sent_count()
        );
        assert_eq!(t.loss_rate(), 0.0);
        for r in t.records() {
            assert_eq!(r.delivered_at, Some(r.sent_at + Duration::from_millis(10)));
        }
        // Inter-arrival times equal the interval exactly.
        for gap in t.inter_arrival_seconds() {
            assert!((gap - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn crash_stops_heartbeats() {
        let s = quiet_scenario()
            .with_horizon(Timestamp::from_secs(10))
            .with_crash_at(Timestamp::from_secs(5));
        let t = simulate(&s, 1);
        assert!(t
            .records()
            .iter()
            .all(|r| r.sent_at < Timestamp::from_secs(5)));
        assert!(
            t.sent_count() >= 48 && t.sent_count() <= 50,
            "{}",
            t.sent_count()
        );
        assert_eq!(t.crash_time(), Some(Timestamp::from_secs(5)));
    }

    #[test]
    fn loss_rate_matches_model() {
        let s = Scenario {
            loss: LossKind::Bernoulli(BernoulliLoss::new(0.2)),
            ..quiet_scenario()
        }
        .with_horizon(Timestamp::from_secs(600));
        let t = simulate(&s, 7);
        assert!(
            (t.loss_rate() - 0.2).abs() < 0.02,
            "loss = {}",
            t.loss_rate()
        );
    }

    #[test]
    fn sender_drift_stretches_global_spacing() {
        // A sender whose clock runs 10% fast sends (globally) every
        // interval/1.1 ≈ 90.9 ms.
        let s = Scenario {
            sender_clock: DriftingClock::new(Duration::ZERO, 1.1),
            ..quiet_scenario()
        }
        .with_horizon(Timestamp::from_secs(10));
        let t = simulate(&s, 1);
        let gaps = t.inter_arrival_seconds();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 0.0909).abs() < 0.001, "mean gap = {mean}");
    }

    #[test]
    fn monitor_drift_shows_in_local_times() {
        let s = Scenario {
            monitor_clock: DriftingClock::new(Duration::from_secs(100), 1.0),
            ..quiet_scenario()
        }
        .with_horizon(Timestamp::from_secs(5));
        let t = simulate(&s, 1);
        let r = &t.records()[0];
        assert_eq!(
            r.delivered_local.unwrap(),
            r.delivered_at.unwrap() + Duration::from_secs(100)
        );
    }

    #[test]
    fn no_event_after_horizon() {
        let s = quiet_scenario().with_horizon(Timestamp::from_secs(3));
        let t = simulate(&s, 1);
        for r in t.records() {
            assert!(r.sent_at <= t.horizon());
            if let Some(d) = r.delivered_at {
                assert!(d <= t.horizon() + Duration::from_secs(1));
            }
        }
    }

    #[test]
    fn seq_numbers_are_dense_and_ascending() {
        let s = Scenario::wan_jitter().with_horizon(Timestamp::from_secs(30));
        let t = simulate(&s, 99);
        for (i, r) in t.records().iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
    }
}
