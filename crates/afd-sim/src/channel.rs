//! A unidirectional message channel: loss, delay, and partial synchrony.

use afd_core::time::{Duration, Timestamp};

use crate::delay::DelayModel;
use crate::loss::LossModel;
use crate::rng::SimRng;

/// Pre-GST chaos for the partially synchronous model (Appendix A.4).
///
/// Before the global stabilization time, message delays and losses are
/// unbounded in the model; we approximate that with extra uniform delay and
/// extra independent loss that both vanish at GST. After GST the channel's
/// base models apply unchanged, giving the bounded `Δ` the proofs use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialSynchrony {
    /// The global stabilization time.
    pub gst: Timestamp,
    /// Maximum extra delay added to messages sent before GST.
    pub pre_gst_extra_delay: Duration,
    /// Extra independent loss probability for messages sent before GST.
    pub pre_gst_loss: f64,
}

impl PartialSynchrony {
    /// Creates the pre-GST chaos configuration.
    ///
    /// # Panics
    ///
    /// Panics if `pre_gst_loss` is outside `[0, 1]`.
    pub fn new(gst: Timestamp, pre_gst_extra_delay: Duration, pre_gst_loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pre_gst_loss),
            "pre-GST loss must be in [0, 1], got {pre_gst_loss}"
        );
        PartialSynchrony {
            gst,
            pre_gst_extra_delay,
            pre_gst_loss,
        }
    }
}

/// A unidirectional channel combining a delay model, a loss model, and
/// optional pre-GST chaos.
///
/// # Examples
///
/// ```
/// use afd_core::time::{Duration, Timestamp};
/// use afd_sim::channel::Channel;
/// use afd_sim::delay::ConstantDelay;
/// use afd_sim::loss::NoLoss;
/// use afd_sim::rng::SimRng;
///
/// let mut ch = Channel::new(ConstantDelay::new(Duration::from_millis(10)), NoLoss);
/// let mut rng = SimRng::seed_from_u64(1);
/// let arrival = ch.transmit(Timestamp::from_secs(1), &mut rng);
/// assert_eq!(arrival, Some(Timestamp::from_secs(1) + Duration::from_millis(10)));
/// ```
#[derive(Debug, Clone)]
pub struct Channel<D, L> {
    delay: D,
    loss: L,
    partial_synchrony: Option<PartialSynchrony>,
}

impl<D: DelayModel, L: LossModel> Channel<D, L> {
    /// Creates a channel with the given delay and loss models and no
    /// pre-GST chaos.
    pub fn new(delay: D, loss: L) -> Self {
        Channel {
            delay,
            loss,
            partial_synchrony: None,
        }
    }

    /// Adds pre-GST chaos to the channel.
    pub fn with_partial_synchrony(mut self, ps: PartialSynchrony) -> Self {
        self.partial_synchrony = Some(ps);
        self
    }

    /// Transmits a message sent at `sent_at`; returns its arrival time, or
    /// `None` if the network drops it.
    pub fn transmit(&mut self, sent_at: Timestamp, rng: &mut SimRng) -> Option<Timestamp> {
        let mut extra = Duration::ZERO;
        if let Some(ps) = &self.partial_synchrony {
            if sent_at < ps.gst {
                if rng.bernoulli(ps.pre_gst_loss) {
                    return None;
                }
                let max = ps.pre_gst_extra_delay.as_secs_f64();
                extra = Duration::from_secs_f64(rng.uniform_in(0.0, max.max(f64::MIN_POSITIVE)));
            }
        }
        if self.loss.is_lost(rng) {
            return None;
        }
        let delay = self.delay.sample(rng);
        Some(sent_at + delay + extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{ConstantDelay, NormalDelay};
    use crate::loss::{BernoulliLoss, NoLoss};

    fn rng() -> SimRng {
        SimRng::seed_from_u64(3)
    }

    #[test]
    fn lossless_constant_channel_is_deterministic() {
        let mut ch = Channel::new(ConstantDelay::new(Duration::from_millis(5)), NoLoss);
        let mut r = rng();
        for s in 0..10u64 {
            let sent = Timestamp::from_secs(s);
            assert_eq!(
                ch.transmit(sent, &mut r),
                Some(sent + Duration::from_millis(5))
            );
        }
    }

    #[test]
    fn lossy_channel_drops_at_rate() {
        let mut ch = Channel::new(
            ConstantDelay::new(Duration::from_millis(5)),
            BernoulliLoss::new(0.3),
        );
        let mut r = rng();
        let delivered = (0..20_000)
            .filter(|_| ch.transmit(Timestamp::from_secs(1), &mut r).is_some())
            .count();
        let rate = delivered as f64 / 20_000.0;
        assert!((rate - 0.7).abs() < 0.02, "delivery rate = {rate}");
    }

    #[test]
    fn pre_gst_chaos_vanishes_after_gst() {
        let ps = PartialSynchrony::new(Timestamp::from_secs(100), Duration::from_secs(5), 0.5);
        let mut ch = Channel::new(ConstantDelay::new(Duration::from_millis(10)), NoLoss)
            .with_partial_synchrony(ps);
        let mut r = rng();

        // Before GST: extra delay and loss both visible.
        let mut lost = 0;
        let mut max_delay = Duration::ZERO;
        for _ in 0..2000 {
            match ch.transmit(Timestamp::from_secs(1), &mut r) {
                None => lost += 1,
                Some(arrival) => {
                    max_delay = max_delay.max(arrival - Timestamp::from_secs(1));
                }
            }
        }
        assert!(lost > 800, "pre-GST loss should be ~50%, saw {lost}/2000");
        assert!(
            max_delay > Duration::from_secs(1),
            "expected inflated delays"
        );

        // After GST: deterministic again.
        let sent = Timestamp::from_secs(100);
        assert_eq!(
            ch.transmit(sent, &mut r),
            Some(sent + Duration::from_millis(10))
        );
    }

    #[test]
    fn arrival_order_can_invert_with_jitter() {
        // With large jitter relative to spacing, a later send can arrive
        // earlier — the reordering Algorithm 4's sequence check handles.
        let mut ch = Channel::new(
            NormalDelay::new(
                Duration::from_millis(100),
                Duration::from_millis(80),
                Duration::from_millis(1),
            ),
            NoLoss,
        );
        let mut r = rng();
        let mut inversions = 0;
        let mut prev_arrival: Option<Timestamp> = None;
        for k in 0..1000u64 {
            let sent = Timestamp::from_millis(10 * k);
            let arrival = ch.transmit(sent, &mut r).unwrap();
            if let Some(p) = prev_arrival {
                if arrival < p {
                    inversions += 1;
                }
            }
            prev_arrival = Some(arrival);
        }
        assert!(inversions > 0, "expected at least one reordering");
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn partial_synchrony_validates_loss() {
        let _ = PartialSynchrony::new(Timestamp::ZERO, Duration::ZERO, 2.0);
    }
}
