//! Run traces: everything a simulated monitoring run produced.

use afd_core::time::{Duration, Timestamp};

/// One heartbeat's journey through the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatRecord {
    /// The heartbeat's sequence number (1-based, as in Algorithm 4).
    pub seq: u64,
    /// When the sender broadcast it (global time).
    pub sent_at: Timestamp,
    /// When the monitor received it (global time), or `None` if lost or
    /// still in flight at the horizon.
    pub delivered_at: Option<Timestamp>,
    /// The delivery time on the monitor's local clock.
    pub delivered_local: Option<Timestamp>,
}

/// The heartbeat arrival process of one monitored pair over one run.
///
/// Produced by [`crate::engine::simulate`]; consumed by
/// [`crate::replay::replay`], which feeds it to any accrual detector.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    records: Vec<HeartbeatRecord>,
    crash_time: Option<Timestamp>,
    horizon: Timestamp,
    interval: Duration,
}

impl ArrivalTrace {
    /// Assembles a trace.
    ///
    /// # Panics
    ///
    /// Panics if records are not in ascending `seq` order.
    pub fn new(
        records: Vec<HeartbeatRecord>,
        crash_time: Option<Timestamp>,
        horizon: Timestamp,
        interval: Duration,
    ) -> Self {
        for pair in records.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "heartbeat records must be in ascending seq order"
            );
        }
        ArrivalTrace {
            records,
            crash_time,
            horizon,
            interval,
        }
    }

    /// All heartbeat records, in send order.
    pub fn records(&self) -> &[HeartbeatRecord] {
        &self.records
    }

    /// The sender's crash time (global), if it crashed.
    pub fn crash_time(&self) -> Option<Timestamp> {
        self.crash_time
    }

    /// The end of the simulated run (global time).
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// The nominal heartbeat interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Delivered heartbeats as `(seq, local arrival time)`, sorted by
    /// arrival time (the order the monitor experiences, which can differ
    /// from send order under jitter).
    pub fn deliveries_in_arrival_order(&self) -> Vec<(u64, Timestamp)> {
        let mut v: Vec<(u64, Timestamp)> = self
            .records
            .iter()
            .filter_map(|r| r.delivered_local.map(|t| (r.seq, t)))
            .collect();
        v.sort_by_key(|&(seq, t)| (t, seq));
        v
    }

    /// Number of heartbeats sent.
    pub fn sent_count(&self) -> usize {
        self.records.len()
    }

    /// Number of heartbeats delivered.
    pub fn delivered_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.delivered_at.is_some())
            .count()
    }

    /// The fraction of sent heartbeats that never arrived.
    pub fn loss_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        1.0 - self.delivered_count() as f64 / self.sent_count() as f64
    }

    /// Inter-arrival times (seconds) between consecutive *deliveries*, in
    /// arrival order — the samples an adaptive detector estimates from.
    pub fn inter_arrival_seconds(&self) -> Vec<f64> {
        let deliveries = self.deliveries_in_arrival_order();
        deliveries
            .windows(2)
            .map(|w| (w[1].1 - w[0].1).as_secs_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, sent_s: u64, delivered_ms: Option<u64>) -> HeartbeatRecord {
        HeartbeatRecord {
            seq,
            sent_at: Timestamp::from_secs(sent_s),
            delivered_at: delivered_ms.map(Timestamp::from_millis),
            delivered_local: delivered_ms.map(Timestamp::from_millis),
        }
    }

    fn trace() -> ArrivalTrace {
        ArrivalTrace::new(
            vec![
                record(1, 1, Some(1_100)),
                record(2, 2, None),
                record(3, 3, Some(3_300)),
                record(4, 4, Some(4_050)),
            ],
            Some(Timestamp::from_secs(10)),
            Timestamp::from_secs(60),
            Duration::from_secs(1),
        )
    }

    #[test]
    fn counts_and_loss_rate() {
        let t = trace();
        assert_eq!(t.sent_count(), 4);
        assert_eq!(t.delivered_count(), 3);
        assert!((t.loss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn deliveries_sorted_by_arrival() {
        let mut records = vec![
            record(1, 1, Some(5_000)), // arrives late
            record(2, 2, Some(2_500)), // overtakes
        ];
        records[0].delivered_local = Some(Timestamp::from_millis(5_000));
        let t = ArrivalTrace::new(
            records,
            None,
            Timestamp::from_secs(60),
            Duration::from_secs(1),
        );
        let d = t.deliveries_in_arrival_order();
        assert_eq!(d[0].0, 2);
        assert_eq!(d[1].0, 1);
    }

    #[test]
    fn inter_arrival_times() {
        let t = trace();
        let gaps = t.inter_arrival_seconds();
        assert_eq!(gaps.len(), 2);
        assert!((gaps[0] - 2.2).abs() < 1e-9);
        assert!((gaps[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = ArrivalTrace::new(Vec::new(), None, Timestamp::ZERO, Duration::from_secs(1));
        assert_eq!(t.loss_rate(), 0.0);
        assert!(t.inter_arrival_seconds().is_empty());
    }

    #[test]
    #[should_panic(expected = "ascending seq order")]
    fn unordered_records_rejected() {
        let _ = ArrivalTrace::new(
            vec![record(2, 1, None), record(1, 2, None)],
            None,
            Timestamp::ZERO,
            Duration::from_secs(1),
        );
    }

    #[test]
    fn accessors() {
        let t = trace();
        assert_eq!(t.crash_time(), Some(Timestamp::from_secs(10)));
        assert_eq!(t.horizon(), Timestamp::from_secs(60));
        assert_eq!(t.interval(), Duration::from_secs(1));
        assert_eq!(t.records().len(), 4);
    }
}
