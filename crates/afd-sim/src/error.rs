//! Typed construction errors for the network models.
//!
//! Every loss/delay model offers a fallible `try_new` constructor returning
//! [`ModelError`]; the panicking `new` constructors delegate to it. Callers
//! assembling scenarios from untrusted configuration (files, CLI flags)
//! should prefer `try_new` so a bad parameter surfaces as a value instead of
//! a panic. NaN parameters are always rejected: a NaN probability fails the
//! `[0, 1]` range check, and a NaN burst length fails the `≥ 1` check.

use std::error::Error;
use std::fmt;

use afd_core::time::Duration;

/// A network-model parameter was rejected at construction time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelError {
    /// A probability parameter was NaN or outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value (possibly NaN).
        value: f64,
    },
    /// A mean burst length was NaN or below one message.
    BurstLengthTooShort {
        /// The offending value (possibly NaN).
        value: f64,
    },
    /// A uniform delay range had `min > max`.
    InvertedDelayRange {
        /// The lower bound supplied.
        min: Duration,
        /// The upper bound supplied.
        max: Duration,
    },
    /// A truncated-normal delay floor exceeded its mean.
    FloorAboveMean {
        /// The truncation floor supplied.
        floor: Duration,
        /// The mean supplied.
        mean: Duration,
    },
    /// A shifted-exponential mean excess was zero.
    ZeroMeanExcess,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelError::ProbabilityOutOfRange { name, value } => {
                write!(f, "{name} must be in [0, 1], got {value}")
            }
            ModelError::BurstLengthTooShort { value } => {
                write!(f, "mean burst length must be ≥ 1 message, got {value}")
            }
            ModelError::InvertedDelayRange { min, max } => {
                write!(
                    f,
                    "uniform delay needs min ≤ max, got min {min} > max {max}"
                )
            }
            ModelError::FloorAboveMean { floor, mean } => {
                write!(
                    f,
                    "delay floor must not exceed the mean, got floor {floor} > mean {mean}"
                )
            }
            ModelError::ZeroMeanExcess => write!(f, "mean excess must be positive"),
        }
    }
}

impl Error for ModelError {}

/// Validates one named probability parameter.
pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<f64, ModelError> {
    // `contains` is false for NaN, so NaN is rejected here too.
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ModelError::ProbabilityOutOfRange { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_check_accepts_bounds() {
        assert_eq!(check_probability("p", 0.0), Ok(0.0));
        assert_eq!(check_probability("p", 1.0), Ok(1.0));
        assert_eq!(check_probability("p", 0.5), Ok(0.5));
    }

    #[test]
    fn probability_check_rejects_nan_and_out_of_range() {
        for bad in [f64::NAN, -0.1, 1.1, f64::INFINITY, f64::NEG_INFINITY] {
            let err = check_probability("p", bad).unwrap_err();
            assert!(matches!(
                err,
                ModelError::ProbabilityOutOfRange { name: "p", .. }
            ));
        }
    }

    #[test]
    fn display_messages_name_the_constraint() {
        let e = check_probability("loss probability", 1.5).unwrap_err();
        assert_eq!(e.to_string(), "loss probability must be in [0, 1], got 1.5");
        let e = ModelError::InvertedDelayRange {
            min: Duration::from_secs(2),
            max: Duration::from_secs(1),
        };
        assert!(e.to_string().contains("min ≤ max"));
        let e = ModelError::FloorAboveMean {
            floor: Duration::from_secs(2),
            mean: Duration::from_secs(1),
        };
        assert!(e.to_string().contains("must not exceed the mean"));
        assert_eq!(
            ModelError::ZeroMeanExcess.to_string(),
            "mean excess must be positive"
        );
        let e = ModelError::BurstLengthTooShort { value: 0.5 };
        assert!(e.to_string().contains("≥ 1 message"));
    }

    #[test]
    fn model_error_is_std_error() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&ModelError::ZeroMeanExcess);
    }
}
