//! Deterministic discrete-event network simulator for failure detectors.
//!
//! The paper's detectors are pure functions of heartbeat arrival times;
//! this crate generates those arrival processes under controlled, seeded
//! network conditions so that every property, theorem, and QoS claim can be
//! checked reproducibly:
//!
//! - [`event`]: the future-event queue driving simulations.
//! - [`rng`]: seeded randomness (uniform/normal/exponential/Bernoulli).
//! - [`clock`]: drifting local clocks (Appendix A.4's partially
//!   synchronous model).
//! - [`delay`] / [`loss`] / [`channel`]: network models — constant, uniform,
//!   normal, and shifted-exponential delay; Bernoulli and Gilbert–Elliott
//!   burst loss; pre-GST chaos.
//! - [`scenario`]: declarative run configurations with named presets
//!   (`lan`, `wan_jitter`, `bursty_loss`, `partially_synchronous`).
//! - [`engine`]: runs a scenario into an [`trace::ArrivalTrace`].
//! - [`replay`](mod@replay): drives any accrual detector over a recorded trace,
//!   yielding the suspicion-level history (with Algorithm 4's stale-
//!   heartbeat filtering).
//!
//! # Example
//!
//! ```
//! use afd_core::time::{Duration, Timestamp};
//! use afd_sim::engine::simulate;
//! use afd_sim::scenario::Scenario;
//!
//! let scenario = Scenario::lan().with_crash_at(Timestamp::from_secs(30));
//! let trace = simulate(&scenario, 42);
//! assert!(trace.sent_count() > 0);
//! assert!(trace.records().iter().all(|r| r.sent_at < Timestamp::from_secs(30)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod channel;
pub mod clock;
pub mod delay;
pub mod engine;
pub mod error;
pub mod event;
pub mod loss;
pub mod replay;
pub mod rng;
pub mod scenario;
pub mod trace;
pub mod trace_io;

pub use engine::simulate;
pub use error::ModelError;
pub use replay::{replay, ReplayConfig};
pub use scenario::Scenario;
pub use trace::ArrivalTrace;
pub use trace_io::{read_csv, write_csv};
