//! Property-based tests for the simulator: determinism, model fidelity,
//! and structural invariants of generated traces.

use afd_core::time::{Duration, Timestamp};
use afd_sim::delay::{ConstantDelay, NormalDelay};
use afd_sim::loss::BernoulliLoss;
use afd_sim::scenario::{DelayKind, LossKind, Scenario};
use afd_sim::simulate;
use proptest::prelude::*;

fn scenario(
    interval_ms: u64,
    delay_ms: u64,
    jitter_ms: u64,
    loss: f64,
    horizon_s: u64,
) -> Scenario {
    let delay = if jitter_ms == 0 {
        DelayKind::Constant(ConstantDelay::new(Duration::from_millis(delay_ms)))
    } else {
        DelayKind::Normal(NormalDelay::new(
            Duration::from_millis(delay_ms.max(jitter_ms)),
            Duration::from_millis(jitter_ms),
            Duration::from_millis(1),
        ))
    };
    Scenario {
        heartbeat_interval: Duration::from_millis(interval_ms),
        send_jitter_std: Duration::ZERO,
        delay,
        loss: LossKind::Bernoulli(BernoulliLoss::new(loss)),
        ..Scenario::lan()
    }
    .with_horizon(Timestamp::from_secs(horizon_s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical (scenario, seed) pairs always produce identical traces;
    /// different seeds produce different ones (for non-trivial runs).
    #[test]
    fn determinism(
        interval in 50u64..2_000,
        jitter in 0u64..50,
        loss in 0.0..0.4f64,
        seed in 0u64..1_000,
    ) {
        let s = scenario(interval, 50, jitter, loss, 60);
        let a = simulate(&s, seed);
        let b = simulate(&s, seed);
        prop_assert_eq!(&a, &b);
    }

    /// Structural invariants: dense ascending sequence numbers, sends
    /// within the horizon, deliveries after sends, monotone send times.
    #[test]
    fn trace_structure(
        interval in 50u64..2_000,
        jitter in 0u64..80,
        loss in 0.0..0.5f64,
        seed in 0u64..500,
        crash in proptest::option::of(5u64..55),
    ) {
        let mut s = scenario(interval, 60, jitter, loss, 60);
        if let Some(c) = crash {
            s = s.with_crash_at(Timestamp::from_secs(c));
        }
        let t = simulate(&s, seed);
        let mut prev_sent = Timestamp::ZERO;
        for (i, r) in t.records().iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1, "dense sequence numbers");
            prop_assert!(r.sent_at <= t.horizon());
            prop_assert!(r.sent_at >= prev_sent, "monotone sends");
            prev_sent = r.sent_at;
            if let Some(c) = s.crash_at {
                prop_assert!(r.sent_at < c, "no sends after the crash");
            }
            if let Some(d) = r.delivered_at {
                prop_assert!(d >= r.sent_at, "delivery after send");
            }
            prop_assert_eq!(r.delivered_at.is_some(), r.delivered_local.is_some());
        }
    }

    /// The observed loss rate tracks the Bernoulli model within sampling
    /// error on long runs.
    #[test]
    fn loss_rate_fidelity(loss in 0.0..0.5f64, seed in 0u64..100) {
        let s = scenario(100, 10, 0, loss, 600); // ~6000 heartbeats
        let t = simulate(&s, seed);
        let n = t.sent_count() as f64;
        prop_assume!(n > 1_000.0);
        // Binomial-proportion band. Proptest samples hundreds of
        // (loss, seed) points per run, so the bound must survive the
        // multiple-comparison effect: 6σ makes a false failure vanishingly
        // rare while still catching any real model bias.
        let sigma = (loss * (1.0 - loss) / n).sqrt();
        prop_assert!(
            (t.loss_rate() - loss).abs() <= 6.0 * sigma + 1e-9,
            "loss {} vs model {} (σ = {})",
            t.loss_rate(),
            loss,
            sigma
        );
    }

    /// Mean inter-arrival time tracks the heartbeat interval on lossless
    /// constant-delay runs.
    #[test]
    fn cadence_fidelity(interval in 100u64..1_000, seed in 0u64..100) {
        let s = scenario(interval, 20, 0, 0.0, 120);
        let t = simulate(&s, seed);
        let gaps = t.inter_arrival_seconds();
        prop_assume!(gaps.len() > 10);
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        prop_assert!(
            (mean - interval as f64 / 1_000.0).abs() < 1e-6,
            "mean gap {mean} vs interval {interval} ms"
        );
    }

    /// CSV round-trips are lossless for arbitrary simulated traces.
    #[test]
    fn csv_roundtrip(
        loss in 0.0..0.5f64,
        jitter in 0u64..80,
        seed in 0u64..200,
        crash in proptest::option::of(5u64..55),
    ) {
        let mut s = scenario(250, 40, jitter, loss, 60);
        if let Some(c) = crash {
            s = s.with_crash_at(Timestamp::from_secs(c));
        }
        let t = simulate(&s, seed);
        let mut buf = Vec::new();
        afd_sim::write_csv(&t, &mut buf).unwrap();
        let restored = afd_sim::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(restored, t);
    }
}
