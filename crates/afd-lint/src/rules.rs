//! The nine project-invariant rules, run over a file's token stream.
//!
//! Each rule is a scoped token-pattern check. The scopes encode *why* the
//! invariant exists:
//!
//! | rule | invariant protected |
//! |------|---------------------|
//! | `clock-discipline` | real time enters only through `afd-runtime/src/clock.rs`, so every component is drivable by `VirtualClock` |
//! | `no-panic-paths` | the detector stack (`afd-core`, `afd-runtime`, `afd-obs`) degrades through typed errors, never aborts |
//! | `no-float-eq` | suspicion levels are `f64`; exact comparison is a latent bug unless justified |
//! | `no-thread-sleep` | library code waits on the `Clock`/callback abstractions, keeping the chaos harness deterministic |
//! | `relaxed-atomics-audit` | every `Ordering::Relaxed` read-modify-write in `afd-obs` or `afd-runtime` carries a written justification |
//! | `crate-hygiene` | every crate root forbids `unsafe_code` |
//! | `no-alloc-in-hot-path` | the per-frame intake files stay heap-allocation-free in steady state (`to_vec`/`Vec::new`/`vec!` need a written justification) |
//! | `io-discipline` | filesystem access in `afd-runtime` happens only in `persist.rs`, so crash-safe install (tmp → fsync → rename) cannot be bypassed |
//! | `determinism-discipline` | the model checker and the script replay harness never iterate `RandomState`-seeded containers, so explored-state counts and minimized counterexamples are bit-reproducible across runs and machines |
//!
//! Any rule can be silenced per line with `// lint:allow(rule, reason)` —
//! see [`crate::pragma`]. A malformed pragma is reported under the
//! synthetic rule name `invalid-pragma`.

use crate::context::FileContext;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::pragma;

/// The rule names a pragma may reference.
pub const RULE_NAMES: &[&str] = &[
    "clock-discipline",
    "no-panic-paths",
    "no-float-eq",
    "no-thread-sleep",
    "relaxed-atomics-audit",
    "crate-hygiene",
    "no-alloc-in-hot-path",
    "io-discipline",
    "determinism-discipline",
];

/// Crates whose library code must be panic-free.
const NO_PANIC_CRATES: &[&str] = &["afd-core", "afd-runtime", "afd-obs"];

/// The one file allowed to read the OS clock.
const CLOCK_MODULE: &str = "crates/afd-runtime/src/clock.rs";

/// Atomic read-modify-write methods subject to the relaxed-ordering audit.
const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "swap",
];

/// Lints one file: lexes nothing (tokens come in pre-lexed), applies every
/// rule in scope, resolves pragmas, and returns `(unsuppressed findings,
/// suppressed count)`.
pub fn lint_tokens(ctx: &FileContext, tokens: &[Token]) -> (Vec<Finding>, usize) {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    clock_discipline(ctx, &code, &mut raw);
    no_panic_paths(ctx, &code, &mut raw);
    no_float_eq(ctx, &code, &mut raw);
    no_thread_sleep(ctx, &code, &mut raw);
    relaxed_atomics_audit(ctx, &code, &mut raw);
    crate_hygiene(ctx, &code, &mut raw);
    no_alloc_in_hot_path(ctx, &code, &mut raw);
    io_discipline(ctx, &code, &mut raw);
    determinism_discipline(ctx, &code, &mut raw);

    let (pragmas, pragma_errors) = pragma::collect(tokens);
    let mut suppressed = 0usize;
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let covered = pragmas.iter().any(|p| p.covers(f.rule, f.line));
            if covered {
                suppressed += 1;
            }
            !covered
        })
        .collect();
    for err in pragma_errors {
        findings.push(Finding {
            rule: "invalid-pragma",
            path: ctx.path.clone(),
            line: err.line,
            col: err.col,
            message: err.message,
        });
    }
    findings.sort_by_key(|f| (f.line, f.col));
    (findings, suppressed)
}

/// Convenience for tests and the driver: lex + context + lint in one call.
pub fn lint_source(path: &str, src: &str) -> (Vec<Finding>, usize) {
    let tokens = crate::lexer::lex(src);
    let ctx = FileContext::new(path, &tokens);
    lint_tokens(&ctx, &tokens)
}

fn finding(ctx: &FileContext, rule: &'static str, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// `Instant::now` / `SystemTime::now` anywhere outside the clock module.
/// `Instant::now()` is the *only* way to mint an `Instant`, so policing the
/// acquisition point is sufficient — downstream `.elapsed()` calls cannot
/// exist without one.
fn clock_discipline(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if ctx.path == CLOCK_MODULE {
        return;
    }
    for w in code.windows(3) {
        let [a, b, c] = w else { continue };
        if (a.text == "Instant" || a.text == "SystemTime")
            && a.kind == TokenKind::Ident
            && b.text == "::"
            && c.text == "now"
            && !ctx.is_test_line(a.line)
        {
            out.push(finding(
                ctx,
                "clock-discipline",
                a,
                format!(
                    "raw `{}::now` outside {CLOCK_MODULE}; route time through the `Clock` \
                     trait so this code runs under `VirtualClock`",
                    a.text
                ),
            ));
        }
    }
}

/// `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` in
/// library code of the no-panic crates.
fn no_panic_paths(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if !NO_PANIC_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || !ctx.is_library_line(tok.line) {
            continue;
        }
        let next = |n: usize| code.get(i + n).map(|t| t.text.as_str());
        match tok.text.as_str() {
            "unwrap" | "expect" if i > 0 && code[i - 1].text == "." && next(1) == Some("(") => {
                out.push(finding(
                    ctx,
                    "no-panic-paths",
                    tok,
                    format!(
                        "`.{}()` in {} library code; return a typed error or make the \
                         invariant explicit (`let … else` + `debug_assert!`)",
                        tok.text, ctx.crate_name
                    ),
                ));
            }
            "panic" | "todo" | "unimplemented" if next(1) == Some("!") => {
                out.push(finding(
                    ctx,
                    "no-panic-paths",
                    tok,
                    format!(
                        "`{}!` in {} library code; degrade through a typed error instead \
                         of aborting the detector stack",
                        tok.text, ctx.crate_name
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// `==` / `!=` with a float operand. Token-level type inference is out of
/// scope, so the check is literal-driven: a float literal (or an `f32::` /
/// `f64::` associated constant) on either side of the comparison.
fn no_float_eq(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Punct || (tok.text != "==" && tok.text != "!=") {
            continue;
        }
        if ctx.is_test_line(tok.line) {
            continue;
        }
        let left_float = i > 0 && code[i - 1].kind == TokenKind::Float;
        // Rightward: skip unary minus and open parens.
        let mut j = i + 1;
        while code.get(j).is_some_and(|t| t.text == "-" || t.text == "(") {
            j += 1;
        }
        let right_float = code.get(j).is_some_and(|t| {
            t.kind == TokenKind::Float
                || (matches!(t.text.as_str(), "f32" | "f64")
                    && code.get(j + 1).is_some_and(|n| n.text == "::"))
        });
        if left_float || right_float {
            out.push(finding(
                ctx,
                "no-float-eq",
                tok,
                "exact float comparison; suspicion levels are f64 — compare with a \
                 tolerance, use `total_cmp`, or justify an exact guard with a pragma"
                    .to_string(),
            ));
        }
    }
}

/// `thread::sleep` in library code. The sender/retry machinery takes
/// injected `sleep` callbacks precisely so production wiring chooses real
/// sleeping while the chaos harness stays on virtual time; a direct call
/// hard-wires the wall clock.
fn no_thread_sleep(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    for w in code.windows(3) {
        let [a, b, c] = w else { continue };
        if a.text == "thread"
            && a.kind == TokenKind::Ident
            && b.text == "::"
            && c.text == "sleep"
            && ctx.is_library_line(a.line)
        {
            out.push(finding(
                ctx,
                "no-thread-sleep",
                a,
                "`thread::sleep` in library code; accept a sleep callback or wait on the \
                 `Clock` abstraction so the chaos harness stays deterministic"
                    .to_string(),
            ));
        }
    }
}

/// Crates whose lock-free code is audited: the metrics registry and the
/// runtime (liveness ticks, the sharded monitor's epoch snapshots).
const RELAXED_AUDIT_CRATES: &[&str] = &["afd-obs", "afd-runtime"];

/// Read-modify-write atomics with `Ordering::Relaxed` in the audited
/// crates require a pragma: relaxed RMWs are usually right for monotone
/// counters, but each one deserves a written claim about why no ordering
/// is needed.
fn relaxed_atomics_audit(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if !RELAXED_AUDIT_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident
            || !RMW_METHODS.contains(&tok.text.as_str())
            || !ctx.is_library_line(tok.line)
            || code.get(i + 1).map(|t| t.text.as_str()) != Some("(")
        {
            continue;
        }
        // Scan the balanced argument list for a `Relaxed` identifier.
        let mut depth = 0usize;
        let mut relaxed = false;
        for t in &code[i + 1..] {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                "Relaxed" if t.kind == TokenKind::Ident => relaxed = true,
                _ => {}
            }
        }
        if relaxed {
            out.push(finding(
                ctx,
                "relaxed-atomics-audit",
                tok,
                format!(
                    "`{}` with `Ordering::Relaxed`; state why no ordering is required with \
                     `// lint:allow(relaxed-atomics-audit, reason)`",
                    tok.text
                ),
            ));
        }
    }
}

/// Files on the per-frame intake hot path: every heartbeat flows through
/// them, so a steady-state heap allocation here is per-frame garbage. The
/// batched intake pipeline (`FrameBatch` arenas, SPSC rings, epoch
/// snapshots) is allocation-free by design; this rule keeps it that way.
const HOT_PATH_FILES: &[&str] = &[
    "crates/afd-runtime/src/transport.rs",
    "crates/afd-runtime/src/wire.rs",
    "crates/afd-runtime/src/intern.rs",
    "crates/afd-runtime/src/shard.rs",
    "crates/afd-runtime/src/ring.rs",
    "crates/afd-runtime/src/engine.rs",
    "crates/afd-runtime/src/lane.rs",
    "crates/afd-runtime/src/varint.rs",
];

/// `.to_vec()` / `Vec::new` / `vec![…]` in a hot-path file. One-time
/// construction and cold error paths are fine — say so with
/// `// lint:allow(no-alloc-in-hot-path, reason)`.
fn no_alloc_in_hot_path(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || ctx.is_test_line(tok.line) {
            continue;
        }
        let next = |n: usize| code.get(i + n).map(|t| t.text.as_str());
        let alloc = match tok.text.as_str() {
            "to_vec" => i > 0 && code[i - 1].text == "." && next(1) == Some("("),
            "Vec" => next(1) == Some("::") && next(2) == Some("new"),
            "vec" => next(1) == Some("!"),
            _ => false,
        };
        if alloc {
            out.push(finding(
                ctx,
                "no-alloc-in-hot-path",
                tok,
                format!(
                    "`{}` allocates in hot-path file {}; reuse a `FrameBatch`/scratch buffer, \
                     or justify a cold-path allocation with \
                     `// lint:allow(no-alloc-in-hot-path, reason)`",
                    tok.text, ctx.path
                ),
            ));
        }
    }
}

/// The one `afd-runtime` file allowed to touch the filesystem.
const PERSIST_MODULE: &str = "crates/afd-runtime/src/persist.rs";

/// `File::create`-style constructors subject to the I/O discipline rule.
const FILE_CONSTRUCTORS: &[&str] = &["create", "create_new", "open", "options"];

/// Filesystem access (`fs::…` paths, `File::create`/`open`/`options`,
/// `OpenOptions::…`) in `afd-runtime` library code outside `persist.rs`.
/// Durability is only crash-safe because every write funnels through the
/// sink's tmp → fsync → atomic-rename install; an ad-hoc `fs::write`
/// elsewhere in the runtime would silently bypass that contract.
fn io_discipline(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if ctx.crate_name != "afd-runtime" || ctx.path == PERSIST_MODULE {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || !ctx.is_library_line(tok.line) {
            continue;
        }
        let next = |n: usize| code.get(i + n).map(|t| t.text.as_str());
        let io = match tok.text.as_str() {
            "fs" | "OpenOptions" => next(1) == Some("::"),
            "File" => {
                next(1) == Some("::") && next(2).is_some_and(|m| FILE_CONSTRUCTORS.contains(&m))
            }
            _ => false,
        };
        if io {
            out.push(finding(
                ctx,
                "io-discipline",
                tok,
                format!(
                    "filesystem access (`{}`) in afd-runtime outside {PERSIST_MODULE}; durable \
                     writes must go through a `SegmentSink` so the tmp → fsync → rename \
                     crash-safety contract holds",
                    tok.text
                ),
            ));
        }
    }
}

/// The deterministic-exploration surfaces: the whole model-checker crate
/// (its state counts, digests, and minimized counterexamples must be
/// bit-reproducible) and the script replay harness it emits schedules for.
const DETERMINISM_FILES_PREFIX: &str = "crates/afd-model/";
/// The chaos module is the runtime half of the model↔runtime contract.
const DETERMINISM_CHAOS_MODULE: &str = "crates/afd-runtime/src/chaos.rs";

/// `HashMap` / `HashSet` in the determinism-critical files. `std`'s hash
/// containers seed `RandomState` per process, so *iterating* one injects
/// nondeterminism into anything downstream — explored-state order, which
/// counterexample the DFS finds first, replay traces. `BTreeMap`/`BTreeSet`
/// (or a fixed-seed hasher, with a pragma saying so) keep those surfaces
/// reproducible. Test code is **not** exempt here: the exhaustive tests
/// assert exact state counts, so nondeterminism in a test is a flake.
fn determinism_discipline(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    let in_scope =
        ctx.path.starts_with(DETERMINISM_FILES_PREFIX) || ctx.path == DETERMINISM_CHAOS_MODULE;
    if !in_scope {
        return;
    }
    for tok in code {
        if tok.kind == TokenKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
            out.push(finding(
                ctx,
                "determinism-discipline",
                tok,
                format!(
                    "`{}` in determinism-critical file {}; RandomState iteration order \
                     makes exploration and replay nondeterministic — use `BTreeMap`/`BTreeSet`, \
                     or justify a seeded hasher with \
                     `// lint:allow(determinism-discipline, reason)`",
                    tok.text, ctx.path
                ),
            ));
        }
    }
}

/// Crate roots must carry `#![forbid(unsafe_code)]`.
fn crate_hygiene(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if !ctx.is_crate_root() {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if tok.text == "forbid" && code.get(i + 1).is_some_and(|t| t.text == "(") {
            let mut depth = 0usize;
            for t in &code[i + 1..] {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    "unsafe_code" => return,
                    _ => {}
                }
            }
        }
    }
    out.push(Finding {
        rule: "crate-hygiene",
        path: ctx.path.clone(),
        line: 1,
        col: 1,
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_library_code_produces_nothing() {
        let (findings, suppressed) = lint_source(
            "crates/afd-core/src/x.rs",
            "pub fn phi(x: f64) -> f64 { x + 1.0 }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 0);
    }

    #[test]
    fn clock_module_is_exempt() {
        let src = "fn now() { let t = Instant::now(); }\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/clock.rs", src);
        assert!(findings.is_empty());
        let (findings, _) = lint_source("crates/afd-runtime/src/supervisor.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "clock-discipline");
    }

    #[test]
    fn panic_rules_scope_to_the_three_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (findings, _) = lint_source("crates/afd-core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        // afd-sim is outside the no-panic scope.
        let (findings, _) = lint_source("crates/afd-sim/src/x.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_mod_is_fine() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); }\n}\n";
        let (findings, _) = lint_source("crates/afd-obs/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unwrap_or_default_is_not_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_default() }\n";
        let (findings, _) = lint_source("crates/afd-core/src/x.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn suppression_with_reason_works_and_counts() {
        let src = "fn f(x: f64) -> bool {\n    // lint:allow(no-float-eq, exact sentinel)\n    x == 0.0\n}\n";
        let (findings, suppressed) = lint_source("crates/afd-core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn trailing_pragma_on_same_line_works() {
        let src = "fn f(x: f64) -> bool { x == 0.0 } // lint:allow(no-float-eq, exact sentinel)\n";
        let (findings, suppressed) = lint_source("crates/afd-core/src/x.rs", src);
        assert!(findings.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn relaxed_rmw_needs_pragma_loads_do_not() {
        let src = "fn f(a: &AtomicU64) {\n    a.fetch_add(1, Ordering::Relaxed);\n    a.load(Ordering::Relaxed);\n}\n";
        let (findings, _) = lint_source("crates/afd-obs/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "relaxed-atomics-audit");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn relaxed_rmw_is_audited_in_runtime_but_not_core() {
        let src = "fn f(a: &AtomicU64) {\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/shard.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "relaxed-atomics-audit");
        let (findings, _) = lint_source("crates/afd-core/src/x.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn multiline_compare_exchange_is_caught_at_the_method() {
        let src = "fn f(a: &AtomicU64) {\n    let _ = a.compare_exchange_weak(\n        0,\n        1,\n        Ordering::Relaxed,\n        Ordering::Relaxed,\n    );\n}\n";
        let (findings, _) = lint_source("crates/afd-obs/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn hygiene_only_fires_on_crate_roots() {
        let src = "pub mod x;\n";
        let (findings, _) = lint_source("crates/afd-core/src/lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "crate-hygiene");
        let (findings, _) = lint_source("crates/afd-core/src/x.rs", src);
        assert!(findings.is_empty());
        let src = "#![forbid(unsafe_code)]\npub mod x;\n";
        let (findings, _) = lint_source("crates/afd-core/src/lib.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn invalid_pragma_is_its_own_finding() {
        let src = "// lint:allow(no-float-eq)\nfn f() {}\n";
        let (findings, _) = lint_source("crates/afd-core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "invalid-pragma");
    }

    #[test]
    fn float_eq_catches_associated_constants() {
        let src = "fn f(x: f64) -> bool { x == f64::INFINITY }\n";
        let (findings, _) = lint_source("crates/afd-core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-float-eq");
    }

    #[test]
    fn int_eq_is_fine() {
        let src = "fn f(x: u64) -> bool { x == 0 }\n";
        let (findings, _) = lint_source("crates/afd-core/src/x.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn thread_sleep_allowed_in_examples_not_lib() {
        let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n";
        let (findings, _) = lint_source("examples/live_chaos.rs", src);
        assert!(findings.is_empty());
        let (findings, _) = lint_source("crates/afd-runtime/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-thread-sleep");
    }

    #[test]
    fn hot_path_allocs_are_flagged_only_in_hot_files() {
        let src = "fn f(b: &[u8]) -> Vec<u8> { b.to_vec() }\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/transport.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-alloc-in-hot-path");
        // The same code is fine in a non-hot-path file.
        let (findings, _) = lint_source("crates/afd-runtime/src/monitor.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn hot_path_rule_catches_all_three_alloc_forms() {
        let src = "fn f() {\n    let a = Vec::new();\n    let b = vec![1u8];\n    let c = b.to_vec();\n}\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/engine.rs", src);
        let rules: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(
            rules,
            vec![
                ("no-alloc-in-hot-path", 2),
                ("no-alloc-in-hot-path", 3),
                ("no-alloc-in-hot-path", 4),
            ]
        );
    }

    #[test]
    fn hot_path_rule_covers_lane_and_varint() {
        // The multi-socket fan-in and the v2 varint codec are on the
        // per-datagram path: one allocation there is per-frame garbage
        // at a million peers.
        let src = "fn f(b: &[u8]) -> Vec<u8> { b.to_vec() }\n";
        for path in [
            "crates/afd-runtime/src/lane.rs",
            "crates/afd-runtime/src/varint.rs",
        ] {
            let (findings, _) = lint_source(path, src);
            assert_eq!(findings.len(), 1, "{path}: {findings:?}");
            assert_eq!(findings[0].rule, "no-alloc-in-hot-path", "{path}");
        }
    }

    #[test]
    fn hot_path_rule_spares_tests_and_lookalikes() {
        let src = "pub fn live() -> usize { Vec::<u8>::with_capacity(4).capacity() }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let _ = vec![0u8; 4]; }\n}\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/wire.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn hot_path_alloc_pragma_suppresses_with_reason() {
        let src = "fn f() {\n    // lint:allow(no-alloc-in-hot-path, one-time construction)\n    let a: Vec<u8> = Vec::new();\n    drop(a);\n}\n";
        let (findings, suppressed) = lint_source("crates/afd-runtime/src/shard.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn io_discipline_fires_outside_persist_only() {
        let src = "fn f() { let _ = std::fs::read(\"x\"); }\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/shard.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "io-discipline");
        // The persist module is the sanctioned home of filesystem access.
        let (findings, _) = lint_source("crates/afd-runtime/src/persist.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        // Other crates are out of scope (afd-bench writes reports, the
        // linter itself walks the tree).
        let (findings, _) = lint_source("crates/afd-bench/src/report.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn io_discipline_catches_file_constructors_not_lookalikes() {
        let src =
            "fn f() {\n    let _ = File::create(\"x\");\n    let _ = OpenOptions::new();\n}\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/monitor.rs", src);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3], "{findings:?}");
        // `File::from` and a local `fs` variable are not filesystem access.
        let src = "fn f(fs: u64) -> u64 { let _ = File::from(3); fs + 1 }\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/monitor.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn io_discipline_exempts_tests() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::fs::read(\"x\"); }\n}\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/shard.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn injected_sleep_callback_is_not_flagged() {
        let src = "fn f(mut sleep: impl FnMut(u64)) { sleep(3); }\n";
        let (findings, _) = lint_source("crates/afd-runtime/src/x.rs", src);
        assert!(findings.is_empty());
    }
}
