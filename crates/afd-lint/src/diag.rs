//! Findings and their two renderings: `path:line:col` text for humans,
//! and a line-oriented JSON document for CI tooling.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired (one of [`crate::rules::RULE_NAMES`] or
    /// `invalid-pragma`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation of what is wrong and what to do instead.
    pub message: String,
}

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, in file/line order.
    pub findings: Vec<Finding>,
    /// How many findings were silenced by reasoned pragmas.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.path, f.line, f.col, f.rule, f.message
            );
        }
        let _ = writeln!(
            out,
            "afd-lint: {} finding(s), {} suppressed, {} file(s) scanned",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        );
        out
    }

    /// Renders the report as a JSON document (no external dependencies, so
    /// the encoder is hand-rolled over our known-shape data).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}\n",
            self.suppressed, self.files_scanned
        );
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "clock-discipline",
                path: "crates/x/src/a.rs".to_string(),
                line: 7,
                col: 13,
                message: "raw clock read".to_string(),
            }],
            suppressed: 2,
            files_scanned: 5,
        }
    }

    #[test]
    fn text_rendering_is_grep_friendly() {
        let text = sample().render_text();
        assert!(text.contains("crates/x/src/a.rs:7:13: [clock-discipline] raw clock read"));
        assert!(text.contains("1 finding(s), 2 suppressed, 5 file(s) scanned"));
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut report = sample();
        report.findings[0].message = "say \"no\"\n".to_string();
        let json = report.render_json();
        assert!(json.contains("\"rule\": \"clock-discipline\""));
        assert!(json.contains("\\\"no\\\"\\n"));
        assert!(json.contains("\"suppressed\": 2"));
        assert!(json.contains("\"files_scanned\": 5"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let json = Report::default().render_json();
        assert!(json.contains("\"findings\": []"));
    }
}
