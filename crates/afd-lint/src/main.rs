//! Command-line driver for [`afd_lint`].
//!
//! ```text
//! afd-lint [--root PATH] [--json] [--check]
//! ```
//!
//! Exit codes: `0` clean (or report-only mode), `1` unsuppressed findings
//! under `--check`, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace this binary was built from (two levels
    // above the crate's manifest), so `cargo run -p afd-lint` works from
    // any cwd.
    let mut args = Args {
        root: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        json: false,
        check: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--check" => args.check = true,
            "--root" => {
                let Some(path) = argv.next() else {
                    return Err("--root requires a path".to_string());
                };
                args.root = PathBuf::from(path);
            }
            "--help" | "-h" => {
                return Err("usage: afd-lint [--root PATH] [--json] [--check]".to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("afd-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let report = match afd_lint::lint_workspace(&args.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("afd-lint: failed to scan {}: {err}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if args.check && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
